"""Failure injection for service agents (Section V-D methodology).

"Each running agent failed with a predefined probability ``p`` after a
certain period of time ``T``.  Note that a restarted agent can fail again.
Thus, in this model we can expect ``p/(1-p) x N_T`` failures where ``N_T`` is
the number of services whose duration is greater than ``T``."

:class:`FailureModel` implements exactly that: every time an agent starts (or
restarts) a service invocation whose duration exceeds ``T``, the agent
crashes at ``T`` seconds into the invocation with probability ``p``.  Crash
detection and the automatic restart take additional, configurable delays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simkernel import RandomStreams

__all__ = ["FailureModel", "NO_FAILURES"]


@dataclass(frozen=True)
class FailureModel:
    """Parameters of the failure-injection model.

    Attributes
    ----------
    probability:
        ``p`` — chance that a given (re)invocation crashes its agent.
    delay:
        ``T`` — time into the invocation at which the crash happens; only
        invocations longer than ``T`` are exposed.
    detection_delay:
        Time for the platform to notice the crash.
    restart_delay:
        Time to start the replacement agent (scheduling + process start).
    """

    probability: float = 0.0
    delay: float = 0.0
    detection_delay: float = 0.5
    restart_delay: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")
        if self.delay < 0 or self.detection_delay < 0 or self.restart_delay < 0:
            raise ValueError("failure-model delays must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether the model can produce any failure."""
        return self.probability > 0.0

    def crash_time(self, invocation_duration: float, randomness: RandomStreams, label: str) -> float | None:
        """Time (after invocation start) at which the agent crashes, or ``None``.

        Only invocations strictly longer than ``delay`` can be hit, mirroring
        the expected-failures formula of the paper.
        """
        if not self.enabled:
            return None
        if invocation_duration <= self.delay:
            return None
        if randomness.bernoulli(label, self.probability):
            return self.delay
        return None

    def expected_failures(self, exposed_services: int) -> float:
        """The paper's expectation ``p/(1-p) * N_T`` for ``N_T`` exposed services."""
        if not self.enabled:
            return 0.0
        return self.probability / (1.0 - self.probability) * exposed_services

    def recovery_overhead(self) -> float:
        """Fixed (work-independent) cost of one crash: detection + restart."""
        return self.detection_delay + self.restart_delay


#: Convenience instance: failure injection disabled.
NO_FAILURES = FailureModel(probability=0.0, delay=0.0)
