"""Service abstraction, invocation and failure injection."""

from .faults import NO_FAILURES, FailureModel
from .service import (
    InvocationContext,
    InvocationResult,
    PythonService,
    Service,
    ServiceFailure,
    ServiceRegistry,
    SyntheticService,
)

__all__ = [
    "Service",
    "PythonService",
    "SyntheticService",
    "ServiceRegistry",
    "ServiceFailure",
    "InvocationContext",
    "InvocationResult",
    "FailureModel",
    "NO_FAILURES",
]
