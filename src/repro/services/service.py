"""Service abstraction and registry.

A *service* implements a workflow task.  A service agent "encapsulates the
invocation of the service" — in this reproduction a service is any object
implementing :class:`Service`.  Two implementations cover every experiment:

* :class:`PythonService` — wraps a Python callable; used by the examples and
  by the centralised/threaded runtimes when the workflow does real work.
* :class:`SyntheticService` — produces a deterministic placeholder result
  and reports the task's nominal ``duration``; the simulated runtime charges
  that duration to the virtual clock, and the threaded runtime optionally
  sleeps a scaled-down version of it.

The :class:`ServiceRegistry` resolves the ``SRV`` field of a task to a
service instance; unknown names fall back to a synthetic service so that
purely structural experiments (all of Section V) need no explicit
registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "InvocationContext",
    "InvocationResult",
    "Service",
    "PythonService",
    "SyntheticService",
    "ServiceFailure",
    "ServiceRegistry",
]


class ServiceFailure(Exception):
    """Raised by a service invocation to signal failure (becomes ``ERROR``)."""


@dataclass
class InvocationContext:
    """Information available to a service when it is invoked.

    Attributes
    ----------
    task_name:
        The workflow task being executed.
    duration:
        Nominal duration of the task (seconds).
    metadata:
        The task's metadata dictionary (``force_error``, ``stage``, ...).
    attempt:
        1 for the first invocation, incremented on re-invocations after an
        agent recovery.
    """

    task_name: str
    duration: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)
    attempt: int = 1


@dataclass
class InvocationResult:
    """Outcome of a service invocation."""

    value: Any
    duration: float
    failed: bool = False
    error: str | None = None


class Service:
    """Base class of every service."""

    #: Whether re-invoking the service after a partial execution is safe.
    #: The recovery mechanism assumes idempotent services (Section IV-B).
    idempotent: bool = True

    def __init__(self, name: str):
        self.name = name

    def invoke(self, parameters: list[Any], context: InvocationContext) -> InvocationResult:
        """Execute the service on ``parameters``; never raises for task-level
        failures (returns ``failed=True`` instead)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class PythonService(Service):
    """A service backed by a Python callable ``fn(*parameters)``.

    Exceptions raised by the callable are reported as failed invocations (the
    agent turns them into the ``ERROR`` marker), matching how GinFlow wraps
    real executables.
    """

    def __init__(self, name: str, function: Callable[..., Any], idempotent: bool = True):
        super().__init__(name)
        if not callable(function):
            raise TypeError(f"service {name!r}: function must be callable")
        self.function = function
        self.idempotent = idempotent

    def invoke(self, parameters: list[Any], context: InvocationContext) -> InvocationResult:
        if context.metadata.get("force_error"):
            return InvocationResult(value=None, duration=context.duration, failed=True, error="forced error")
        try:
            value = self.function(*parameters)
        except Exception as exc:  # noqa: BLE001 - converted into a task failure
            return InvocationResult(value=None, duration=context.duration, failed=True, error=str(exc))
        return InvocationResult(value=value, duration=context.duration, failed=False)


class SyntheticService(Service):
    """A service that simulates work: deterministic output, nominal duration.

    The returned value is ``"{task}-out"`` — enough for downstream tasks to
    receive *some* data and for tests to check provenance.  A task whose
    metadata contains ``force_error`` (optionally ``force_error_attempts`` to
    fail only the first *k* attempts) produces a failed invocation, which is
    how the adaptiveness experiments raise their exception.
    """

    def __init__(self, name: str = "synthetic"):
        super().__init__(name)

    def invoke(self, parameters: list[Any], context: InvocationContext) -> InvocationResult:
        metadata = context.metadata
        if metadata.get("force_error"):
            max_attempts = int(metadata.get("force_error_attempts", 0))
            if max_attempts <= 0 or context.attempt <= max_attempts:
                return InvocationResult(
                    value=None, duration=context.duration, failed=True, error="forced error"
                )
        return InvocationResult(
            value=f"{context.task_name}-out", duration=context.duration, failed=False
        )


class ServiceRegistry:
    """Resolves service names to :class:`Service` instances."""

    def __init__(self, default_factory: Callable[[str], Service] | None = None):
        self._services: dict[str, Service] = {}
        self._default_factory = default_factory or SyntheticService

    def register(self, service: Service) -> Service:
        """Register (or replace) ``service`` under its name."""
        self._services[service.name] = service
        return service

    def register_function(self, name: str, function: Callable[..., Any], idempotent: bool = True) -> Service:
        """Shorthand for registering a :class:`PythonService`."""
        return self.register(PythonService(name, function, idempotent=idempotent))

    def knows(self, name: str) -> bool:
        """Whether ``name`` was explicitly registered."""
        return name in self._services

    def resolve(self, name: str) -> Service:
        """The service registered under ``name`` (or a synthetic fallback)."""
        if name in self._services:
            return self._services[name]
        service = self._default_factory(name)
        self._services[name] = service
        return service

    def names(self) -> list[str]:
        """Sorted names of the registered services."""
        return sorted(self._services)

    def copy(self) -> "ServiceRegistry":
        """A shallow copy sharing the service instances."""
        clone = ServiceRegistry(self._default_factory)
        clone._services = dict(self._services)
        return clone
