"""Declarative parameter grids.

A :class:`ParameterGrid` maps parameter names to candidate values and
iterates over the cartesian product as plain dictionaries (*cells*), in a
deterministic order (first key varies slowest — matching the nesting order
of the hand-written loops it replaces).  Grids can be unioned with ``+`` to
express non-rectangular designs, mirroring scikit-learn's ``ParameterGrid``
idiom::

    grid = ParameterGrid({"nodes": [5, 10], "broker": ["activemq", "kafka"]})
    len(grid)      # 4
    list(grid)[0]  # {"nodes": 5, "broker": "activemq"}
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["ParameterGrid"]


class ParameterGrid:
    """A union of cartesian products of parameter values.

    Parameters
    ----------
    grid:
        Either a mapping ``{name: values}`` (scalar values are treated as
        single-element lists) or a sequence of such mappings whose products
        are concatenated.  An existing :class:`ParameterGrid` is copied.
    """

    def __init__(self, grid: Mapping[str, Any] | Sequence[Mapping[str, Any]] | "ParameterGrid") -> None:
        if isinstance(grid, ParameterGrid):
            self._subgrids: list[dict[str, list[Any]]] = [dict(sub) for sub in grid._subgrids]
            return
        if isinstance(grid, Mapping):
            grid = [grid]
        if not isinstance(grid, Sequence):
            raise TypeError(f"ParameterGrid expects a mapping or a sequence of mappings, got {type(grid).__name__}")
        self._subgrids = []
        for subgrid in grid:
            if not isinstance(subgrid, Mapping):
                raise TypeError(f"each subgrid must be a mapping, got {type(subgrid).__name__}")
            normalized: dict[str, list[Any]] = {}
            for key, values in subgrid.items():
                if not isinstance(key, str):
                    raise TypeError(f"parameter names must be strings, got {key!r}")
                # Any non-string/mapping iterable enumerates candidates
                # (lists, tuples, ranges, numpy arrays, generators);
                # everything else is a single candidate value.
                if isinstance(values, (str, bytes, Mapping)):
                    values = [values]
                else:
                    try:
                        values = list(values)
                    except TypeError:
                        values = [values]
                if not values:
                    raise ValueError(f"parameter {key!r} has no candidate values")
                normalized[key] = values
            self._subgrids.append(normalized)

    # ------------------------------------------------------------ iteration
    def __iter__(self) -> Iterator[dict[str, Any]]:
        for subgrid in self._subgrids:
            if not subgrid:
                yield {}
                continue
            keys = list(subgrid)
            for combination in product(*(subgrid[key] for key in keys)):
                yield dict(zip(keys, combination))

    def cells(self) -> list[dict[str, Any]]:
        """Every cell of the grid, as a list."""
        return list(self)

    def __len__(self) -> int:
        total = 0
        for subgrid in self._subgrids:
            count = 1
            for values in subgrid.values():
                count *= len(values)
            total += count
        return total

    # -------------------------------------------------------------- algebra
    def __add__(self, other: "ParameterGrid | Mapping[str, Any]") -> "ParameterGrid":
        """Union of two grids (their cells are concatenated in order)."""
        other = other if isinstance(other, ParameterGrid) else ParameterGrid(other)
        combined = ParameterGrid({})
        combined._subgrids = [dict(sub) for sub in self._subgrids] + [dict(sub) for sub in other._subgrids]
        return combined

    # -------------------------------------------------------------- queries
    def keys(self) -> tuple[str, ...]:
        """Every parameter name appearing in the grid, in declaration order."""
        seen: dict[str, None] = {}
        for subgrid in self._subgrids:
            for key in subgrid:
                seen.setdefault(key, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ParameterGrid({self._subgrids!r})"
