"""Small statistics and table-rendering helpers shared by sweeps and benches.

These are the canonical implementations; :mod:`repro.bench.common` re-exports
them so the historical ``from repro.bench import mean, std, format_table``
imports keep working.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["mean", "std", "format_table"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Iterable[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return (sum((value - center) ** 2 for value in values) / len(values)) ** 0.5


def format_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render measurement rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(column) for column in columns}
    rendered_rows = []
    for row in rows:
        rendered = {}
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)
