"""Sweep results: per-run rows, per-cell aggregates, JSON/CSV export.

A :class:`SweepReport` holds one *row* per executed run (cell × repeat) and
aggregates rows back into *cells* with mean/stdev statistics — the exact
shape the paper's figures plot (per-cell mean makespans over repeated runs).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from .stats import format_table, mean, std

__all__ = ["SweepReport"]

#: Row fields aggregated by default (mean/std per cell).
DEFAULT_METRICS = ("makespan", "execution_time", "deployment_time")


def _cell_key(row: dict[str, Any], keys: Sequence[str]) -> tuple:
    """A hashable identity for the grid cell a row belongs to."""
    parts = []
    for key in keys:
        value = row.get(key)
        try:
            hash(value)
        except TypeError:
            value = repr(value)
        parts.append(value)
    return tuple(parts)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a row value to a JSON-serialisable one."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


@dataclass
class SweepReport:
    """Outcome of one parameter sweep.

    Attributes
    ----------
    name:
        The experiment name (echoed into exports).
    rows:
        One dictionary per executed run, containing the cell parameters,
        the derived ``seed`` and ``repeat`` index, and the measured values.
    grid_keys:
        The parameter names of the grid (the cell identity).
    repeats:
        How many times each cell was run.
    """

    name: str = "sweep"
    rows: list[dict[str, Any]] = field(default_factory=list)
    grid_keys: tuple[str, ...] = ()
    repeats: int = 1

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    @property
    def succeeded(self) -> bool:
        """Whether every run of the sweep succeeded."""
        return all(row.get("succeeded", True) for row in self.rows)

    @property
    def timed_out(self) -> bool:
        """Whether any run of the sweep hit its wall-clock timeout."""
        return any(row.get("timed_out", False) for row in self.rows)

    def cells(self, metrics: Iterable[str] = DEFAULT_METRICS) -> list[dict[str, Any]]:
        """Per-cell aggregates: ``<metric>_mean`` / ``<metric>_std`` plus
        ``runs`` and ``success_rate``, in first-seen cell order."""
        metrics = tuple(metrics)
        groups: dict[tuple, list[dict[str, Any]]] = {}
        order: list[tuple] = []
        for row in self.rows:
            key = _cell_key(row, self.grid_keys)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        aggregated = []
        for key in order:
            group = groups[key]
            cell = {name: group[0].get(name) for name in self.grid_keys}
            cell["runs"] = len(group)
            cell["success_rate"] = mean(1.0 if row.get("succeeded", True) else 0.0 for row in group)
            cell["timed_out_runs"] = sum(1 for row in group if row.get("timed_out", False))
            for metric in metrics:
                values = [row[metric] for row in group if isinstance(row.get(metric), (int, float))]
                # No column at all when the metric never appears in this
                # cell's rows — phantom 0.0 aggregates read as real data.
                if values:
                    cell[f"{metric}_mean"] = mean(values)
                    cell[f"{metric}_std"] = std(values)
            aggregated.append(cell)
        return aggregated

    def best_cell(self, metric: str = "makespan_mean", minimize: bool = True) -> dict[str, Any]:
        """The aggregated cell optimising ``metric`` (raises on empty sweeps).

        ``metric`` may be a bare row field (``"makespan"``) or an aggregate
        column (``"makespan_mean"`` / ``"makespan_std"``).
        """
        base = metric.removesuffix("_mean").removesuffix("_std")
        if not any(base in row for row in self.rows):
            raise KeyError(f"unknown metric {metric!r} (no {base!r} field in any row)")
        cells = self.cells(metrics=(base,))
        if not cells:
            raise ValueError("the sweep produced no rows")
        lookup = metric if metric != base else f"{metric}_mean"
        chooser = min if minimize else max
        # cells missing the metric entirely rank last
        fallback = float("inf") if minimize else float("-inf")
        return chooser(cells, key=lambda cell: cell.get(lookup, fallback))

    # -------------------------------------------------------------- export
    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """JSON export (rows + per-cell aggregates); optionally written to ``path``."""
        payload = {
            "name": self.name,
            "grid_keys": list(self.grid_keys),
            "repeats": self.repeats,
            "rows": [_jsonable(row) for row in self.rows],
            "cells": [_jsonable(cell) for cell in self.cells()],
        }
        text = json.dumps(payload, indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def to_csv(self, path: str | Path | None = None) -> str:
        """CSV export of the per-run rows; optionally written to ``path``."""
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore", lineterminator="\n")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({key: _jsonable(row.get(key)) for key in columns})
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    # ------------------------------------------------------------- display
    def format_table(self, columns: Sequence[str] | None = None, aggregated: bool = True) -> str:
        """Text table of the aggregated cells (or the raw rows)."""
        rows = self.cells() if aggregated else self.rows
        title = f"{self.name} — {len(self.rows)} runs, {len(self.cells())} cells"
        return format_table(rows, columns=columns, title=title)
