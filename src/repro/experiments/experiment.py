"""First-class experiments: a declarative grid executed into a SweepReport.

An :class:`Experiment` binds a workflow (or workflow *factory*), a
:class:`~repro.experiments.grid.ParameterGrid` and a base
:class:`~repro.runtime.config.GinFlowConfig`, and executes every cell
``repeats`` times — sequentially or with thread/process parallelism —
aggregating everything into a :class:`~repro.experiments.report.SweepReport`.

Cell parameters are routed automatically:

* keys naming :class:`GinFlowConfig` fields (``nodes``, ``broker``,
  ``executor``, ``mode``, ``seed``, ``costs``, ...) override the base
  configuration for that cell;
* ``failure_probability`` / ``failure_delay`` build a
  :class:`~repro.services.FailureModel`;
* ``scenario`` (when the experiment has no workflow source of its own)
  names a registered workflow scenario — a bare name or a ``"name:k=v,..."``
  spec, see :mod:`repro.scenarios` — generating the cell's workflow, so the
  grid can sweep structurally distinct DAG families;
* every other key is passed to the workflow factory (or the scenario
  generator) as a keyword argument.

Each repeat derives its seed as ``base_seed + repeat`` (the cell's ``seed``
if swept, the configuration's otherwise), so repeated cells are independent
but the whole sweep stays reproducible.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Callable, Mapping

from repro.runtime.config import GinFlowConfig
from repro.runtime.results import RunReport
from repro.services import FailureModel
from repro.workflow.dag import Workflow
from repro.workflow.json_format import workflow_from_json

from .grid import ParameterGrid
from .report import SweepReport

__all__ = ["Experiment"]

#: Cell keys translated into a FailureModel instead of a config field.
_FAILURE_KEYS = ("failure_probability", "failure_delay")

_CONFIG_FIELDS = frozenset(spec.name for spec in dataclass_fields(GinFlowConfig))


def _execute_point(point: tuple["Experiment", dict[str, Any], int]) -> dict[str, Any]:
    """Top-level trampoline so process pools can pickle the work items."""
    experiment, cell, repeat = point
    return experiment.execute_cell(cell, repeat)


@dataclass
class Experiment:
    """A declarative parameter sweep over GinFlow runs.

    Attributes
    ----------
    name:
        Label echoed into the :class:`SweepReport` and its exports.
    workflow:
        A :class:`Workflow`, a JSON string/dict/path, or a callable invoked
        with the cell's workflow parameters and returning a workflow.  May
        be ``None`` when a custom ``runner`` ignores it.
    grid:
        A :class:`ParameterGrid` (or anything its constructor accepts).
    config:
        Base configuration each cell overrides (defaults to
        ``GinFlowConfig()``).
    repeats:
        Runs per cell (seeds derived as ``base_seed + repeat``).
    timeout:
        Per-run timeout forwarded to wall-clock runtimes.
    metrics:
        Optional ``(report, cell, workflow) -> mapping`` callback whose
        result is merged into each row.
    runner:
        Optional ``(workflow, config, cell) -> RunReport | mapping``
        replacing the default GinFlow execution (characterisation sweeps,
        micro-benchmarks).  A mapping return value becomes the row as-is
        (cell parameters are still included).
    fixed:
        Parameters merged into every cell (cell values win).
    """

    name: str = "experiment"
    workflow: Any = None
    grid: Any = field(default_factory=dict)
    config: GinFlowConfig | None = None
    repeats: int = 1
    timeout: float = 120.0
    metrics: Callable[[RunReport, dict[str, Any], Workflow | None], Mapping[str, Any]] | None = None
    runner: Callable[[Workflow | None, GinFlowConfig, dict[str, Any]], Any] | None = None
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.grid, ParameterGrid):
            self.grid = ParameterGrid(self.grid)
        if self.config is None:
            self.config = GinFlowConfig()
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")

    # ------------------------------------------------------------------ run
    def run(self, workers: int | None = None, parallel: str = "thread") -> SweepReport:
        """Execute every (cell, repeat) point; returns the aggregated report.

        ``workers`` enables a pool (``parallel`` is ``"thread"`` or
        ``"process"``); row order always matches grid order regardless of
        the execution order.

        ``parallel="process"`` requires the whole experiment (workflow
        factory, metrics, runner, config) to be picklable — use module-level
        functions, not lambdas — and, on spawn-based platforms
        (macOS/Windows), any third-party backend the sweep uses must be
        registered at import time of a module the workers also import.
        When in doubt, ``parallel="thread"`` always works.
        """
        points = [
            (self, dict(cell), repeat)
            for cell in self.grid
            for repeat in range(self.repeats)
        ]
        if workers is not None and workers > 1 and len(points) > 1:
            if parallel not in ("thread", "process"):
                raise ValueError(f"parallel must be 'thread' or 'process', got {parallel!r}")
            if parallel == "process":
                self._check_picklable()
            pool_cls = ProcessPoolExecutor if parallel == "process" else ThreadPoolExecutor
            with pool_cls(max_workers=workers) as pool:
                rows = list(pool.map(_execute_point, points))
        else:
            rows = [_execute_point(point) for point in points]
        return SweepReport(
            name=self.name,
            rows=rows,
            grid_keys=self.grid.keys(),
            repeats=self.repeats,
        )

    # ------------------------------------------------------------ internals
    def _check_picklable(self) -> None:
        import pickle

        try:
            pickle.dumps(self)
        except Exception as exc:
            raise ValueError(
                "parallel='process' requires a picklable experiment (module-level "
                "workflow factory / metrics / runner, picklable config); "
                f"use parallel='thread' instead ({exc})"
            ) from None

    def execute_cell(self, cell: dict[str, Any], repeat: int) -> dict[str, Any]:
        """Run one (cell, repeat) point and return its measurement row."""
        merged = {**self.fixed, **cell}
        config, workflow_kwargs, base_seed = self._split_cell(merged)
        seed = base_seed + repeat
        config = config.with_overrides(seed=seed)
        workflow = self._resolve_workflow(workflow_kwargs)

        row: dict[str, Any] = dict(merged)
        # Grid keys are the cell's identity — measurements must never clobber
        # them (e.g. a swept "seed" or "failures" config field), or the
        # per-cell aggregation falls apart.  The derived per-repeat seed goes
        # to "run_seed" when "seed" itself is swept.
        row["seed" if "seed" not in merged else "run_seed"] = seed
        row["repeat"] = repeat
        outcome = self._run_point(workflow, config, merged)
        if isinstance(outcome, RunReport):
            measurements = {
                "succeeded": outcome.succeeded,
                "timed_out": outcome.timed_out,
                "makespan": outcome.makespan,
                "deployment_time": outcome.deployment_time,
                "execution_time": outcome.execution_time,
                "messages": outcome.messages_published,
                "failures": outcome.failures_injected,
                "recoveries": outcome.recoveries,
                "adaptations": outcome.adaptations_triggered,
            }
            for key, value in measurements.items():
                row[key if key not in merged else f"measured_{key}"] = value
            if self.metrics is not None:
                row.update(self.metrics(outcome, merged, workflow))
        elif isinstance(outcome, Mapping):
            row.update(outcome)
        else:
            raise TypeError(
                f"experiment runner must return a RunReport or a mapping, got {type(outcome).__name__}"
            )
        return row

    def _run_point(self, workflow: Workflow | None, config: GinFlowConfig, cell: dict[str, Any]) -> Any:
        if self.runner is not None:
            return self.runner(workflow, config, cell)
        if workflow is None:
            raise ValueError("an Experiment without a custom runner needs a workflow")
        from time import perf_counter

        from repro.runtime.ginflow import GinFlow

        trace = config.obs.active_tracer() if config.obs is not None else None
        started = perf_counter() if trace is not None else 0.0
        report = GinFlow(config).run(workflow, timeout=self.timeout)
        if trace is not None:
            attrs = {
                key: value
                for key, value in cell.items()
                if isinstance(value, (str, int, float, bool))
            }
            trace.span(
                "sweep.cell", "sweep", started, perf_counter(), seed=config.seed, **attrs
            )
        return report

    def _split_cell(self, cell: dict[str, Any]) -> tuple[GinFlowConfig, dict[str, Any], int]:
        overrides: dict[str, Any] = {}
        workflow_kwargs: dict[str, Any] = {}
        for key, value in cell.items():
            if key in _FAILURE_KEYS:
                continue
            if key in _CONFIG_FIELDS:
                overrides[key] = value
            else:
                workflow_kwargs[key] = value
        assert self.config is not None
        if any(key in cell for key in _FAILURE_KEYS):
            # Un-swept failure parameters inherit from the base model (a
            # swept "failures" config field, if any, then the config's).
            base = cell.get("failures", self.config.failures)
            overrides["failures"] = FailureModel(
                probability=float(cell.get("failure_probability", base.probability)),
                delay=float(cell.get("failure_delay", base.delay)),
                detection_delay=base.detection_delay,
                restart_delay=base.restart_delay,
            )
        base_seed = int(overrides.pop("seed", self.config.seed))
        config = self.config.with_overrides(**overrides) if overrides else self.config
        return config, workflow_kwargs, base_seed

    def _resolve_workflow(self, workflow_kwargs: dict[str, Any]) -> Workflow | None:
        source = self.workflow
        if source is None:
            # With no workflow source of its own, a 'scenario' cell key names
            # a registered scenario spec that generates the cell's workflow
            # (the remaining keys are generator overrides).  A workflow
            # factory that wants a parameter called "scenario" keeps it: the
            # key is only interpreted here when there is nothing to route it
            # to.
            if self.runner is None and "scenario" in workflow_kwargs:
                from repro.scenarios import build_scenario

                spec = workflow_kwargs.pop("scenario")
                return build_scenario(str(spec), **workflow_kwargs)
            if workflow_kwargs and self.runner is None:
                raise ValueError(f"no workflow to receive grid parameters {sorted(workflow_kwargs)}")
            return None
        if callable(source) and not isinstance(source, Workflow):
            workflow = source(**workflow_kwargs)
        else:
            if workflow_kwargs:
                raise ValueError(
                    f"grid parameters {sorted(workflow_kwargs)} match neither a configuration "
                    "field nor a workflow-factory argument (the workflow is fixed)"
                )
            workflow = source
        if isinstance(workflow, Workflow):
            return workflow
        return workflow_from_json(workflow)
    # Note: a factory may legitimately return a JSON string/dict; it is
    # normalised right above.
