"""First-class Experiment/Sweep API.

Declarative parameter grids (:class:`ParameterGrid`) executed into
aggregated reports (:class:`SweepReport`) by :class:`Experiment` — or, more
conveniently, by :meth:`GinFlow.sweep <repro.runtime.ginflow.GinFlow.sweep>`::

    from repro import GinFlow, ParameterGrid, diamond_workflow

    grid = ParameterGrid({"nodes": [5, 15], "broker": ["activemq", "kafka"]})
    report = GinFlow().sweep(lambda: diamond_workflow(5, 5, duration=0.1),
                             grid, repeats=3, workers=4)
    print(report.format_table())
    report.to_csv("sweep.csv")

Every benchmark driver of :mod:`repro.bench` is a thin grid declaration over
this API.
"""

from .experiment import Experiment
from .grid import ParameterGrid
from .report import SweepReport
from .stats import format_table, mean, std

__all__ = [
    "Experiment",
    "ParameterGrid",
    "SweepReport",
    "format_table",
    "mean",
    "std",
]
