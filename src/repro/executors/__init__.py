"""Executors: centralised, SSH-based and Mesos-based provisioning."""

from .base import DeploymentPlan, DistributedExecutor
from .centralized import CentralizedExecutor, CentralizedOutcome
from .mesos import MesosExecutor
from .ssh import SSHExecutor

__all__ = [
    "DeploymentPlan",
    "DistributedExecutor",
    "SSHExecutor",
    "MesosExecutor",
    "CentralizedExecutor",
    "CentralizedOutcome",
]
