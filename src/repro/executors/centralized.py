"""The centralised executor.

"The centralised executor will use a single HOCL interpreter to execute the
workflow." (Section IV-C)  The whole concrete workflow (Fig. 8) is folded
into one multiset and reduced by one engine; service invocations happen
synchronously from inside the ``gw_call`` rule through the ``invoke``
external function.

The paper does not evaluate this mode (its experiments are all distributed),
but it is the reference implementation of the chemistry: the distributed
engine must produce the same final results, which the integration tests check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.hocl import (
    Multiset,
    ReductionEngine,
    ReductionReport,
    Subsolution,
    Symbol,
    TupleAtom,
    default_registry,
    from_atom,
)
from repro.hocl.parallel import reduce_sharded, resolve_policy
from repro.hoclflow import encode_workflow
from repro.hoclflow import keywords as kw
from repro.hoclflow.fields import get_res_atoms, has_error
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.hoclflow.translator import WorkflowEncoding
from repro.services import InvocationContext, ServiceRegistry
from repro.workflow.dag import Workflow

__all__ = ["CentralizedOutcome", "CentralizedExecutor"]


@dataclass
class CentralizedOutcome:
    """Result of a centralised execution."""

    solution: Multiset
    report: ReductionReport
    results: dict[str, Any] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    invocations: int = 0

    def result_of(self, task_name: str) -> Any:
        """Result value of ``task_name`` (``None`` if it produced none)."""
        return self.results.get(task_name)


class CentralizedExecutor:
    """Single-interpreter execution of an encoded workflow.

    Parameters
    ----------
    registry:
        Service registry resolving task services.
    max_steps:
        Safety bound on total reactions.
    reduction:
        Reduction strategy (name or resolved
        :class:`~repro.hocl.parallel.ReductionPolicy`).  ``batch`` swaps
        the engine into batched passes; ``parallel`` additionally shards
        the top-level task sub-solutions over a pool
        (:func:`~repro.hocl.parallel.reduce_sharded`) — same final
        solution, invocations may run concurrently, so services invoked
        this way must be thread-safe.
    obs:
        Optional :class:`~repro.obs.Observability` bundle: reduction-phase
        spans land on the ``"centralized"`` track, every service call gets
        an ``executor.invoke`` span on the task's track, and the invocation
        counter feeds the metrics registry.
    """

    name = "centralized"

    def __init__(
        self,
        registry: ServiceRegistry | None = None,
        max_steps: int = 1_000_000,
        reduction: Any = None,
        obs: Any = None,
    ):
        self.registry = registry or ServiceRegistry()
        self.max_steps = max_steps
        self.policy = resolve_policy(reduction)
        self.obs = obs
        self.trace = obs.active_tracer() if obs is not None else None
        self.metrics = obs.metrics if obs is not None else None

    def execute(self, workflow: Workflow) -> CentralizedOutcome:
        """Encode and run ``workflow`` to inertness; collect per-task results."""
        encoding = encode_workflow(workflow)
        return self.execute_encoding(encoding)

    def execute_encoding(self, encoding: WorkflowEncoding) -> CentralizedOutcome:
        """Run an already encoded workflow."""
        solution = encoding.to_multiset()
        invocation_counter = {"count": 0}
        attempts: dict[str, int] = {}
        # Under a parallel policy, `invoke` is called from pool workers
        # reducing different shards concurrently; the counters need a lock
        # (the shards themselves are disjoint and need none).
        counter_lock = threading.Lock()

        def invoke(task_name: str, service_name: str, parameters: list[Any]) -> Any:
            with counter_lock:
                invocation_counter["count"] += 1
                attempt = attempts[task_name] = attempts.get(task_name, 0) + 1
            task_encoding = encoding.tasks[task_name]
            service = self.registry.resolve(service_name)
            context = InvocationContext(
                task_name=task_name,
                duration=task_encoding.duration,
                metadata=task_encoding.metadata,
                attempt=attempt,
            )
            trace = self.trace
            started = perf_counter() if trace is not None else 0.0
            outcome = service.invoke(list(parameters), context)
            if trace is not None:
                trace.span(
                    "executor.invoke",
                    task_name,
                    started,
                    perf_counter(),
                    service=service_name,
                    attempt=attempt,
                    failed=outcome.failed,
                )
            if self.metrics is not None:
                self.metrics.counter("executor.invocations").inc()
            if outcome.failed:
                raise RuntimeError(outcome.error or "service invocation failed")
            return outcome.value

        externals = default_registry()
        register_workflow_externals(externals, invoke)

        def engine_factory() -> ReductionEngine:
            return ReductionEngine(
                externals=externals,
                max_steps=self.max_steps,
                trace=self.trace,
                trace_track="centralized",
                **self.policy.engine_options(),
            )

        if self.policy.parallel:
            reducer = self.policy.make_reducer()
            try:
                report = reduce_sharded(
                    solution, engine_factory, reducer, max_steps=self.max_steps
                )
            finally:
                reducer.shutdown()
        else:
            report = engine_factory().reduce(solution)

        results: dict[str, Any] = {}
        errors: dict[str, str] = {}
        for atom in solution.atoms():
            if not (
                isinstance(atom, TupleAtom)
                and len(atom.elements) == 2
                and isinstance(atom.elements[0], Symbol)
                and isinstance(atom.elements[1], Subsolution)
            ):
                continue
            task_name = atom.elements[0].name
            task_solution = atom.elements[1].solution
            if has_error(task_solution):
                errors[task_name] = "ERROR"
            for res_atom in get_res_atoms(task_solution):
                if not (isinstance(res_atom, Symbol) and res_atom.name == kw.ERROR):
                    results[task_name] = from_atom(res_atom)
                    break
        return CentralizedOutcome(
            solution=solution,
            report=report,
            results=results,
            errors=errors,
            invocations=invocation_counter["count"],
        )
