"""The Mesos-based executor.

"GinFlow, on top of Mesos, starts one SA per machine for each offer received
from the Mesos scheduler.  Thus, increasing the number of nodes will increase
the number of machines in each offer and consequently the parallelization in
starting the SAs.  This explains the linear decrease of the deployment time
observed for the Mesos-based executor." (Section V-C)

The model follows that description literally: offers arrive periodically
(after a framework-registration delay); each offer contains every node that
still has a free agent slot; the executor accepts one agent per offered node
per round.  Deployment time is therefore ≈ ``ceil(agents / nodes)`` offer
rounds — linearly decreasing in the node count for a fixed agent count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster import Cluster, MesosMaster
from repro.runtime.backends import register_executor

from .base import DeploymentPlan, DistributedExecutor

__all__ = ["MesosExecutor"]


@dataclass
class MesosExecutor(DistributedExecutor):
    """Offer-based provisioning of the service agents.

    Attributes
    ----------
    offer_interval:
        Seconds between two resource-offer rounds.
    registration_delay:
        Framework registration time before the first offer.
    agent_start_time:
        Time for a Mesos slave to launch one SA after accepting the offer.
    """

    offer_interval: float = 2.0
    registration_delay: float = 1.0
    agent_start_time: float = 0.5

    name = "mesos"

    def plan(self, cluster: Cluster, agent_names: Sequence[str]) -> DeploymentPlan:
        self._check_capacity(cluster, agent_names)
        cluster.reset()
        master = MesosMaster(
            cluster, offer_interval=self.offer_interval, registration_delay=self.registration_delay
        )
        remaining = list(agent_names)
        placement: dict[str, str] = {}
        ready_times: dict[str, float] = {}
        while remaining:
            offer_time = master.next_offer_time()
            offer = master.make_offer()
            if not offer.nodes:
                raise RuntimeError(
                    f"mesos executor: cluster {cluster.name!r} ran out of capacity with "
                    f"{len(remaining)} agents still to place"
                )
            for node in offer.nodes:
                if not remaining:
                    break
                agent = remaining.pop(0)
                node.assign(agent)
                placement[agent] = node.name
                ready_times[agent] = offer_time + self.agent_start_time
        deployment_time = max(ready_times.values(), default=self.registration_delay)
        plan = DeploymentPlan(
            placement=placement,
            ready_times=ready_times,
            deployment_time=deployment_time,
            executor=self.name,
        )
        plan.validate()
        return plan


@register_executor(
    "mesos",
    capabilities={"deployment": "resource-offers", "scaling": "linearly-decreasing"},
    description="offer-based Mesos provisioning (one agent per offered node per round)",
)
def _build_mesos_executor(config) -> MesosExecutor:
    """Executor backend factory (the configuration carries no Mesos knobs)."""
    return MesosExecutor()
