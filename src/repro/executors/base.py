"""Executor abstractions.

"The role of the executor is to enact the workflow in a specific environment
which can be centralised or distributed.  A distributed executor will (1)
claim resources from an infrastructure and (2) provision the distributed
engine (i.e., the SAs) on them." (Section IV-C)

For the simulated runtime an executor produces a :class:`DeploymentPlan`:
which node hosts which agent and at what virtual time each agent becomes
ready.  The two distributed executors of the paper (SSH and Mesos) are
implemented in :mod:`repro.executors.ssh` and :mod:`repro.executors.mesos`;
the centralised executor (single interpreter, no deployment) lives in
:mod:`repro.executors.centralized`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster import Cluster

__all__ = ["DeploymentPlan", "DistributedExecutor"]


@dataclass
class DeploymentPlan:
    """Result of planning the provisioning of the service agents.

    Attributes
    ----------
    placement:
        Agent name → node name.
    ready_times:
        Agent name → virtual time (relative to deployment start) at which
        the agent process is up.
    deployment_time:
        Time at which every agent is up (the "deployment" bar of Fig. 14).
    executor:
        Name of the executor that produced the plan.
    """

    placement: dict[str, str] = field(default_factory=dict)
    ready_times: dict[str, float] = field(default_factory=dict)
    deployment_time: float = 0.0
    executor: str = "unknown"

    def agents_on(self, node_name: str) -> list[str]:
        """Agents placed on ``node_name``."""
        return [agent for agent, node in self.placement.items() if node == node_name]

    def validate(self) -> None:
        """Internal consistency check (every placed agent has a ready time)."""
        missing = set(self.placement) ^ set(self.ready_times)
        if missing:
            raise ValueError(f"inconsistent deployment plan; missing entries for {sorted(missing)}")
        if self.ready_times:
            latest = max(self.ready_times.values())
            if latest > self.deployment_time + 1e-9:
                raise ValueError("deployment_time is earlier than the last agent's ready time")


class DistributedExecutor:
    """Base class of the distributed executors (SSH, Mesos, EC2, ...)."""

    name = "distributed"

    def plan(self, cluster: Cluster, agent_names: Sequence[str]) -> DeploymentPlan:
        """Place ``agent_names`` on ``cluster`` and schedule their start times."""
        raise NotImplementedError

    def _check_capacity(self, cluster: Cluster, agent_names: Sequence[str]) -> None:
        if len(agent_names) > cluster.total_capacity:
            raise RuntimeError(
                f"{self.name} executor: {len(agent_names)} agents exceed the cluster "
                f"capacity of {cluster.total_capacity} (2 agents per core, as in the paper)"
            )
