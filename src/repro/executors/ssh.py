"""The SSH-based executor.

"The SSH-based executor starts the SAs on a predefined set of machines, to be
specified in the GinFlow configuration file. [...] The SSH-based executor
starts SAs in a round-robin fashion on a preconfigured list of nodes.  As the
SSH connections are parallelized, the deployment time slightly increases with
the number of nodes." (Sections IV-C and V-C)

The model therefore has two components:

* a client-side connection-management cost paid once per node (establishing
  and multiplexing the SSH channels is parallel across nodes, but the client
  still spends a little time per channel) — this is what makes deployment
  time *increase slightly* with the node count;
* a per-agent start cost paid sequentially on each node (agents on different
  nodes start in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster import Cluster
from repro.runtime.backends import register_executor

from .base import DeploymentPlan, DistributedExecutor

__all__ = ["SSHExecutor"]


@dataclass
class SSHExecutor(DistributedExecutor):
    """Round-robin SSH provisioning of the service agents.

    Attributes
    ----------
    connection_overhead:
        Client-side per-node channel management cost (seconds).
    agent_start_time:
        Time to start one SA process on a node (sequential per node).
    base_overhead:
        Fixed cost (reading the configuration, keys, ...).
    """

    connection_overhead: float = 0.6
    agent_start_time: float = 0.35
    base_overhead: float = 1.0

    name = "ssh"

    def plan(self, cluster: Cluster, agent_names: Sequence[str]) -> DeploymentPlan:
        self._check_capacity(cluster, agent_names)
        cluster.reset()
        placement_nodes = cluster.round_robin_placement(agent_names)

        # client-side channel setup: one per *used* node, serial at the client
        used_nodes = []
        for agent in agent_names:
            node = placement_nodes[agent].name
            if node not in used_nodes:
                used_nodes.append(node)
        channel_ready = {
            node: self.base_overhead + (index + 1) * self.connection_overhead
            for index, node in enumerate(used_nodes)
        }

        # per-node sequential agent starts (parallel across nodes)
        per_node_started: dict[str, int] = {}
        ready_times: dict[str, float] = {}
        placement: dict[str, str] = {}
        for agent in agent_names:
            node = placement_nodes[agent].name
            position = per_node_started.get(node, 0)
            per_node_started[node] = position + 1
            ready_times[agent] = channel_ready[node] + (position + 1) * self.agent_start_time
            placement[agent] = node

        deployment_time = max(ready_times.values(), default=self.base_overhead)
        plan = DeploymentPlan(
            placement=placement,
            ready_times=ready_times,
            deployment_time=deployment_time,
            executor=self.name,
        )
        plan.validate()
        return plan


@register_executor(
    "ssh",
    capabilities={"deployment": "round-robin", "scaling": "slightly-increasing"},
    description="round-robin SSH provisioning over a preconfigured node list",
)
def _build_ssh_executor(config) -> SSHExecutor:
    """Executor backend factory (the configuration carries no SSH knobs)."""
    return SSHExecutor()
