"""The built-in scenario catalog — nine structurally distinct DAG families.

Each generator is registered on the global scenario registry
(:mod:`repro.scenarios.registry`) and produces a seed-deterministic
:class:`~repro.workflow.dag.Workflow` scaling from ~20 to well beyond 1000
tasks via its ``size`` parameter (the approximate total task count; the
generator rounds to the nearest realisable shape, never below its structural
minimum).

The first four families mirror the coordination structures of well-known
Pegasus scientific workflows (characterised in Juve et al., "Characterizing
and profiling scientific workflows", FGCS 2013):

* ``epigenomics`` — parallel sequencing pipelines joined by one fan-in,
* ``cybershake``  — two-level wide fan-out/fan-in (per-site synthesis),
* ``inspiral``    — chained diamond blocks (LIGO template-bank analysis),
* ``sipht``       — many independent per-group fan-ins merging at the end.

The other four are synthetic stress shapes:

* ``random-layered`` — seeded Erdős-style inter-layer wiring,
* ``mapreduce``      — map / all-to-all shuffle / reduce stages,
* ``forkjoin``       — a chain of fork-join stages,
* ``longchain``      — one maximal-depth sequential chain.

``montage`` wraps the paper's own resilience-experiment workflow
(:func:`repro.workflow.montage.montage_workflow`, Section V-D): ten fixed
pipeline tasks around a wide heterogeneous projection stage, at its default
size the exact 118-task shape of Fig. 15.

Every task carries cost-profile metadata (``scenario``, ``stage``,
``cost_class``, ``level``) and the scenario's failure profile (notably
``idempotent`` so the recovery mechanism may replay it), and every duration
is drawn from the stage's declared ``(low, high)`` range with the scenario
seed — the same spec always generates byte-identical workflows.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping

from repro.workflow.dag import Task, Workflow
from repro.workflow.montage import montage_workflow

from .registry import ScenarioError, register_scenario

__all__ = [
    "epigenomics_workflow",
    "cybershake_workflow",
    "inspiral_workflow",
    "sipht_workflow",
    "random_layered_workflow",
    "mapreduce_workflow",
    "forkjoin_workflow",
    "longchain_workflow",
    "montage_scenario",
]

#: Failure profile shared by the whole catalog: synthetic services are pure,
#: so every task may be replayed by the recovery mechanism.
_IDEMPOTENT = {"idempotent": True}


def _check_size(size: int, minimum: int) -> int:
    if not isinstance(size, int) or isinstance(size, bool):
        raise ScenarioError(f"size must be an integer, got {size!r}")
    if size < minimum:
        raise ScenarioError(f"size must be >= {minimum}, got {size}")
    return size


class _Builder:
    """Tiny helper stamping scenario/cost metadata on every task it adds."""

    def __init__(
        self,
        name: str,
        scenario: str,
        seed: int,
        cost_profile: Mapping[str, tuple[float, float]],
        failure_profile: Mapping[str, Any],
    ) -> None:
        self.workflow = Workflow(name=name)
        self.scenario = scenario
        self.rng = random.Random(seed)
        self.cost_profile = cost_profile
        self.failure_profile = dict(failure_profile)

    def add(self, name: str, stage: str, level: int, inputs: list | None = None, **extra: Any) -> Task:
        low, high = self.cost_profile[stage]
        duration = round(self.rng.uniform(low, high), 3)
        metadata = {
            "scenario": self.scenario,
            "stage": stage,
            "cost_class": stage,
            "level": level,
            **self.failure_profile,
            **extra,
        }
        task = Task(
            name=name,
            service=self.scenario,
            inputs=list(inputs or []),
            duration=duration,
            metadata=metadata,
        )
        return self.workflow.add_task(task)

    def dep(self, source: str, destination: str) -> None:
        self.workflow.add_dependency(source, destination)


# --------------------------------------------------------------------------
# Pegasus-like families
# --------------------------------------------------------------------------

_EPIGENOMICS_COSTS = {
    "split": (2.0, 5.0),
    "filter": (5.0, 15.0),
    "align": (20.0, 60.0),
    "merge": (20.0, 40.0),
    "index": (10.0, 20.0),
    "pileup": (5.0, 15.0),
}


@register_scenario(
    "epigenomics",
    structure="split -> N parallel 5-stage pipelines -> merge -> index -> pileup",
    cost_profile=_EPIGENOMICS_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("pegasus", "pipelines", "fan-in"),
)
def epigenomics_workflow(size: int = 20, seed: int = 0, stages: int = 5) -> Workflow:
    """Genome-sequencing pipelines: parallel per-lane chains joined by one fan-in."""
    _check_size(size, 10)
    if stages < 1:
        raise ScenarioError(f"stages must be >= 1, got {stages}")
    lanes = max(2, round((size - 4) / stages))
    builder = _Builder(
        f"epigenomics-{lanes}x{stages}-s{seed}", "epigenomics", seed,
        _EPIGENOMICS_COSTS, _IDEMPOTENT,
    )
    builder.add("fastqSplit", "split", 0, inputs=["dna-reads"])
    builder.add("mapMerge", "merge", stages + 1)
    for lane in range(1, lanes + 1):
        previous = "fastqSplit"
        for stage_index in range(1, stages + 1):
            stage = "filter" if stage_index == 1 else "align"
            task = f"lane{lane}_stage{stage_index}"
            builder.add(task, stage, stage_index, lane=lane)
            builder.dep(previous, task)
            previous = task
        builder.dep(previous, "mapMerge")
    builder.add("maqIndex", "index", stages + 2)
    builder.dep("mapMerge", "maqIndex")
    builder.add("pileup", "pileup", stages + 3)
    builder.dep("maqIndex", "pileup")
    return builder.workflow


_CYBERSHAKE_COSTS = {
    "precvm": (30.0, 60.0),
    "extract": (60.0, 120.0),
    "synthesis": (10.0, 40.0),
    "zipsite": (5.0, 15.0),
    "zippsa": (10.0, 30.0),
}


@register_scenario(
    "cybershake",
    structure="preCVM -> per-site extract -> wide synthesis -> per-site zip -> global zip",
    cost_profile=_CYBERSHAKE_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("pegasus", "fan-out", "fan-in", "two-level"),
)
def cybershake_workflow(size: int = 20, seed: int = 0, synthesis_per_site: int = 4) -> Workflow:
    """Seismic-hazard synthesis: two-level wide fan-out/fan-in over sites."""
    _check_size(size, 10)
    if synthesis_per_site < 1:
        raise ScenarioError(f"synthesis_per_site must be >= 1, got {synthesis_per_site}")
    sites = max(2, round((size - 2) / (synthesis_per_site + 2)))
    builder = _Builder(
        f"cybershake-{sites}x{synthesis_per_site}-s{seed}", "cybershake", seed,
        _CYBERSHAKE_COSTS, _IDEMPOTENT,
    )
    builder.add("preCVM", "precvm", 0, inputs=["velocity-model"])
    builder.add("zipPSA", "zippsa", 4)
    for site in range(1, sites + 1):
        extract = f"extractSGT_{site}"
        builder.add(extract, "extract", 1, site=site)
        builder.dep("preCVM", extract)
        zip_site = f"zipSeis_{site}"
        builder.add(zip_site, "zipsite", 3, site=site)
        for column in range(1, synthesis_per_site + 1):
            synthesis = f"seismogram_{site}_{column}"
            builder.add(synthesis, "synthesis", 2, site=site, rupture=column)
            builder.dep(extract, synthesis)
            builder.dep(synthesis, zip_site)
        builder.dep(zip_site, "zipPSA")
    return builder.workflow


_INSPIRAL_COSTS = {
    "datafind": (5.0, 10.0),
    "tmpltbank": (15.0, 30.0),
    "inspiral": (60.0, 180.0),
    "thinca": (5.0, 15.0),
}


@register_scenario(
    "inspiral",
    structure="datafind -> B chained diamond blocks (fan-out -> 2-deep columns -> thinca fan-in)",
    cost_profile=_INSPIRAL_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("pegasus", "diamond", "chained"),
)
def inspiral_workflow(size: int = 20, seed: int = 0, width: int = 4) -> Workflow:
    """Gravitational-wave search: diamond blocks chained through thinca joins."""
    _check_size(size, 10)
    if width < 1:
        raise ScenarioError(f"width must be >= 1, got {width}")
    blocks = max(1, round((size - 1) / (2 * width + 1)))
    builder = _Builder(
        f"inspiral-{blocks}x{width}-s{seed}", "inspiral", seed,
        _INSPIRAL_COSTS, _IDEMPOTENT,
    )
    builder.add("datafind", "datafind", 0, inputs=["gw-frames"])
    previous_join = "datafind"
    for block in range(1, blocks + 1):
        base_level = 1 + (block - 1) * 3
        join = f"thinca_{block}"
        builder.add(join, "thinca", base_level + 2, block=block)
        for column in range(1, width + 1):
            bank = f"tmpltbank_{block}_{column}"
            builder.add(bank, "tmpltbank", base_level, block=block, column=column)
            builder.dep(previous_join, bank)
            matched = f"inspiral_{block}_{column}"
            builder.add(matched, "inspiral", base_level + 1, block=block, column=column)
            builder.dep(bank, matched)
            builder.dep(matched, join)
        previous_join = join
    return builder.workflow


_SIPHT_COSTS = {
    "leaf": (2.0, 30.0),
    "srna": (10.0, 20.0),
    "findsrna": (20.0, 40.0),
    "annotate": (5.0, 10.0),
}

#: Leaf task kinds of one SIPHT prediction group (bioinformatics scanners).
_SIPHT_LEAVES = ("patser", "blast", "rnamotif", "findterm", "transterm", "srna_scan")


@register_scenario(
    "sipht",
    structure="G independent groups of leaf scanners -> per-group srna fan-in -> findsrna -> annotate",
    cost_profile=_SIPHT_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("pegasus", "fan-in", "independent-groups"),
)
def sipht_workflow(size: int = 20, seed: int = 0, leaves_per_group: int = 5) -> Workflow:
    """sRNA annotation: many independent fan-ins merging into one final chain."""
    _check_size(size, 10)
    if leaves_per_group < 1:
        raise ScenarioError(f"leaves_per_group must be >= 1, got {leaves_per_group}")
    groups = max(2, round((size - 2) / (leaves_per_group + 1)))
    builder = _Builder(
        f"sipht-{groups}x{leaves_per_group}-s{seed}", "sipht", seed,
        _SIPHT_COSTS, _IDEMPOTENT,
    )
    builder.add("findsrna", "findsrna", 2)
    builder.add("annotate", "annotate", 3)
    builder.dep("findsrna", "annotate")
    for group in range(1, groups + 1):
        srna = f"srna_{group}"
        builder.add(srna, "srna", 1, group=group)
        builder.dep(srna, "findsrna")
        for leaf_index in range(1, leaves_per_group + 1):
            kind = _SIPHT_LEAVES[(leaf_index - 1) % len(_SIPHT_LEAVES)]
            leaf = f"{kind}_{group}_{leaf_index}"
            builder.add(leaf, "leaf", 0, inputs=[f"genome-{group}-{leaf_index}"], group=group, kind=kind)
            builder.dep(leaf, srna)
    return builder.workflow


# --------------------------------------------------------------------------
# Synthetic stress families
# --------------------------------------------------------------------------

_RANDOM_LAYERED_COSTS = {
    "source": (1.0, 2.0),
    "body": (5.0, 50.0),
    "sink": (1.0, 2.0),
}


@register_scenario(
    "random-layered",
    structure="source -> L layers of W tasks with seeded Erdos-style inter-layer edges -> sink",
    cost_profile=_RANDOM_LAYERED_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("synthetic", "random", "layered"),
)
def random_layered_workflow(
    size: int = 20, seed: int = 0, edge_probability: float = 0.3, width: int = 0
) -> Workflow:
    """Random layered DAG: every inter-layer edge drawn with a seeded coin."""
    _check_size(size, 10)
    if not 0.0 <= edge_probability <= 1.0:
        raise ScenarioError(f"edge_probability must be in [0, 1], got {edge_probability}")
    body = size - 2
    if width <= 0:
        width = max(2, int(math.sqrt(body)))
    layers = max(2, round(body / width))
    builder = _Builder(
        f"random-layered-{layers}x{width}-p{edge_probability}-s{seed}", "random-layered", seed,
        _RANDOM_LAYERED_COSTS, _IDEMPOTENT,
    )
    builder.add("source", "source", 0, inputs=["input"])
    previous_layer: list[str] = ["source"]
    for layer in range(1, layers + 1):
        current: list[str] = []
        for column in range(1, width + 1):
            task = f"n_{layer}_{column}"
            builder.add(task, "body", layer, row=layer, column=column)
            predecessors = [
                candidate for candidate in previous_layer
                if builder.rng.random() < edge_probability
            ]
            # keep the DAG connected: every task consumes at least one
            # predecessor from the previous layer
            if not predecessors:
                predecessors = [builder.rng.choice(previous_layer)]
            for predecessor in predecessors:
                builder.dep(predecessor, task)
            current.append(task)
        previous_layer = current
    builder.add("sink", "sink", layers + 1)
    for task in previous_layer:
        builder.dep(task, "sink")
    return builder.workflow


_MAPREDUCE_COSTS = {
    "split": (2.0, 5.0),
    "map": (10.0, 60.0),
    "reduce": (20.0, 80.0),
    "collect": (5.0, 10.0),
}


@register_scenario(
    "mapreduce",
    structure="split -> M maps -> all-to-all shuffle -> R reduces -> collect",
    cost_profile=_MAPREDUCE_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("synthetic", "shuffle", "fan-in"),
)
def mapreduce_workflow(size: int = 20, seed: int = 0, reduce_ratio: float = 0.25) -> Workflow:
    """Map/shuffle/reduce: the densest fan-in family (every reduce reads every map)."""
    _check_size(size, 10)
    if not 0.0 < reduce_ratio <= 1.0:
        raise ScenarioError(f"reduce_ratio must be in (0, 1], got {reduce_ratio}")
    body = size - 2
    reducers = max(1, round(body * reduce_ratio / (1.0 + reduce_ratio)))
    maps = max(1, body - reducers)
    builder = _Builder(
        f"mapreduce-{maps}m{reducers}r-s{seed}", "mapreduce", seed,
        _MAPREDUCE_COSTS, _IDEMPOTENT,
    )
    builder.add("split", "split", 0, inputs=["dataset"])
    builder.add("collect", "collect", 3)
    reduce_names = []
    for index in range(1, reducers + 1):
        reduce_task = f"reduce_{index}"
        builder.add(reduce_task, "reduce", 2, partition=index)
        builder.dep(reduce_task, "collect")
        reduce_names.append(reduce_task)
    for index in range(1, maps + 1):
        map_task = f"map_{index}"
        builder.add(map_task, "map", 1, shard=index)
        builder.dep("split", map_task)
        for reduce_task in reduce_names:
            builder.dep(map_task, reduce_task)
    return builder.workflow


_FORKJOIN_COSTS = {
    "fork": (1.0, 3.0),
    "work": (10.0, 40.0),
    "join": (2.0, 5.0),
}


@register_scenario(
    "forkjoin",
    structure="S chained stages of (fork -> W workers -> join)",
    cost_profile=_FORKJOIN_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("synthetic", "fork-join", "chained"),
)
def forkjoin_workflow(size: int = 20, seed: int = 0, width: int = 4) -> Workflow:
    """Fork-join chain: repeated scatter/gather stages in strict sequence."""
    _check_size(size, 10)
    if width < 1:
        raise ScenarioError(f"width must be >= 1, got {width}")
    stages = max(1, round(size / (width + 2)))
    builder = _Builder(
        f"forkjoin-{stages}x{width}-s{seed}", "forkjoin", seed,
        _FORKJOIN_COSTS, _IDEMPOTENT,
    )
    previous: str | None = None
    for stage in range(1, stages + 1):
        base_level = (stage - 1) * 3
        fork = f"fork_{stage}"
        builder.add(fork, "fork", base_level, block=stage,
                    inputs=["input"] if previous is None else None)
        if previous is not None:
            builder.dep(previous, fork)
        join = f"join_{stage}"
        builder.add(join, "join", base_level + 2, block=stage)
        for column in range(1, width + 1):
            worker = f"work_{stage}_{column}"
            builder.add(worker, "work", base_level + 1, block=stage, column=column)
            builder.dep(fork, worker)
            builder.dep(worker, join)
        previous = join
    return builder.workflow


def _topological_levels(workflow: Workflow) -> dict[str, int]:
    """Longest-path depth of every task (entry tasks are level 0)."""
    predecessors: dict[str, list[str]] = {}
    for source, destination in workflow.dependencies():
        predecessors.setdefault(destination, []).append(source)
    levels: dict[str, int] = {}
    for name in workflow.topological_order():
        levels[name] = max((levels[parent] + 1 for parent in predecessors.get(name, [])), default=0)
    return levels


#: Stage duration bounds of the Montage pipeline — the fixed-duration tasks
#: of :mod:`repro.workflow.montage` plus the paper's 60–310 s projection range.
_MONTAGE_COSTS = {
    "prepare": (5.0, 8.0),
    "project": (60.0, 310.0),
    "table": (12.0, 12.0),
    "diff": (25.0, 25.0),
    "background": (20.0, 30.0),
    "merge": (65.0, 65.0),
    "publish": (10.0, 10.0),
}


@register_scenario(
    "montage",
    structure="prepare pair -> N parallel projections -> image table -> 3 diff-fits "
    "-> background pair -> co-add -> publish",
    cost_profile=_MONTAGE_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("paper", "astronomy", "fan-out", "fan-in", "heterogeneous"),
)
def montage_scenario(size: int = 118, seed: int = 0) -> Workflow:
    """The paper's Montage mosaic (Section V-D, Fig. 15): ten fixed pipeline
    tasks around a wide heterogeneous projection stage; ``size=118`` is the
    exact published shape."""
    _check_size(size, 10)
    projections = max(2, size - 10)
    workflow = montage_workflow(
        projections=projections, seed=seed, name=f"montage-{projections}-s{seed}"
    )
    # montage_workflow stamps stage/idempotent; the catalog contract also
    # wants scenario/cost_class/level on every task
    levels = _topological_levels(workflow)
    for task in workflow:
        task.metadata.update(
            {
                "scenario": "montage",
                "cost_class": task.metadata["stage"],
                "level": levels[task.name],
                **_IDEMPOTENT,
            }
        )
    return workflow


_LONGCHAIN_COSTS = {
    "link": (1.0, 10.0),
}


@register_scenario(
    "longchain",
    structure="one maximal-depth chain of size tasks",
    cost_profile=_LONGCHAIN_COSTS,
    failure_profile=_IDEMPOTENT,
    tags=("synthetic", "stress", "sequential"),
)
def longchain_workflow(size: int = 20, seed: int = 0) -> Workflow:
    """Long-sequence stress: the deepest possible DAG, one task per level."""
    _check_size(size, 2)
    builder = _Builder(f"longchain-{size}-s{seed}", "longchain", seed,
                       _LONGCHAIN_COSTS, _IDEMPOTENT)
    previous: str | None = None
    for index in range(1, size + 1):
        task = f"link_{index}"
        builder.add(task, "link", index - 1,
                    inputs=["input"] if previous is None else None)
        if previous is not None:
            builder.dep(previous, task)
        previous = task
    return builder.workflow
