"""Scenario subsystem: a registry of parameterized scientific-workflow generators.

Public surface::

    from repro.scenarios import (
        available_scenarios,   # names of every registered generator
        get_scenario,          # name -> Scenario (factory + declared profile)
        build_scenario,        # "cybershake:size=500,seed=3" -> Workflow
        parse_scenario_spec,   # spec string -> (name, params)
        register_scenario,     # decorator for third-party generators
    )

See :mod:`repro.scenarios.registry` for the registry machinery and
:mod:`repro.scenarios.catalog` for the eight built-in DAG families.
"""

from .registry import (
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    available_scenarios,
    build_scenario,
    ensure_builtin_scenarios,
    get_scenario,
    parse_scenario_spec,
    register_scenario,
    registry,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "ScenarioRegistry",
    "available_scenarios",
    "build_scenario",
    "ensure_builtin_scenarios",
    "get_scenario",
    "parse_scenario_spec",
    "register_scenario",
    "registry",
]
