"""The scenario registry — named, parameterized scientific-workflow generators.

A *scenario* is a seed-deterministic generator producing a
:class:`~repro.workflow.dag.Workflow` of a given ``size`` plus a declared
cost/failure profile.  Scenarios are first-class registered objects, exactly
like runtimes/brokers in :mod:`repro.runtime.backends`: the CLI
(``ginflow scenarios`` / ``ginflow run --scenario``), ``GinFlow.sweep`` grid
axes and the benchmark matrix all resolve them by name through this module.

Registering a scenario::

    from repro.scenarios import register_scenario

    @register_scenario(
        "mychain",
        structure="a plain chain of size tasks",
        cost_profile={"task": (0.1, 0.5)},
    )
    def mychain(size: int = 20, seed: int = 0) -> Workflow:
        '''A linear chain stressing sequential hand-off.'''
        ...

Every factory takes at least ``size`` (approximate task count) and ``seed``
(all randomness must derive from it, so the same spec always produces the
same workflow) and may declare extra shape keywords.  A textual *spec* names
a scenario plus parameter overrides::

    epigenomics                 -> ("epigenomics", {})
    cybershake:size=500         -> ("cybershake", {"size": 500})
    sipht:size=200,seed=3       -> ("sipht", {"size": 200, "seed": 3})

This module imports nothing from the rest of :mod:`repro` except the
workflow model, so any layer can depend on it without import cycles; the
built-in catalog (:mod:`repro.scenarios.catalog`) is imported lazily by
:func:`ensure_builtin_scenarios` on first lookup.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.workflow.dag import Workflow

__all__ = [
    "Scenario",
    "ScenarioError",
    "ScenarioRegistry",
    "registry",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "build_scenario",
    "parse_scenario_spec",
    "ensure_builtin_scenarios",
]


class ScenarioError(ValueError):
    """Raised on unknown scenario names, bad specs or conflicting registrations."""


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: a named workflow generator plus its declared profile.

    Attributes
    ----------
    name:
        Public name the CLI/sweeps refer to (``"epigenomics"``).
    factory:
        ``(size=..., seed=..., **shape) -> Workflow`` generator.  Must be
        deterministic for fixed arguments.
    description:
        One-line human description (defaults to the factory's first doc line).
    structure:
        Short sketch of the coordination structure (``"parallel pipelines
        feeding one fan-in"``) shown by ``ginflow scenarios``.
    cost_profile:
        Declared duration profile, mapping a stage/class name to its
        ``(low, high)`` duration range in seconds.  Informational: the
        generator stamps the actual drawn values on the tasks.
    failure_profile:
        Declared failure behaviour (``idempotent``, suggested injection
        probability, ...) merged into every task's metadata by the generator.
    tags:
        Free-form labels (``"pegasus"``, ``"synthetic"``, ``"stress"``).
    """

    name: str
    factory: Callable[..., Workflow]
    description: str = ""
    structure: str = ""
    cost_profile: Mapping[str, tuple[float, float]] = field(default_factory=dict)
    failure_profile: Mapping[str, Any] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def build(self, **params: Any) -> Workflow:
        """Generate the workflow (unknown parameters raise :class:`ScenarioError`)."""
        try:
            signature = inspect.signature(self.factory)
            signature.bind_partial(**params)
        except TypeError as exc:
            accepted = sorted(inspect.signature(self.factory).parameters)
            raise ScenarioError(
                f"scenario {self.name!r}: {exc} (accepted parameters: {accepted})"
            ) from None
        workflow = self.factory(**params)
        if not isinstance(workflow, Workflow):
            raise ScenarioError(
                f"scenario {self.name!r} factory returned {type(workflow).__name__}, not a Workflow"
            )
        return workflow

    def parameters(self) -> dict[str, Any]:
        """The factory's keyword parameters and their defaults."""
        return {
            name: (None if spec.default is inspect.Parameter.empty else spec.default)
            for name, spec in inspect.signature(self.factory).parameters.items()
            if spec.kind in (spec.POSITIONAL_OR_KEYWORD, spec.KEYWORD_ONLY)
        }


class ScenarioRegistry:
    """A thread-safe name → :class:`Scenario` registry."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}
        self._lock = threading.Lock()

    # --------------------------------------------------------- registration
    def register(
        self,
        name: str,
        factory: Callable[..., Workflow] | None = None,
        *,
        description: str = "",
        structure: str = "",
        cost_profile: Mapping[str, tuple[float, float]] | None = None,
        failure_profile: Mapping[str, Any] | None = None,
        tags: tuple[str, ...] = (),
        replace: bool = False,
    ) -> Any:
        """Register ``factory`` as scenario ``name`` (direct call or decorator)."""

        def _store(func: Callable[..., Workflow]) -> Callable[..., Workflow]:
            if not callable(func):
                raise ScenarioError(f"scenario {name!r}: factory must be callable")
            parameters = inspect.signature(func).parameters
            for required in ("size", "seed"):
                if required not in parameters:
                    raise ScenarioError(
                        f"scenario {name!r}: factory must accept a {required!r} keyword"
                    )
            about = description or _first_doc_line(func)
            with self._lock:
                if not replace and name in self._scenarios:
                    raise ScenarioError(
                        f"scenario {name!r} is already registered (pass replace=True to override)"
                    )
                self._scenarios[name] = Scenario(
                    name=name,
                    factory=func,
                    description=about,
                    structure=structure,
                    cost_profile=dict(cost_profile or {}),
                    failure_profile=dict(failure_profile or {}),
                    tags=tuple(tags),
                )
            return func

        if factory is None:
            return _store
        return _store(factory)

    def unregister(self, name: str) -> None:
        """Remove a scenario (no error if absent) — mostly for tests."""
        with self._lock:
            self._scenarios.pop(name, None)

    # --------------------------------------------------------------- lookup
    def get(self, name: str) -> Scenario:
        """The scenario called ``name``; raises :class:`ScenarioError` if unknown."""
        with self._lock:
            scenario = self._scenarios.get(name)
            if scenario is None:
                known = tuple(self._scenarios)
                raise ScenarioError(f"unknown scenario {name!r}; expected one of {known}")
            return scenario

    def has(self, name: str) -> bool:
        """Whether a scenario called ``name`` is registered."""
        with self._lock:
            return name in self._scenarios

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        with self._lock:
            return tuple(self._scenarios)

    def scenarios(self) -> tuple[Scenario, ...]:
        """Every registered scenario, in registration order."""
        with self._lock:
            return tuple(self._scenarios.values())


def _first_doc_line(func: Callable[..., Any]) -> str:
    doc = getattr(func, "__doc__", None) or ""
    for line in doc.strip().splitlines():
        if line.strip():
            return line.strip()
    return ""


#: The process-wide registry the CLI, sweeps and benchmarks resolve against.
registry = ScenarioRegistry()


def register_scenario(name: str, factory: Callable[..., Workflow] | None = None, **kwargs: Any) -> Any:
    """Register a scenario on the global registry (decorator or direct call)."""
    return registry.register(name, factory, **kwargs)


def get_scenario(name: str) -> Scenario:
    """Resolve one scenario from the global registry (catalog loaded first)."""
    ensure_builtin_scenarios()
    return registry.get(name)


def available_scenarios() -> tuple[str, ...]:
    """Names of every registered scenario."""
    ensure_builtin_scenarios()
    return registry.names()


def parse_scenario_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``"name:k1=v1,k2=v2"`` into ``(name, params)`` with typed values.

    Values parse as int, then float, then bool (``true``/``false``), then
    stay strings — the same coercion the ``ginflow sweep --param`` flag uses.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ScenarioError(f"invalid scenario spec {spec!r}; expected 'name' or 'name:k=v,...'")
    name, separator, remainder = spec.strip().partition(":")
    name = name.strip()
    if not name:
        raise ScenarioError(f"invalid scenario spec {spec!r}; missing scenario name")
    params: dict[str, Any] = {}
    if separator and not remainder.strip():
        raise ScenarioError(f"invalid scenario spec {spec!r}; empty parameter list after ':'")
    if remainder.strip():
        for assignment in remainder.split(","):
            key, equals, value = assignment.partition("=")
            key, value = key.strip(), value.strip()
            if not equals or not key or not value:
                raise ScenarioError(
                    f"invalid scenario spec {spec!r}; bad parameter {assignment!r} "
                    "(expected k=v)"
                )
            if key in params:
                raise ScenarioError(f"invalid scenario spec {spec!r}; duplicate parameter {key!r}")
            params[key] = _coerce(value)
    return name, params


def _coerce(text: str) -> Any:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def build_scenario(spec: str, **overrides: Any) -> Workflow:
    """Build the workflow a spec describes (``overrides`` win over spec params)."""
    name, params = parse_scenario_spec(spec)
    params.update(overrides)
    return get_scenario(name).build(**params)


_builtins_loaded = False
_builtins_lock = threading.RLock()


def ensure_builtin_scenarios() -> None:
    """Import the built-in catalog exactly once (idempotent, thread-safe)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _builtins_lock:
        if _builtins_loaded:
            return
        import importlib

        importlib.import_module("repro.scenarios.catalog")
        _builtins_loaded = True
