"""repro.analysis — a static analyzer for HOCL rules, workflows and scenarios.

The whole system rests on hand-written chemical rules and generated DAGs;
when one of them is wrong, it usually fails *at enactment time*, often as a
silent hang.  This package diagnoses that failure class without running a
reduction: it walks :class:`~repro.hocl.patterns.Pattern` trees,
introspects :class:`~repro.hocl.rules.Rule` products and conditions,
cross-checks pattern index keys against the target solution, and holds
scenario declarations to account against the workflows they generate.

Three check families (see the modules for the catalog):

* rule checks (:mod:`repro.analysis.rule_checks`) — unbound product or
  condition variables, structurally dead index keys, shadowed rules,
  duplicate rule names, ``Ref``/``Splice`` arity mismatches;
* workflow checks (:mod:`repro.analysis.workflow_checks`) — cycles, orphan
  tasks, unreachable tasks/exits, duplicate task names in the source
  document, JSON-safety of the round-trip;
* scenario checks (:mod:`repro.analysis.scenario_checks`) — declared
  cost/failure-profile consistency and seed determinism.

Checks are registered objects (the same idiom as backends and scenarios);
:func:`register_check` accepts third-party checks, and the drivers pick
them up automatically.  Surfaced as ``ginflow lint`` and as a
pytest-importable API::

    from repro.analysis import analyze_scenario

    assert analyze_scenario("epigenomics").ok()
"""

from __future__ import annotations

import threading

from .findings import AnalysisReport, Finding, Severity
from .registry import (
    CHECK_KINDS,
    AnalysisCheck,
    CheckRegistry,
    available_checks,
    checks_for,
    register_check,
    registry,
)

__all__ = [
    "AnalysisCheck",
    "AnalysisReport",
    "CHECK_KINDS",
    "CheckRegistry",
    "Finding",
    "Severity",
    "analyze_all_scenarios",
    "analyze_document",
    "analyze_encoding",
    "analyze_rules",
    "analyze_scenario",
    "analyze_workflow",
    "available_checks",
    "checks_for",
    "ensure_builtin_checks",
    "register_check",
    "registry",
]

_builtins_loaded = False
_builtins_lock = threading.RLock()


def ensure_builtin_checks() -> None:
    """Import the built-in check modules exactly once (idempotent, thread-safe)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _builtins_lock:
        if _builtins_loaded:
            return
        import importlib

        for module in ("rule_checks", "workflow_checks", "scenario_checks"):
            importlib.import_module(f"repro.analysis.{module}")
        _builtins_loaded = True


def __getattr__(name: str) -> object:
    """Lazily expose the drivers (they import hoclflow, which is heavy)."""
    if name in (
        "analyze_all_scenarios",
        "analyze_document",
        "analyze_encoding",
        "analyze_rules",
        "analyze_scenario",
        "analyze_workflow",
    ):
        from . import analyzer

        value = getattr(analyzer, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
