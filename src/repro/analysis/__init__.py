"""repro.analysis — static and dynamic analysis for GinFlow.

The whole system rests on hand-written chemical rules and generated DAGs;
when one of them is wrong, it usually fails *at enactment time*, often as a
silent hang.  This package diagnoses that failure class from both sides:
statically (walking :class:`~repro.hocl.patterns.Pattern` trees,
introspecting :class:`~repro.hocl.rules.Rule` products and conditions,
cross-checking pattern index keys against the target solution) and
dynamically (holding the artifacts a run produces — fire counters, message
accounting, timelines, adaptation plans — to the invariants the enactment
protocol promises).

Seven check families (see the modules for the catalog):

* rule checks (:mod:`repro.analysis.rule_checks`) — unbound product or
  condition variables, structurally dead index keys, shadowed rules,
  duplicate rule names, ``Ref``/``Splice`` arity mismatches;
* workflow checks (:mod:`repro.analysis.workflow_checks`) — cycles, orphan
  tasks, unreachable tasks/exits, duplicate task names in the source
  document, JSON-safety of the round-trip;
* scenario checks (:mod:`repro.analysis.scenario_checks`) — declared
  cost/failure-profile consistency and seed determinism;
* trace checks (:mod:`repro.analysis.trace_checks`) — rules registered but
  never fired across a run or sweep, fire-counter/history/reactions
  accounting, inertness;
* run checks (:mod:`repro.analysis.trace_checks`) — published vs delivered
  message accounting, per-task attempt/failure bookkeeping, exit-task
  terminal states, STATUS timeline ordering;
* plan checks (:mod:`repro.analysis.plan_checks`) — ADAPT-marker
  reachability per adaptation plan, trigger/task existence, live vs
  log-replay state parity;
* obs checks (:mod:`repro.analysis.obs_checks`) — recorded-trace
  invariants: spans closed and well-nested, broker publish/deliver events
  matching the transport counters, reduction-phase span totals reconciling
  with the report's phase timings.

Checks are registered objects (the same idiom as backends and scenarios);
:func:`register_check` accepts third-party checks, and the drivers pick
them up automatically.  Surfaced as ``ginflow lint`` (static), ``ginflow
audit`` (dynamic) and as a pytest-importable API::

    from repro.analysis import analyze_scenario, audit_scenario

    assert analyze_scenario("epigenomics").ok()
    assert audit_scenario("epigenomics:size=20").ok()
"""

from __future__ import annotations

import threading

from .findings import AnalysisReport, Finding, Severity
from .registry import (
    CHECK_KINDS,
    AnalysisCheck,
    CheckRegistry,
    available_checks,
    checks_for,
    register_check,
    registry,
)

__all__ = [
    "AnalysisCheck",
    "AnalysisReport",
    "CHECK_KINDS",
    "CheckRegistry",
    "Finding",
    "Severity",
    "analyze_all_scenarios",
    "analyze_document",
    "analyze_encoding",
    "analyze_rules",
    "analyze_scenario",
    "analyze_workflow",
    "audit_all_scenarios",
    "audit_plans",
    "audit_reduction",
    "audit_run",
    "audit_scenario",
    "audit_workflow",
    "available_checks",
    "checks_for",
    "ensure_builtin_checks",
    "register_check",
    "registry",
]

_builtins_loaded = False
_builtins_lock = threading.RLock()


def ensure_builtin_checks() -> None:
    """Import the built-in check modules exactly once (idempotent, thread-safe)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _builtins_lock:
        if _builtins_loaded:
            return
        import importlib

        for module in (
            "rule_checks",
            "workflow_checks",
            "scenario_checks",
            "trace_checks",
            "plan_checks",
            "obs_checks",
        ):
            importlib.import_module(f"repro.analysis.{module}")
        _builtins_loaded = True


_ANALYZER_DRIVERS = (
    "analyze_all_scenarios",
    "analyze_document",
    "analyze_encoding",
    "analyze_rules",
    "analyze_scenario",
    "analyze_workflow",
)

_AUDIT_DRIVERS = (
    "audit_all_scenarios",
    "audit_plans",
    "audit_reduction",
    "audit_run",
    "audit_scenario",
    "audit_workflow",
    "enactment_rules",
)


def __getattr__(name: str) -> object:
    """Lazily expose the drivers (they import hoclflow/runtime, which are heavy)."""
    if name in _ANALYZER_DRIVERS:
        from . import analyzer

        value = getattr(analyzer, name)
        globals()[name] = value
        return value
    if name in _AUDIT_DRIVERS:
        from . import trace

        value = getattr(trace, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
