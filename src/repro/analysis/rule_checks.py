"""Static checks over HOCL rules in the context of a target solution.

Each check inspects :class:`~repro.hocl.rules.Rule` objects *without running
a reduction*, through the introspection hooks the rule layer exposes —
:meth:`Pattern.bound_names`, :meth:`Template.referenced_names`,
:meth:`Rule.referenced_variables` — plus a conservative bytecode scan of
condition/effect closures.  The failure class they target is the silent one:
a rule whose product references an unbound variable raises only when it
finally fires, a rule whose index key can never appear simply never fires,
and both look exactly like a hang at enactment time.

Checks receive a :class:`RuleScope`: the rules of one solution (a task
sub-solution or the global solution) together with that solution's initial
contents and the index keys the outside world may inject into it.
"""

from __future__ import annotations

import dis
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.hocl.atoms import Atom, Symbol, to_atom
from repro.hocl.multiset import Multiset, atom_index_keys
from repro.hocl.rules import Rule
from repro.hocl.templates import (
    Call,
    Compute,
    ListTemplate,
    Ref,
    SolutionTemplate,
    Splice,
    Template,
    TupleTemplate,
)

from .findings import Finding, Severity
from .registry import register_check

__all__ = ["RuleScope", "condition_variables", "producible_keys"]


@dataclass
class RuleScope:
    """The unit of rule analysis: one solution's rules plus its context.

    Attributes
    ----------
    label:
        Where the rules live (``"task 'T1'"``, ``"global solution"``).
    rules:
        The rules of the solution, in engine insertion order.
    solution:
        The solution's initial contents (used by the dead-index-key check);
        ``None`` disables content-dependent checks.
    injected_keys:
        Index keys the outside world can add to the solution — e.g. the
        ``ADAPT`` marker a global ``trigger_adapt`` pushes into task
        sub-solutions, or atoms delivered by the message layer.
    injected_wildcard:
        ``True`` when the outside world may inject arbitrary atoms, which
        makes the dead-index-key check vacuous for this scope.
    """

    label: str
    rules: tuple[Rule, ...]
    solution: Multiset | None = None
    injected_keys: frozenset[Any] = field(default_factory=frozenset)
    injected_wildcard: bool = False


# --------------------------------------------------------------- introspection
def condition_variables(closure: Callable[..., Any] | None) -> set[str]:
    """Variable names a condition/effect closure reads from its bindings.

    A conservative bytecode scan: it recognises the three idioms the
    codebase uses — ``bindings.value("x")``, ``bindings.atom("x")`` and
    ``bindings["x"]`` — and returns only names it is certain about.  A
    closure using none of these idioms yields the empty set, which callers
    must treat as "unknown", not as "reads nothing".
    """
    code = getattr(closure, "__code__", None)
    if code is None:
        return set()
    names: set[str] = set()
    previous: dis.Instruction | None = None
    for instruction in dis.get_instructions(code):
        if (
            previous is not None
            and previous.opname in ("LOAD_ATTR", "LOAD_METHOD")
            and previous.argval in ("value", "atom", "get")
            and instruction.opname == "LOAD_CONST"
            and isinstance(instruction.argval, str)
        ):
            names.add(instruction.argval)
        if (
            instruction.opname == "BINARY_SUBSCR"
            and previous is not None
            and previous.opname == "LOAD_CONST"
            and isinstance(previous.argval, str)
        ):
            names.add(previous.argval)
        previous = instruction
    return names


def _walk_templates(products: tuple[Any, ...]) -> Iterator[Any]:
    """Every template node reachable from ``products`` (containers included)."""
    stack = list(products)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (TupleTemplate, SolutionTemplate, ListTemplate)):
            stack.extend(node.elements)
        elif isinstance(node, Call):
            stack.extend(node.arguments)


def producible_keys(rules: tuple[Rule, ...]) -> tuple[set[Any], bool, bool]:
    """Index keys the rules of a scope can create in their own solution.

    Returns ``(keys, any_tuple, any_atom)``: the concrete keys producible by
    the rules' top-level products, whether some product builds a tuple with
    a statically unknown head (any ``("tuple", *)`` key becomes reachable),
    and whether some product can create arbitrary atoms (``Call``/``Compute``
    results are external values — the check must then assume anything).

    ``Ref``/``Splice`` products re-insert atoms that were just consumed from
    the same solution, so they cannot make a *new* key appear and contribute
    nothing.
    """
    keys: set[Any] = set()
    any_tuple = False
    any_atom = False
    for rule in rules:
        for node in _walk_templates(rule.products):
            if isinstance(node, (Call, Compute)):
                any_atom = True
            elif isinstance(node, TupleTemplate):
                head = node.elements[0] if node.elements else None
                if isinstance(head, Symbol):
                    keys.add(("tuple", head.name))
                    keys.add(("kind", "tuple"))
                else:
                    any_tuple = True
            elif isinstance(node, SolutionTemplate):
                keys.add(("kind", "solution"))
            elif isinstance(node, ListTemplate):
                keys.add(("kind", "list"))
            elif isinstance(node, (Ref, Splice)):
                pass
            elif isinstance(node, Atom):
                keys.update(atom_index_keys(node))
            elif not isinstance(node, Template):
                try:
                    keys.update(atom_index_keys(to_atom(node)))
                except Exception:  # pragma: no cover - unconvertible literal
                    any_atom = True
    return keys, any_tuple, any_atom


def _key_multiset(rule: Rule) -> Counter[Any]:
    """The rule's pattern index keys as a multiset (``None`` = any bucket)."""
    return Counter(rule.pattern_index_keys)


def _is_sub_multiset(smaller: Counter[Any], larger: Counter[Any]) -> bool:
    return all(larger.get(key, 0) >= count for key, count in smaller.items())


# ---------------------------------------------------------------- the checks
@register_check(
    "rule-unbound-product",
    kind="rule",
    severity=Severity.ERROR,
    description="product templates must only reference variables the patterns bind",
)
def check_unbound_product(scope: RuleScope) -> Iterator[Finding]:
    """Products referencing unbound variables raise only when the rule fires."""
    for rule in scope.rules:
        unbound = sorted(rule.referenced_variables() - rule.bound_variables())
        if unbound:
            names = ", ".join(repr(name) for name in unbound)
            yield Finding(
                check="rule-unbound-product",
                severity=Severity.ERROR,
                subject=rule.name,
                message=f"rule {rule.name!r} products reference {names}, "
                "which no pattern binds",
                fix_hint=f"bind {names} in the rule's patterns or drop the reference",
                location=scope.label,
            )


@register_check(
    "rule-unbound-condition",
    kind="rule",
    severity=Severity.WARNING,
    description="condition/effect closures must only read variables the patterns bind",
)
def check_unbound_condition(scope: RuleScope) -> Iterator[Finding]:
    """An unbound condition variable makes the rule silently never fire.

    The engine treats a ``KeyError`` raised by a condition as a non-match,
    so the rule just never applies — the exact hang-until-timeout class.
    The bytecode scan is conservative, hence the warning severity.
    """
    for rule in scope.rules:
        bound = rule.bound_variables()
        for role, closure in (("condition", rule.condition), ("effect", rule.effect)):
            referenced = condition_variables(closure)
            unbound = sorted(referenced - bound)
            if unbound:
                names = ", ".join(repr(name) for name in unbound)
                yield Finding(
                    check="rule-unbound-condition",
                    severity=Severity.WARNING,
                    subject=rule.name,
                    message=f"rule {rule.name!r} {role} reads {names}, "
                    "which no pattern binds",
                    fix_hint=f"bind {names} in the rule's patterns or stop reading it "
                    f"in the {role}",
                    location=scope.label,
                )


@register_check(
    "rule-dead-index-key",
    kind="rule",
    severity=Severity.ERROR,
    description="every pattern index key must be reachable in the target solution",
)
def check_dead_index_key(scope: RuleScope) -> Iterator[Finding]:
    """A rule whose index key can never appear is registered but structurally dead.

    A key is *live* when the initial solution contains it, when another rule
    of the scope can produce it, or when the outside world can inject it
    (``scope.injected_keys``).  The engine's plausibility filter skips rules
    with no candidates in their buckets, so a dead key means the rule never
    even reaches the matcher.
    """
    if scope.solution is None or scope.injected_wildcard:
        return
    live: set[Any] = set()
    for atom in scope.solution.atoms():
        live.update(atom_index_keys(atom))
    live.update(scope.injected_keys)
    produced, any_tuple, any_atom = producible_keys(scope.rules)
    if any_atom:
        return
    live.update(produced)
    for rule in scope.rules:
        dead = []
        for key in rule.pattern_index_keys:
            if key is None or key in live:
                continue
            if key[0] == "tuple" and any_tuple:
                continue
            if key == ("kind", "tuple") and any_tuple:
                continue
            dead.append(key)
        if dead:
            rendered = ", ".join(f"{kind}:{name}" for kind, name in dead)
            yield Finding(
                check="rule-dead-index-key",
                severity=Severity.ERROR,
                subject=rule.name,
                message=f"rule {rule.name!r} waits for {rendered}, which the solution "
                "never contains and no rule or injection can create",
                fix_hint="fix the pattern's head symbol, or add the atom (or a rule "
                "producing it) to the solution",
                location=scope.label,
            )


@register_check(
    "rule-duplicate-name",
    kind="rule",
    severity=Severity.ERROR,
    description="rule names must be unique within a solution",
)
def check_duplicate_name(scope: RuleScope) -> Iterator[Finding]:
    """Rules compare and hash by name, so same-name rules are indistinguishable.

    A higher-order pattern (or an adaptation removing a rule by name) would
    treat two same-name rules as interchangeable even when their definitions
    differ — almost certainly a copy-paste error.
    """
    by_name: dict[str, list[Rule]] = {}
    for rule in scope.rules:
        by_name.setdefault(rule.name, []).append(rule)
    for name, rules in by_name.items():
        distinct = {id(rule) for rule in rules}
        if len(rules) > 1 and len(distinct) > 1:
            yield Finding(
                check="rule-duplicate-name",
                severity=Severity.ERROR,
                subject=name,
                message=f"{len(rules)} distinct rules named {name!r} live in the same "
                "solution; they compare equal and hash equal",
                fix_hint="rename one of the rules (names are identity for rules)",
                location=scope.label,
            )


@register_check(
    "rule-shadowed",
    kind="rule",
    severity=Severity.WARNING,
    description="an earlier unconditional n-shot rule can starve a later rule at the same priority",
)
def check_shadowed(scope: RuleScope) -> Iterator[Finding]:
    """The engine tries rules in priority-then-insertion order, first match wins.

    An earlier ``replace`` rule with no condition whose pattern requirements
    are a subset of a later rule's (same priority) wins every time both are
    applicable — and, being n-shot, it never goes away, so the later rule
    may never fire.
    """
    for index, later in enumerate(scope.rules):
        later_keys = _key_multiset(later)
        for earlier in scope.rules[:index]:
            if earlier.priority != later.priority:
                continue
            if earlier.one_shot or earlier.condition is not None:
                continue
            if earlier.name == later.name:
                continue  # rule-duplicate-name covers identical names
            if _is_sub_multiset(_key_multiset(earlier), later_keys):
                yield Finding(
                    check="rule-shadowed",
                    severity=Severity.WARNING,
                    subject=later.name,
                    message=f"rule {later.name!r} may never fire: earlier rule "
                    f"{earlier.name!r} (same priority {earlier.priority}, n-shot, "
                    "no condition) matches a subset of its index keys first",
                    fix_hint=f"give {later.name!r} a higher priority, or add a condition "
                    f"to {earlier.name!r}",
                    location=scope.label,
                )
                break


@register_check(
    "rule-template-arity",
    kind="rule",
    severity=Severity.ERROR,
    description="Ref is for scalar bindings, Splice for omega bindings",
)
def check_template_arity(scope: RuleScope) -> Iterator[Finding]:
    """Template arity must agree with the patterns' binding arity.

    ``Ref`` of an omega-bound variable raises ``PatternError`` at fire time
    ("use Splice"); ``Splice`` of a scalar-bound variable silently coerces a
    single atom, which usually hides a wrong pattern.
    """
    for rule in scope.rules:
        omegas = rule.omega_variables()
        scalars = rule.bound_variables() - omegas
        for node in _walk_templates(rule.products):
            if isinstance(node, Ref) and node.name in omegas:
                yield Finding(
                    check="rule-template-arity",
                    severity=Severity.ERROR,
                    subject=rule.name,
                    message=f"rule {rule.name!r} uses Ref({node.name!r}) but "
                    f"{node.name!r} is omega-bound (a list of atoms)",
                    fix_hint=f"use Splice({node.name!r}) to splice the captured atoms",
                    location=scope.label,
                )
            elif isinstance(node, Splice) and node.name in scalars:
                yield Finding(
                    check="rule-template-arity",
                    severity=Severity.WARNING,
                    subject=rule.name,
                    message=f"rule {rule.name!r} uses Splice({node.name!r}) but "
                    f"{node.name!r} is bound to a single atom",
                    fix_hint=f"use Ref({node.name!r}) for scalar bindings",
                    location=scope.label,
                )


@register_check(
    "rule-rebuild-unchanged-fields",
    kind="rule",
    severity=Severity.INFO,
    description="a rule re-emitting a tuple with a matched head could patch it in place",
)
def check_rebuild_unchanged_fields(scope: RuleScope) -> Iterator[Finding]:
    """Delta-eligible rules still doing full reconstruction are a perf smell.

    A rule that matches a field tuple by head (``SRC : <...>``) and re-emits
    a top-level product tuple with the *same* head is usually re-creating a
    structure it mostly kept — the quadratic-rebuild class the in-place
    :class:`~repro.hocl.deltas.RewriteDelta` form eliminates.  Purely
    informational: the rebuild form stays correct, it just costs O(field
    size) per fire instead of O(change).  Rules that already carry a delta,
    keep their match verbatim (``keep_matched``), or compute their products
    opaquely (``Call``/``Compute`` — nothing to patch statically) are exempt.
    """
    for rule in scope.rules:
        if rule.delta is not None or rule.keep_matched:
            continue
        matched_heads = {
            key[1]
            for key in rule.pattern_index_keys
            if isinstance(key, tuple) and key and key[0] == "tuple"
        }
        if not matched_heads:
            continue
        rebuilt: set[str] = set()
        for product in rule.products:
            if isinstance(product, TupleTemplate) and product.elements:
                head = product.elements[0]
                if isinstance(head, Symbol) and head.name in matched_heads:
                    rebuilt.add(head.name)
        if rebuilt:
            heads = ", ".join(repr(name) for name in sorted(rebuilt))
            yield Finding(
                check="rule-rebuild-unchanged-fields",
                severity=Severity.INFO,
                subject=rule.name,
                message=f"rule {rule.name!r} rebuilds the {heads} tuple(s) it "
                "matched; a RewriteDelta could patch them in place",
                fix_hint="add a delta= form with PatchAdd/PatchRemove ops against "
                "the kept fields (keep the products as the rebuild reference)",
                location=scope.label,
            )
