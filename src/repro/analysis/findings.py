"""Finding and report model of the static analyzer.

A *finding* is one diagnosed problem: which check produced it, how severe it
is, what subject it concerns (a rule, a task, a scenario...) and — because
the analyzer exists to prevent silent enactment-time hangs — a concrete fix
hint.  Findings aggregate into an :class:`AnalysisReport`, the value every
``analyze_*`` driver returns and the payload behind ``ginflow lint``.

Severities form a total order (``info < warning < error``); the CLI's
``--fail-on`` threshold and the report's :meth:`AnalysisReport.ok` both
compare against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator

__all__ = ["Severity", "Finding", "AnalysisReport"]


class Severity(str, Enum):
    """Severity of a finding, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Position in the severity order (higher is worse)."""
        return _SEVERITY_RANKS[self]

    def at_least(self, threshold: "Severity") -> bool:
        """Whether this severity reaches ``threshold``."""
        return self.rank >= threshold.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """The severity named by ``text`` (case-insensitive)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            expected = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown severity {text!r}; expected one of: {expected}") from None


_SEVERITY_RANKS = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem.

    Attributes
    ----------
    check:
        Identifier of the check that produced the finding
        (``"rule-unbound-product"``).
    severity:
        How bad it is; drives the ``--fail-on`` gate.
    subject:
        The object concerned: a rule name, a task name, a scenario name.
    message:
        One-line statement of the defect.
    fix_hint:
        Concrete suggestion for repairing it (may be empty).
    location:
        Where the subject lives (``"task 'T1'"``, ``"global solution"``,
        ``"scenario 'epigenomics'"``); groups the CLI output.
    """

    check: str
    severity: Severity
    subject: str
    message: str
    fix_hint: str = ""
    location: str = ""

    def to_payload(self) -> dict[str, Any]:
        """JSON-compatible representation of the finding."""
        return {
            "check": self.check,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "location": self.location,
        }


@dataclass
class AnalysisReport:
    """An ordered collection of findings with severity-aware accessors."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        """Append one finding."""
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        """Append several findings."""
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        """Absorb another report's findings (returns ``self`` for chaining)."""
        self.findings.extend(other.findings)
        return self

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    # ------------------------------------------------------------ severity
    def worst_severity(self) -> Severity | None:
        """The highest severity present, or ``None`` for an empty report."""
        if not self.findings:
            return None
        return max((finding.severity for finding in self.findings), key=lambda s: s.rank)

    def at_least(self, threshold: Severity) -> list[Finding]:
        """Findings whose severity reaches ``threshold``."""
        return [finding for finding in self.findings if finding.severity.at_least(threshold)]

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """Whether no finding reaches the ``fail_on`` threshold."""
        return not self.at_least(fail_on)

    def counts(self) -> dict[str, int]:
        """Number of findings per severity value."""
        counts = {severity.value: 0 for severity in Severity}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    # ------------------------------------------------------------- queries
    def by_check(self, check: str) -> list[Finding]:
        """Findings produced by one check."""
        return [finding for finding in self.findings if finding.check == check]

    def by_location(self) -> dict[str, list[Finding]]:
        """Findings grouped by location, preserving first-seen order."""
        grouped: dict[str, list[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.location, []).append(finding)
        return grouped

    # -------------------------------------------------------------- output
    def to_payload(self, fail_on: Severity = Severity.ERROR) -> dict[str, Any]:
        """JSON-compatible representation of the whole report."""
        return {
            "ok": self.ok(fail_on),
            "fail_on": fail_on.value,
            "counts": self.counts(),
            "findings": [finding.to_payload() for finding in self.findings],
        }

    def to_json(self, fail_on: Severity = Severity.ERROR, indent: int = 2) -> str:
        """The payload as a JSON string."""
        return json.dumps(self.to_payload(fail_on), indent=indent)

    def format_text(self) -> str:
        """Human-readable listing, findings grouped by location."""
        if not self.findings:
            return "no findings"
        lines: list[str] = []
        for location, findings in self.by_location().items():
            lines.append(f"{location or 'workflow'}:")
            for finding in findings:
                lines.append(
                    f"  [{finding.severity.value}] {finding.check} @ {finding.subject}: {finding.message}"
                )
                if finding.fix_hint:
                    lines.append(f"          fix: {finding.fix_hint}")
        counts = self.counts()
        lines.append(
            f"{len(self.findings)} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
        return "\n".join(lines)
