"""The check registry — named, severity-tagged analyzer checks.

Checks are first-class registered objects, mirroring the backend registry of
:mod:`repro.runtime.backends` and the scenario registry of
:mod:`repro.scenarios.registry`: the drivers in
:mod:`repro.analysis.analyzer` resolve every check of a *kind* through this
module, so a third-party check registered before ``ginflow lint`` runs is
picked up without touching the analyzer.

Registering a custom check::

    from repro.analysis import Finding, Severity, register_check

    @register_check(
        "rule-too-many-patterns",
        kind="rule",
        severity=Severity.WARNING,
        description="rules with very wide left-hand sides match slowly",
    )
    def check_pattern_count(scope):
        for rule in scope.rules:
            if len(rule.patterns) > 8:
                yield Finding(
                    check="rule-too-many-patterns",
                    severity=Severity.WARNING,
                    subject=rule.name,
                    message=f"rule {rule.name!r} has {len(rule.patterns)} patterns",
                    fix_hint="split the rule or narrow its patterns",
                    location=scope.label,
                )

A check function receives the context object of its kind (``"rule"`` →
:class:`~repro.analysis.rule_checks.RuleScope`, ``"workflow"`` →
:class:`~repro.analysis.workflow_checks.WorkflowContext`, ``"scenario"`` →
:class:`~repro.analysis.scenario_checks.ScenarioContext`, ``"trace"`` →
:class:`~repro.analysis.trace_checks.TraceScope`, ``"run"`` →
:class:`~repro.analysis.trace_checks.RunScope`, ``"plan"`` →
:class:`~repro.analysis.plan_checks.PlanScope`, ``"obs"`` →
:class:`~repro.analysis.obs_checks.ObsScope`) and returns an iterable of
:class:`~repro.analysis.findings.Finding`.  The first three kinds are
static (``ginflow lint``); the others are dynamic, consuming run
artifacts (``ginflow audit``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from .findings import Finding, Severity

__all__ = [
    "CHECK_KINDS",
    "AnalysisCheck",
    "CheckRegistry",
    "registry",
    "register_check",
    "available_checks",
    "checks_for",
]

#: The context kinds a check can attach to.  ``rule``/``workflow``/``scenario``
#: are the static kinds (``ginflow lint``); ``trace``/``run``/``plan``/``obs``
#: are the dynamic kinds consuming run artifacts (``ginflow audit``).
CHECK_KINDS = ("rule", "workflow", "scenario", "trace", "run", "plan", "obs")

#: A check: context object in, findings out.
CheckFunction = Callable[[Any], Iterable[Finding]]


@dataclass(frozen=True)
class AnalysisCheck:
    """One registered check: an identifier, a kind, and the function itself.

    Attributes
    ----------
    id:
        Stable identifier (``"rule-unbound-product"``), also stamped on every
        finding the check produces.
    kind:
        Which context the check inspects — one of :data:`CHECK_KINDS`.
    severity:
        Default severity of the findings (informational; checks may emit
        individual findings at other severities).
    description:
        One-line human description shown by the check catalog.
    func:
        The check function.
    """

    id: str
    kind: str
    severity: Severity
    description: str
    func: CheckFunction

    def run(self, context: Any) -> list[Finding]:
        """Run the check on ``context`` and return its findings."""
        return list(self.func(context))


class CheckRegistry:
    """A thread-safe id → :class:`AnalysisCheck` registry."""

    def __init__(self) -> None:
        self._checks: dict[str, AnalysisCheck] = {}
        self._lock = threading.Lock()

    def register(
        self,
        check_id: str,
        func: CheckFunction | None = None,
        *,
        kind: str,
        severity: Severity = Severity.ERROR,
        description: str = "",
        replace: bool = False,
    ) -> Any:
        """Register ``func`` as check ``check_id`` (direct call or decorator)."""
        if kind not in CHECK_KINDS:
            raise ValueError(f"check {check_id!r}: kind must be one of {CHECK_KINDS}, got {kind!r}")

        def _store(function: CheckFunction) -> CheckFunction:
            if not callable(function):
                raise TypeError(f"check {check_id!r}: the check must be callable")
            with self._lock:
                if not replace and check_id in self._checks:
                    raise ValueError(
                        f"check {check_id!r} is already registered (pass replace=True to override)"
                    )
                self._checks[check_id] = AnalysisCheck(
                    id=check_id,
                    kind=kind,
                    severity=severity,
                    description=description or _first_doc_line(function),
                    func=function,
                )
            return function

        if func is None:
            return _store
        return _store(func)

    def unregister(self, check_id: str) -> None:
        """Remove a check (no error if absent) — mostly for tests."""
        with self._lock:
            self._checks.pop(check_id, None)

    def get(self, check_id: str) -> AnalysisCheck:
        """The check called ``check_id``; raises ``KeyError`` if unknown."""
        with self._lock:
            return self._checks[check_id]

    def checks(self, kind: str | None = None) -> tuple[AnalysisCheck, ...]:
        """Every registered check (of one kind), in registration order."""
        with self._lock:
            entries = tuple(self._checks.values())
        if kind is None:
            return entries
        return tuple(check for check in entries if check.kind == kind)

    def ids(self) -> tuple[str, ...]:
        """Registered check identifiers, in registration order."""
        with self._lock:
            return tuple(self._checks)


def _first_doc_line(func: CheckFunction) -> str:
    doc = getattr(func, "__doc__", None) or ""
    for line in doc.strip().splitlines():
        if line.strip():
            return line.strip()
    return ""


#: The process-wide registry the lint drivers resolve against.
registry = CheckRegistry()


def register_check(
    check_id: str,
    func: CheckFunction | None = None,
    *,
    kind: str,
    severity: Severity = Severity.ERROR,
    description: str = "",
    replace: bool = False,
) -> Any:
    """Register a check on the global registry (decorator or direct call)."""
    return registry.register(
        check_id, func, kind=kind, severity=severity, description=description, replace=replace
    )


def available_checks() -> tuple[AnalysisCheck, ...]:
    """Every registered check, built-ins included."""
    from . import ensure_builtin_checks

    ensure_builtin_checks()
    return registry.checks()


def checks_for(kind: str) -> tuple[AnalysisCheck, ...]:
    """Every registered check of one kind, built-ins included."""
    from . import ensure_builtin_checks

    ensure_builtin_checks()
    return registry.checks(kind)
