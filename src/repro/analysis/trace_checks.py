"""Dynamic checks over reduction traces and run reports.

Where :mod:`repro.analysis.rule_checks` inspects rules *before* anything
runs, the checks here consume the artifacts a run already produces — the
per-rule fire counters of a :class:`~repro.hocl.engine.ReductionReport` and
the task rows, message counters and timeline of a
:class:`~repro.runtime.results.RunReport` — and flag the failure class only
execution can reveal: a registered rule that never fired over a whole sweep,
a message published but never delivered, task bookkeeping that contradicts
itself, a STATUS timeline that goes backwards.

Two scopes exist at this layer:

* :class:`TraceScope` (kind ``"trace"``) — one reduction trace: registered
  rule names vs the fire counters of a (possibly merged) report;
* :class:`RunScope` (kind ``"run"``) — one enactment: the
  :class:`~repro.runtime.results.RunReport` a runtime assembled.

Every check degrades gracefully when its data is absent (e.g. the
centralized runtime reports no broker counters): missing data means *no
finding*, never a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.hocl.atoms import Symbol
from repro.hocl.engine import ReductionReport
from repro.hocl.patterns import Literal, SolutionPattern, TuplePattern
from repro.hocl.rules import Rule
from repro.hoclflow import keywords as kw
from repro.runtime.results import RunReport

from .findings import Finding, Severity
from .registry import register_check

__all__ = ["TraceScope", "RunScope", "conditional_rule_names"]

#: Marker symbols whose presence in a rule's patterns makes the rule
#: *conditional*: it only fires on failure/adaptation paths, so a clean run
#: legitimately never exercises it.
_CONDITIONAL_MARKERS = frozenset({kw.ADAPT, kw.ERROR, kw.TRIGGER})


def conditional_rule_names(rules: Iterable[Rule]) -> frozenset[str]:
    """Names of rules that structurally wait for a failure/adaptation marker.

    A rule whose patterns contain the ``ADAPT``, ``ERROR`` or ``TRIGGER``
    symbol can only fire on the failure path; a run where every service
    succeeded never exercises it, which is expected — the coverage check
    downgrades such never-fired rules to :attr:`Severity.INFO`.
    """
    conditional: set[str] = set()
    for rule in rules:
        stack = list(rule.patterns)
        while stack:
            node = stack.pop()
            if isinstance(node, Literal):
                atom = node.atom
                if isinstance(atom, Symbol) and atom.name in _CONDITIONAL_MARKERS:
                    conditional.add(rule.name)
                    break
            elif isinstance(node, (TuplePattern, SolutionPattern)):
                stack.extend(node.elements)
    return frozenset(conditional)


@dataclass
class TraceScope:
    """The unit of trace analysis: one reduction trace plus its rule universe.

    Attributes
    ----------
    label:
        Where the trace comes from (``"run 'epigenomics' (simulated)"``).
    report:
        The reduction report — possibly the :meth:`ReductionReport.merge`
        of every reduction of a whole run or sweep.
    registered:
        Names of every rule registered in the reduced solution(s); empty
        disables the coverage checks (the trace alone cannot know what
        *could* have fired).
    conditional:
        Registered rules that only fire on failure/adaptation paths (see
        :func:`conditional_rule_names`); never-fired members are reported
        at :attr:`Severity.INFO` instead of :attr:`Severity.ERROR`.
    """

    label: str
    report: ReductionReport
    registered: tuple[str, ...] = ()
    conditional: frozenset[str] = frozenset()


@dataclass
class RunScope:
    """The unit of run analysis: one enactment's :class:`RunReport`.

    Attributes
    ----------
    label:
        Which run this is (``"scenario 'forkjoin:size=20' (threaded)"``).
    report:
        The report the runtime assembled.
    exit_tasks:
        The workflow's exit tasks, when the caller knows them; enables the
        exit-task terminal-state check.
    """

    label: str
    report: RunReport
    exit_tasks: tuple[str, ...] = ()


# ------------------------------------------------------------- trace checks
@register_check(
    "trace-rule-never-fired",
    kind="trace",
    severity=Severity.ERROR,
    description="every registered rule should fire at least once across the trace",
)
def check_rule_never_fired(scope: TraceScope) -> Iterator[Finding]:
    """A registered rule that never fired is dead weight or a latent hang.

    The dynamic complement of ``rule-dead-index-key``: the static check
    proves a rule *cannot* fire, this one observes that it *did not* — over
    a whole run or sweep, where every rule was expected to participate.
    Rules gated on failure/adaptation markers are reported as info (a clean
    run never exercises them).
    """
    fires = scope.report.rule_fires
    for name in scope.registered:
        if fires.get(name, 0) > 0:
            continue
        if name in scope.conditional:
            yield Finding(
                check="trace-rule-never-fired",
                severity=Severity.INFO,
                subject=name,
                message=f"conditional rule {name!r} never fired (no failure/adaptation "
                "on this trace)",
                fix_hint="expected on clean runs; audit a chaos run to exercise it",
                location=scope.label,
            )
        else:
            yield Finding(
                check="trace-rule-never-fired",
                severity=Severity.ERROR,
                subject=name,
                message=f"rule {name!r} is registered but never fired across the trace",
                fix_hint="check the rule's patterns against the states the run actually "
                "reaches, or remove the rule",
                location=scope.label,
            )


@register_check(
    "trace-unknown-rule",
    kind="trace",
    severity=Severity.ERROR,
    description="every fired rule must be a registered one",
)
def check_unknown_rule(scope: TraceScope) -> Iterator[Finding]:
    """A fire counter for a rule nobody registered means the trace is corrupt.

    Either the report was tampered with, or two different rule sets were
    merged into one trace — both make every other conclusion unreliable.
    """
    if not scope.registered:
        return
    known = set(scope.registered)
    for name in scope.report.rule_fires:
        if name not in known:
            yield Finding(
                check="trace-unknown-rule",
                severity=Severity.ERROR,
                subject=name,
                message=f"trace records {scope.report.rule_fires[name]} firing(s) of "
                f"{name!r}, which is not among the registered rules",
                fix_hint="merge traces only with reports from the same rule universe",
                location=scope.label,
            )


@register_check(
    "trace-non-inert",
    kind="trace",
    severity=Severity.ERROR,
    description="a finished reduction must have reached inertness",
)
def check_non_inert(scope: TraceScope) -> Iterator[Finding]:
    """``inert=False`` means the step limit was hit — a diverging rule set."""
    if not scope.report.inert:
        yield Finding(
            check="trace-non-inert",
            severity=Severity.ERROR,
            subject=scope.label or "reduction",
            message="reduction stopped at the step limit without reaching inertness",
            fix_hint="look for a rule pair that keeps producing each other's input "
            "(or raise max_steps if the workload is legitimately that large)",
            location=scope.label,
        )


@register_check(
    "trace-accounting",
    kind="trace",
    severity=Severity.ERROR,
    description="fire counters, history and the reactions total must agree",
)
def check_trace_accounting(scope: TraceScope) -> Iterator[Finding]:
    """The three redundant reaction counts must tell the same story.

    ``sum(rule_fires)``, ``len(history)`` and ``reactions`` are maintained
    by the same code path; disagreement means the report was tampered with
    or merged incorrectly.
    """
    report = scope.report
    fired_total = sum(report.rule_fires.values())
    if report.rule_fires and fired_total != report.reactions:
        yield Finding(
            check="trace-accounting",
            severity=Severity.ERROR,
            subject=scope.label or "reduction",
            message=f"per-rule fire counters sum to {fired_total} but the report "
            f"records {report.reactions} reactions",
            fix_hint="merge reports only via ReductionReport.merge",
            location=scope.label,
        )
    if report.history and len(report.history) != report.reactions:
        yield Finding(
            check="trace-accounting",
            severity=Severity.ERROR,
            subject=scope.label or "reduction",
            message=f"history records {len(report.history)} reactions but the report "
            f"counts {report.reactions}",
            fix_hint="merge reports only via ReductionReport.merge",
            location=scope.label,
        )


# --------------------------------------------------------------- run checks
#: Legal task-state successions, as driven by the agent lifecycle
#: (idle → ready → invoking → completed/failed; a failed task may be retried
#: or recovered).  Non-state timeline events ("failure", "recovery") reset
#: the per-task machine — a recovered agent restarts its lifecycle.
_STATE_SUCCESSORS = {
    "idle": {"ready", "invoking", "completed", "failed"},
    "ready": {"invoking", "completed", "failed"},
    "invoking": {"completed", "failed"},
    "failed": {"ready", "invoking", "completed"},
    "completed": set(),
}


@register_check(
    "run-message-accounting",
    kind="run",
    severity=Severity.ERROR,
    description="at quiescence every published message must have been delivered",
)
def check_message_accounting(scope: RunScope) -> Iterator[Finding]:
    """published != delivered at the end of a run means messages were lost.

    Every runtime quiesces before assembling its report, so the transport's
    two counters must agree; a shortfall is a lost message (an agent will
    wait forever for it on a rerun), an excess is double delivery.  Reports
    without broker counters (the centralized runtime) are skipped.
    """
    report = scope.report
    published, delivered = report.messages_published, report.messages_delivered
    if published == 0 and delivered == 0:
        return
    if published != delivered:
        yield Finding(
            check="run-message-accounting",
            severity=Severity.ERROR,
            subject=report.broker or "broker",
            message=f"{published} message(s) published but {delivered} delivered "
            "at quiescence",
            fix_hint="a subscriber is missing (lost message) or a message was "
            "delivered twice; check the transport's subscription wiring",
            location=scope.label,
        )


@register_check(
    "run-task-bookkeeping",
    kind="run",
    severity=Severity.ERROR,
    description="per-task attempt/failure/result rows must be self-consistent",
)
def check_task_bookkeeping(scope: RunScope) -> Iterator[Finding]:
    """Each TaskOutcome row carries redundant fields that must agree."""
    for name, outcome in scope.report.tasks.items():
        if outcome.failures > outcome.attempts:
            yield Finding(
                check="run-task-bookkeeping",
                severity=Severity.ERROR,
                subject=name,
                message=f"task {name!r} records {outcome.failures} failure(s) "
                f"but only {outcome.attempts} attempt(s)",
                fix_hint="every failure row must correspond to one attempt",
                location=scope.label,
            )
        if outcome.state == "completed" and outcome.result is None:
            yield Finding(
                check="run-task-bookkeeping",
                severity=Severity.ERROR,
                subject=name,
                message=f"task {name!r} is 'completed' but stores no result",
                fix_hint="a completed task must have stored its RES value",
                location=scope.label,
            )
        if outcome.state == "failed" and not outcome.error:
            yield Finding(
                check="run-task-bookkeeping",
                severity=Severity.ERROR,
                subject=name,
                message=f"task {name!r} is 'failed' but its error flag is unset",
                fix_hint="a failed invocation must leave ERROR in the task's RES",
                location=scope.label,
            )
        if (
            outcome.started_at is not None
            and outcome.finished_at is not None
            and outcome.finished_at < outcome.started_at
        ):
            yield Finding(
                check="run-task-bookkeeping",
                severity=Severity.ERROR,
                subject=name,
                message=f"task {name!r} finished at {outcome.finished_at} before it "
                f"started at {outcome.started_at}",
                fix_hint="started_at/finished_at must come from the same clock",
                location=scope.label,
            )


@register_check(
    "run-exit-terminal",
    kind="run",
    severity=Severity.ERROR,
    description="a succeeded run must hold a result for every exit task (and never time out)",
)
def check_exit_terminal(scope: RunScope) -> Iterator[Finding]:
    """Success is defined by the exit tasks: all present, all with results.

    Also enforces the documented contract that a timed-out run never reports
    ``succeeded=True``.
    """
    report = scope.report
    if report.succeeded and report.timed_out:
        yield Finding(
            check="run-exit-terminal",
            severity=Severity.ERROR,
            subject="run",
            message="report claims succeeded=True and timed_out=True at once",
            fix_hint="a timed-out run never reports succeeded=True (results contract)",
            location=scope.label,
        )
    if not report.succeeded:
        return
    for exit_task in scope.exit_tasks:
        outcome = report.tasks.get(exit_task)
        if outcome is None or outcome.result is None:
            yield Finding(
                check="run-exit-terminal",
                severity=Severity.ERROR,
                subject=exit_task,
                message=f"run succeeded but exit task {exit_task!r} holds no result",
                fix_hint="succeeded=True requires every exit task to have completed",
                location=scope.label,
            )


@register_check(
    "run-status-ordering",
    kind="run",
    severity=Severity.ERROR,
    description="the STATUS timeline must be time-ordered with legal state successions",
)
def check_status_ordering(scope: RunScope) -> Iterator[Finding]:
    """The coordinator's timeline is the run's observable history.

    Timestamps must be non-decreasing, and each task's state events must
    follow the agent lifecycle (a task cannot complete before invoking,
    nor leave 'completed').  "failure"/"recovery" events reset the per-task
    machine: a recovered agent legitimately restarts its lifecycle.
    """
    previous_time: float | None = None
    last_state: dict[str, str] = {}
    for event in scope.report.timeline:
        if previous_time is not None and event.time < previous_time:
            yield Finding(
                check="run-status-ordering",
                severity=Severity.ERROR,
                subject=event.task,
                message=f"timeline goes backwards: event {event.event!r} at "
                f"{event.time} after an event at {previous_time}",
                fix_hint="timeline events must be appended in delivery order",
                location=scope.label,
            )
        previous_time = event.time
        if event.event not in _STATE_SUCCESSORS:
            # "failure"/"recovery" (and any custom marker) reset the machine.
            last_state.pop(event.task, None)
            continue
        before = last_state.get(event.task)
        if before is not None and event.event not in _STATE_SUCCESSORS[before]:
            yield Finding(
                check="run-status-ordering",
                severity=Severity.ERROR,
                subject=event.task,
                message=f"task {event.task!r} moved {before!r} -> {event.event!r}, "
                "which the agent lifecycle does not allow",
                fix_hint="states follow idle -> ready -> invoking -> completed/failed",
                location=scope.label,
            )
        last_state[event.task] = event.event


@register_check(
    "run-reduction-accounting",
    kind="run",
    severity=Severity.ERROR,
    description="the run's chemistry aggregates must agree with the per-rule counters",
)
def check_reduction_accounting(scope: RunScope) -> Iterator[Finding]:
    """The run-level reaction totals are redundant with the fire counters."""
    report = scope.report
    fires = report.extra.get("rule_fires")
    if isinstance(fires, dict) and fires:
        fired_total = sum(fires.values())
        if fired_total != report.reduction_reactions:
            yield Finding(
                check="run-reduction-accounting",
                severity=Severity.ERROR,
                subject="reduction",
                message=f"per-rule fire counters sum to {fired_total} but the run "
                f"records {report.reduction_reactions} reactions",
                fix_hint="both aggregates come from the same ReductionReports; "
                "a mismatch means the report was edited",
                location=scope.label,
            )
    if 0 < report.reduction_match_attempts < report.reduction_reactions:
        yield Finding(
            check="run-reduction-accounting",
            severity=Severity.ERROR,
            subject="reduction",
            message=f"{report.reduction_reactions} reactions out of only "
            f"{report.reduction_match_attempts} match attempts",
            fix_hint="every reaction requires at least one successful match attempt",
            location=scope.label,
        )
