"""Static checks over registered scenarios and their declared profiles.

A scenario declares a cost profile (stage name → duration range) and a
failure profile (metadata merged into every task); the generator is supposed
to stamp exactly that onto the workflow it builds.  These checks hold the
declaration to account: every declared stage must actually appear in the
generated workflow, every stamped stage must be declared, the failure
profile must reach every task, and the generator must be deterministic for
a fixed seed (the contract sweeps and benchmarks rely on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.scenarios.registry import Scenario
from repro.workflow.dag import Workflow
from repro.workflow.json_format import workflow_to_dict

from .findings import Finding, Severity
from .registry import register_check

__all__ = ["ScenarioContext"]

#: Metadata keys carrying the stage/class name stamped by generators.
_STAGE_KEYS = ("stage", "cost_class")


@dataclass
class ScenarioContext:
    """The unit of scenario analysis: a registered scenario plus one build.

    Attributes
    ----------
    scenario:
        The registered :class:`~repro.scenarios.registry.Scenario`.
    workflow:
        One workflow built from it (with ``params``).
    params:
        The parameters the build used (empty = the factory defaults).
    label:
        Display location (``"scenario 'epigenomics'"``).
    """

    scenario: Scenario
    workflow: Workflow
    params: dict[str, Any] = field(default_factory=dict)
    label: str = ""


#: Sentinel distinguishing "metadata key absent" from a stored ``None``.
_MISSING = object()


def _stamped_stages(workflow: Workflow) -> set[str]:
    stages: set[str] = set()
    for task in workflow:
        for key in _STAGE_KEYS:
            value = task.metadata.get(key)
            if isinstance(value, str):
                stages.add(value)
    return stages


@register_check(
    "scenario-cost-profile",
    kind="scenario",
    severity=Severity.ERROR,
    description="declared cost-profile stages and stamped task stages must agree",
)
def check_cost_profile(context: ScenarioContext) -> Iterator[Finding]:
    """Stage names referenced by the cost profile must exist in the workflow.

    A declared stage no task carries means the declaration (what
    ``ginflow scenarios`` shows, what cost models consume) has drifted from
    the generator; a stamped stage the profile does not declare means the
    task's duration was drawn from nowhere.
    """
    declared = set(context.scenario.cost_profile)
    if not declared:
        return
    stamped = _stamped_stages(context.workflow)
    for stage in sorted(declared - stamped):
        yield Finding(
            check="scenario-cost-profile",
            severity=Severity.ERROR,
            subject=stage,
            message=f"scenario {context.scenario.name!r} declares cost-profile stage "
            f"{stage!r}, but no generated task carries it",
            fix_hint="drop the stage from the cost profile or make the generator "
            "emit tasks for it",
            location=context.label,
        )
    for stage in sorted(stamped - declared):
        yield Finding(
            check="scenario-cost-profile",
            severity=Severity.ERROR,
            subject=stage,
            message=f"scenario {context.scenario.name!r} stamps stage {stage!r} on "
            "tasks, but its cost profile does not declare it",
            fix_hint="declare the stage (with its duration range) in the scenario's "
            "cost_profile",
            location=context.label,
        )


@register_check(
    "scenario-failure-profile",
    kind="scenario",
    severity=Severity.ERROR,
    description="the declared failure profile must reach every generated task",
)
def check_failure_profile(context: ScenarioContext) -> Iterator[Finding]:
    """Every task must carry the scenario's declared failure-profile metadata.

    Recovery semantics (idempotency, suggested injection probability) are
    consumed per task at enactment time; a task the profile never reached
    silently falls back to defaults.
    """
    profile = dict(context.scenario.failure_profile)
    if not profile:
        return
    for key, value in profile.items():
        missing = [
            task.name for task in context.workflow if task.metadata.get(key, _MISSING) is _MISSING
        ]
        if missing:
            shown = ", ".join(repr(name) for name in missing[:5])
            suffix = f" (+{len(missing) - 5} more)" if len(missing) > 5 else ""
            yield Finding(
                check="scenario-failure-profile",
                severity=Severity.ERROR,
                subject=key,
                message=f"scenario {context.scenario.name!r} declares failure-profile "
                f"key {key!r}={value!r}, but {len(missing)} task(s) lack it: "
                f"{shown}{suffix}",
                fix_hint="merge the failure profile into every task's metadata "
                "(the catalog's _Builder does this automatically)",
                location=context.label,
            )


@register_check(
    "scenario-determinism",
    kind="scenario",
    severity=Severity.ERROR,
    description="the same spec must always generate the same workflow",
)
def check_determinism(context: ScenarioContext) -> Iterator[Finding]:
    """Scenario factories must be seed-deterministic (the sweep/bench contract).

    Rebuilds the workflow with the same parameters and compares the
    serialised documents; any drift (unseeded randomness, iteration over an
    unordered set...) makes sweeps unrepeatable.
    """
    try:
        first = workflow_to_dict(context.workflow)
        second = workflow_to_dict(context.scenario.build(**context.params))
    except Exception:  # noqa: BLE001 - build/serialisation failures belong to other checks
        return
    if first != second:
        yield Finding(
            check="scenario-determinism",
            severity=Severity.ERROR,
            subject=context.scenario.name,
            message=f"scenario {context.scenario.name!r} generated two different "
            "workflows for identical parameters",
            fix_hint="derive all randomness from the seed parameter and iterate "
            "over ordered collections only",
            location=context.label,
        )
