"""Dynamic checks over recorded observability traces.

The tracing subsystem (:mod:`repro.obs`) promises structural invariants the
rest of the toolchain relies on: spans are closed and well-nested (the
reduction-phase spans of an agent live inside that agent's stimulus span),
the broker events account for exactly the messages the transport counted,
and the reduction-phase span durations are the *same numbers* the engine
accumulated into ``ReductionReport.timings`` — ``ginflow trace summarize``
reconciles against the run report only because of that last invariant.

:class:`ObsScope` (kind ``"obs"``) carries one run's recorded spans and
events plus (optionally) the :class:`~repro.runtime.results.RunReport` the
same run assembled.  As everywhere in the dynamic analyzer, missing data
means *no finding*: a scope without a report skips the accounting checks, a
trace without broker events skips the broker check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.tracer import EventRecord, SpanRecord
from repro.runtime.results import RunReport

from .findings import Finding, Severity
from .registry import register_check

__all__ = ["ObsScope", "reduction_phase_totals"]

#: Reduction-phase span names and the ``ReductionReport.timings`` key whose
#: accumulation each span mirrors.
_PHASE_SPANS = {
    "reduction.match": "match",
    "reduction.rewrite": "rewrite",
    "reduction.patch": "patch",
}


@dataclass
class ObsScope:
    """The unit of observability analysis: one run's recorded trace.

    Attributes
    ----------
    label:
        Which run the trace comes from (``"scenario 'forkjoin' run 1/3"``).
    spans:
        Every recorded :class:`~repro.obs.tracer.SpanRecord`.
    events:
        Every recorded :class:`~repro.obs.tracer.EventRecord`.
    report:
        The :class:`~repro.runtime.results.RunReport` of the same run, when
        the caller has it; ``None`` disables the accounting checks.
    """

    label: str
    spans: tuple[SpanRecord, ...] = ()
    events: tuple[EventRecord, ...] = ()
    report: RunReport | None = field(default=None)


def reduction_phase_totals(spans: tuple[SpanRecord, ...]) -> dict[str, float]:
    """Per-phase reduction seconds recovered from the spans.

    ``match``/``rewrite``/``patch`` are the span durations; ``index`` is the
    sum of the ``index_seconds`` attributes stamped on rewrite/patch spans.
    These are the exact ``perf_counter`` windows the engine accumulated into
    ``ReductionReport.timings``, so the totals reconcile to float-summation
    precision.
    """
    totals = {"match": 0.0, "rewrite": 0.0, "patch": 0.0, "index": 0.0}
    for span in spans:
        phase = _PHASE_SPANS.get(span.name)
        if phase is None:
            continue
        totals[phase] += span.end - span.start
        index_seconds = span.attrs.get("index_seconds")
        if isinstance(index_seconds, (int, float)):
            totals["index"] += float(index_seconds)
    return totals


@register_check(
    "obs-span-unclosed",
    kind="obs",
    severity=Severity.ERROR,
    description="every span must be closed and reduction spans must nest inside stimulus spans",
)
def check_span_unclosed(scope: ObsScope) -> Iterator[Finding]:
    """A span ending before it starts was never closed properly.

    Additionally, on any track that records agent stimulus spans, every
    reduction-phase span must be contained in one of them: the engine only
    runs *inside* a stimulus, so an orphan reduction span means a tracer was
    shared across runs or a span was recorded with the wrong track.
    """
    agent_windows: dict[str, list[tuple[float, float]]] = {}
    for span in scope.spans:
        if span.end < span.start:
            yield Finding(
                check="obs-span-unclosed",
                severity=Severity.ERROR,
                subject=span.name,
                message=f"span {span.name!r} on track {span.track!r} ends at "
                f"{span.end} before it starts at {span.start}",
                fix_hint="spans must record (start, end) from the same monotonic clock; "
                "close every span exactly once",
                location=scope.label,
            )
        if span.name.startswith("agent."):
            agent_windows.setdefault(span.track, []).append((span.start, span.end))
    for span in scope.spans:
        if span.name not in _PHASE_SPANS:
            continue
        windows = agent_windows.get(span.track)
        if not windows:
            continue  # e.g. the centralized track: no stimulus spans exist
        if not any(start <= span.start and span.end <= end for start, end in windows):
            yield Finding(
                check="obs-span-unclosed",
                severity=Severity.ERROR,
                subject=span.name,
                message=f"reduction span {span.name!r} on track {span.track!r} "
                f"([{span.start}, {span.end}]) is not nested inside any agent "
                "stimulus span of that track",
                fix_hint="reductions only run inside a stimulus; do not share one "
                "tracer across runs or re-track engine spans",
                location=scope.label,
            )


@register_check(
    "obs-broker-accounting",
    kind="obs",
    severity=Severity.ERROR,
    description="broker publish/deliver events must match the transport's counters",
)
def check_broker_accounting(scope: ObsScope) -> Iterator[Finding]:
    """The trace's broker events are redundant with the report's counters.

    One ``broker.publish`` event per published message; the ``count``
    attributes of the ``broker.deliver`` events sum to the delivered total
    (a delivery event is only recorded when at least one subscriber got the
    message).  Disagreement means events were dropped or double-recorded.
    Scopes without a report or without broker events are skipped.
    """
    if scope.report is None:
        return
    publishes = [event for event in scope.events if event.name == "broker.publish"]
    delivers = [event for event in scope.events if event.name == "broker.deliver"]
    if not publishes and not delivers:
        return
    published = len(publishes)
    if published != scope.report.messages_published:
        yield Finding(
            check="obs-broker-accounting",
            severity=Severity.ERROR,
            subject="broker",
            message=f"trace records {published} broker.publish event(s) but the run "
            f"counted {scope.report.messages_published} published message(s)",
            fix_hint="record exactly one broker.publish event per published message",
            location=scope.label,
        )
    delivered = sum(
        int(event.attrs.get("count", 0))
        for event in delivers
        if isinstance(event.attrs.get("count", 0), (int, float))
    )
    if delivered != scope.report.messages_delivered:
        yield Finding(
            check="obs-broker-accounting",
            severity=Severity.ERROR,
            subject="broker",
            message=f"broker.deliver event counts sum to {delivered} but the run "
            f"counted {scope.report.messages_delivered} delivered message(s)",
            fix_hint="stamp every broker.deliver event with the number of "
            "subscribers actually handed the message",
            location=scope.label,
        )


@register_check(
    "obs-reduction-reconcile",
    kind="obs",
    severity=Severity.ERROR,
    description="reduction span totals must reconcile with the report's phase timings",
)
def check_reduction_reconcile(scope: ObsScope) -> Iterator[Finding]:
    """Per-phase span durations must equal ``extra["reduction_timings"]``.

    The engine records each span with the very ``perf_counter`` values it
    accumulates into the timings, so the totals agree to float-summation
    precision; real divergence means spans were dropped, duplicated, or a
    tracer recorded more than one run.  Scopes without reduction spans or
    without the report timings are skipped.
    """
    if scope.report is None:
        return
    timings = scope.report.extra.get("reduction_timings")
    if not isinstance(timings, dict):
        return
    totals = reduction_phase_totals(scope.spans)
    if not any(totals.values()):
        return
    for phase, span_total in totals.items():
        reported = timings.get(phase, 0.0)
        if not isinstance(reported, (int, float)):
            continue
        if not math.isclose(span_total, float(reported), rel_tol=1e-6, abs_tol=1e-9):
            yield Finding(
                check="obs-reduction-reconcile",
                severity=Severity.ERROR,
                subject=phase,
                message=f"{phase!r} spans sum to {span_total:.9f}s but the report "
                f"records {float(reported):.9f}s",
                fix_hint="spans must record the exact perf_counter window the engine "
                "accumulates; never resample the clock for the span",
                location=scope.label,
            )
