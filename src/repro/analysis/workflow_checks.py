"""Static checks over workflow structure and serialisation.

These checks inspect a :class:`~repro.workflow.dag.Workflow` (and, when
available, the raw JSON document it was parsed from) without enacting it:
cycles, orphan tasks, unreachable tasks, duplicate names in the source
document, and JSON-safety of every task's inputs/metadata — reusing the
canonicaliser of :mod:`repro.workflow.json_format` so ``ginflow lint`` and
``ginflow validate`` agree by construction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import networkx as nx

from repro.workflow.dag import Workflow
from repro.workflow.errors import JSONFormatError, WorkflowValidationError
from repro.workflow.json_format import workflow_from_dict, workflow_to_dict

from .findings import Finding, Severity
from .registry import register_check

__all__ = ["WorkflowContext"]


@dataclass
class WorkflowContext:
    """The unit of workflow analysis.

    Attributes
    ----------
    workflow:
        The workflow under analysis.  It need not be valid — lint fixtures
        and lenient document loading deliberately produce cyclic graphs.
    document:
        The raw parsed JSON document the workflow came from, when linting a
        file; document-level checks (duplicate task names) need it because
        :class:`Workflow` itself rejects duplicates at construction time.
    label:
        Where the workflow came from (``"workflow 'montage'"``).
    """

    workflow: Workflow
    document: Mapping[str, Any] | None = None
    label: str = ""


@register_check(
    "workflow-cycle",
    kind="workflow",
    severity=Severity.ERROR,
    description="the dependency graph must be acyclic",
)
def check_cycle(context: WorkflowContext) -> Iterator[Finding]:
    """A dependency cycle deadlocks enactment: no task in it can ever start."""
    graph = context.workflow.to_networkx()
    if nx.is_directed_acyclic_graph(graph):
        return
    cycle = nx.find_cycle(graph)
    rendered = " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])
    yield Finding(
        check="workflow-cycle",
        severity=Severity.ERROR,
        subject=cycle[0][0],
        message=f"workflow {context.workflow.name!r} contains a cycle: {rendered}",
        fix_hint="remove one dependency of the cycle so every task has a start order",
        location=context.label,
    )


@register_check(
    "workflow-orphan",
    kind="workflow",
    severity=Severity.WARNING,
    description="tasks disconnected from the rest of the workflow are suspicious",
)
def check_orphans(context: WorkflowContext) -> Iterator[Finding]:
    """An orphan task (no dependencies either way) usually means a missing edge."""
    workflow = context.workflow
    if len(workflow) <= 1:
        return
    for name in workflow.task_names():
        if not workflow.predecessors(name) and not workflow.successors(name):
            yield Finding(
                check="workflow-orphan",
                severity=Severity.WARNING,
                subject=name,
                message=f"task {name!r} has no dependency in either direction",
                fix_hint="connect the task to the DAG or remove it",
                location=context.label,
            )


@register_check(
    "workflow-unreachable",
    kind="workflow",
    severity=Severity.ERROR,
    description="every task (and some exit task) must be reachable from the entry tasks",
)
def check_reachability(context: WorkflowContext) -> Iterator[Finding]:
    """Tasks unreachable from every entry task can never receive their inputs.

    In an acyclic workflow every task is trivially reachable; this fires on
    cyclic graphs, where a cycle component has no entry point — including
    the case where *no* exit task is reachable, i.e. the workflow can never
    terminate.
    """
    workflow = context.workflow
    if len(workflow) == 0:
        return
    entries = workflow.entry_tasks()
    reachable: set[str] = set()
    frontier = list(entries)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(workflow.successors(name))
    unreachable = [name for name in workflow.task_names() if name not in reachable]
    if unreachable:
        rendered = ", ".join(repr(name) for name in unreachable)
        yield Finding(
            check="workflow-unreachable",
            severity=Severity.ERROR,
            subject=unreachable[0],
            message=f"{len(unreachable)} task(s) unreachable from any entry task: {rendered}",
            fix_hint="break the cycle holding them, or give them an entry path",
            location=context.label,
        )
    exits = workflow.exit_tasks()
    if not exits or not any(name in reachable for name in exits):
        yield Finding(
            check="workflow-unreachable",
            severity=Severity.ERROR,
            subject=workflow.name,
            message=f"workflow {workflow.name!r} has no reachable exit task; "
            "it can never terminate",
            fix_hint="ensure at least one task without successors is reachable "
            "from an entry task",
            location=context.label,
        )


@register_check(
    "workflow-duplicate-task",
    kind="workflow",
    severity=Severity.ERROR,
    description="task names in the source document must be unique",
)
def check_duplicate_tasks(context: WorkflowContext) -> Iterator[Finding]:
    """Duplicate names in a JSON document silently shadow each other's edges.

    The :class:`Workflow` constructor rejects duplicates outright, so this
    check reads the *raw document*: it reports the collision as a finding
    (with the offending name) instead of an opaque parse error.
    """
    document = context.document
    if document is None:
        return
    tasks = document.get("tasks")
    if not isinstance(tasks, list):
        return
    names = Counter(
        str(entry.get("name"))
        for entry in tasks
        if isinstance(entry, Mapping) and entry.get("name") is not None
    )
    for name, count in names.items():
        if count > 1:
            yield Finding(
                check="workflow-duplicate-task",
                severity=Severity.ERROR,
                subject=name,
                message=f"task name {name!r} appears {count} times in the document",
                fix_hint="rename the duplicates; task names are identity in the DAG",
                location=context.label,
            )


@register_check(
    "workflow-json-safety",
    kind="workflow",
    severity=Severity.ERROR,
    description="task inputs/metadata must survive the JSON round-trip losslessly",
)
def check_json_safety(context: WorkflowContext) -> Iterator[Finding]:
    """Un-serialisable inputs/metadata break sweeps, artifacts and validate.

    Reuses the canonicaliser of :func:`workflow_to_dict` (the single
    implementation ``ginflow validate`` also delegates to): a value with no
    canonical JSON form is reported here with the offending task named,
    instead of raising deep inside ``json.dumps`` at report time.
    """
    workflow = context.workflow
    try:
        document = workflow_to_dict(workflow)
    except JSONFormatError as exc:
        yield Finding(
            check="workflow-json-safety",
            severity=Severity.ERROR,
            subject=workflow.name,
            message=str(exc),
            fix_hint="use JSON-representable task inputs/metadata "
            "(numbers, strings, bools, lists, dicts)",
            location=context.label,
        )
        return
    if not workflow.is_valid():
        return  # the round-trip needs a parseable (acyclic, non-empty) workflow
    try:
        if workflow_to_dict(workflow_from_dict(document)) != document:
            yield Finding(
                check="workflow-json-safety",
                severity=Severity.ERROR,
                subject=workflow.name,
                message=f"workflow {workflow.name!r}: JSON round-trip is not lossless",
                fix_hint="report this as a bug in the serialiser, or normalise the "
                "offending task values",
                location=context.label,
            )
    except (JSONFormatError, WorkflowValidationError) as exc:
        yield Finding(
            check="workflow-json-safety",
            severity=Severity.ERROR,
            subject=workflow.name,
            message=f"serialised document does not parse back: {exc}",
            fix_hint="normalise the offending task values to plain JSON types",
            location=context.label,
        )
