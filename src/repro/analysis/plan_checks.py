"""Checks over adaptation plans against their workflow encoding.

An adaptation plan only ever runs on the failure path, so a mis-wired plan
is invisible until the one run where it matters — the trigger fires, the
``ADAPT`` markers go out, and nothing happens because the consuming rule was
never placed (or was placed on a task that does not exist).  The checks here
verify the whole marker supply chain *without* needing a failure to occur:

* every task the plan references exists in the encoding
  (``plan-task-existence``);
* every affected task owns exactly the adaptation rules its roles imply,
  and each of those rules structurally consumes an ``ADAPT`` marker
  (``plan-adapt-consumers``);
* every trigger task is wired both ways — the decentralised trigger plan
  *and* the centralised global ``trigger_adapt`` rule
  (``plan-trigger-wiring``);
* bringing a fresh agent to the adapted state through the log-replay
  recovery path (Section IV-B) reaches exactly the state of a live agent
  (``plan-replay-parity``).

Checks receive a :class:`PlanScope`: one resolved
:class:`~repro.hoclflow.adaptation.AdaptationPlan` plus the
:class:`~repro.hoclflow.translator.WorkflowEncoding` it was compiled into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.hocl.atoms import Symbol
from repro.hocl.patterns import Literal, SolutionPattern, TuplePattern
from repro.hocl.rules import Rule
from repro.hoclflow import keywords as kw
from repro.hoclflow.adaptation import AdaptationPlan
from repro.hoclflow.translator import WorkflowEncoding

from .findings import Finding, Severity
from .registry import register_check

__all__ = ["PlanScope"]


@dataclass
class PlanScope:
    """The unit of plan analysis: one resolved plan plus its encoding.

    Attributes
    ----------
    label:
        Which plan this is (``"adaptation 'reroute'"``).
    plan:
        The resolved adaptation plan.
    encoding:
        The workflow encoding the plan's rules were compiled into.
    """

    label: str
    plan: AdaptationPlan
    encoding: WorkflowEncoding


def _consumes_adapt(rule: Rule) -> bool:
    """Whether ``rule``'s patterns structurally consume an ``ADAPT`` marker."""
    stack = list(rule.patterns)
    while stack:
        node = stack.pop()
        if isinstance(node, Literal):
            atom = node.atom
            if isinstance(atom, Symbol) and atom.name == kw.ADAPT:
                return True
        elif isinstance(node, (TuplePattern, SolutionPattern)):
            stack.extend(node.elements)
    return False


def _referenced_tasks(plan: AdaptationPlan) -> Iterator[tuple[str, str]]:
    """Every ``(role, task)`` reference the plan makes to the encoding."""
    for task in plan.replaced:
        yield "replaced task", task
    for task in plan.trigger_tasks:
        yield "trigger task", task
    for task in plan.sources:
        yield "region source", task
    yield "destination", plan.destination
    for task in plan.entry_tasks:
        yield "replacement entry", task
    for task in plan.exit_tasks:
        yield "replacement exit", task
    for source, entries in plan.added_destinations.items():
        yield "ADDDST source", source
        for entry in entries:
            yield "ADDDST target", entry
    for task in plan.new_sources:
        yield "MVSRC source", task


# ---------------------------------------------------------------- the checks
@register_check(
    "plan-task-existence",
    kind="plan",
    severity=Severity.ERROR,
    description="every task an adaptation plan references must exist in the encoding",
)
def check_task_existence(scope: PlanScope) -> Iterator[Finding]:
    """A plan naming a ghost task silently does nothing when it triggers.

    The ``ADAPT`` marker sent to a task that was never deployed is simply
    lost, and the re-wiring the plan promises never happens — the run then
    hangs waiting for a result no one will send.
    """
    known = set(scope.encoding.tasks)
    plan_name = scope.plan.spec.name
    seen: set[tuple[str, str]] = set()
    for role, task in _referenced_tasks(scope.plan):
        if task in known or (role, task) in seen:
            continue
        seen.add((role, task))
        yield Finding(
            check="plan-task-existence",
            severity=Severity.ERROR,
            subject=task,
            message=f"adaptation {plan_name!r} names {task!r} as its {role}, but no "
            "such task is encoded",
            fix_hint="fix the task name in the adaptation spec (or add the task to "
            "the workflow / replacement sub-workflow)",
            location=scope.label,
        )


@register_check(
    "plan-adapt-consumers",
    kind="plan",
    severity=Severity.ERROR,
    description="every ADAPT marker a plan sends must have a consuming rule in place",
)
def check_adapt_consumers(scope: PlanScope) -> Iterator[Finding]:
    """Each role of an affected task implies one ADAPT-consuming rule.

    The trigger sends ``adapt_marker_counts()[task]`` markers to each
    affected task; each marker must be consumed by exactly one one-shot rule
    (``add_dst`` per source role, ``mv_src`` for the destination,
    ``activate`` per entry role).  A missing rule leaves a marker stranded
    in the local solution; a rule that does not pattern-match ``ADAPT``
    never fires at all.
    """
    plan = scope.plan
    plan_name = plan.spec.name
    tasks = scope.encoding.tasks
    expected: dict[str, list[str]] = {}
    for source in plan.sources:
        expected.setdefault(source, []).append(f"add_dst:{plan_name}:{source}")
    expected.setdefault(plan.destination, []).append(f"mv_src:{plan_name}:{plan.destination}")
    for entry in plan.entry_tasks:
        expected.setdefault(entry, []).append(f"activate:{plan_name}:{entry}")

    marker_counts = plan.adapt_marker_counts()
    for task, rule_names in expected.items():
        encoding = tasks.get(task)
        if encoding is None:
            continue  # plan-task-existence already reports the ghost
        local = {rule.name: rule for rule in encoding.local_rules}
        for rule_name in rule_names:
            rule = local.get(rule_name)
            if rule is None:
                yield Finding(
                    check="plan-adapt-consumers",
                    severity=Severity.ERROR,
                    subject=task,
                    message=f"task {task!r} should own rule {rule_name!r} for "
                    f"adaptation {plan_name!r}, but its sub-solution does not "
                    "contain it",
                    fix_hint="re-encode the workflow through encode_workflow (the "
                    "translator places the adaptation rules)",
                    location=scope.label,
                )
            elif not _consumes_adapt(rule):
                yield Finding(
                    check="plan-adapt-consumers",
                    severity=Severity.ERROR,
                    subject=task,
                    message=f"rule {rule_name!r} on task {task!r} does not "
                    "pattern-match the ADAPT marker, so the trigger cannot "
                    "activate it",
                    fix_hint="adaptation rules must consume one ADAPT symbol",
                    location=scope.label,
                )
        if len(rule_names) != marker_counts.get(task, 0):
            yield Finding(
                check="plan-adapt-consumers",
                severity=Severity.ERROR,
                subject=task,
                message=f"task {task!r} will receive {marker_counts.get(task, 0)} "
                f"ADAPT marker(s) from {plan_name!r} but owns "
                f"{len(rule_names)} consuming role rule(s)",
                fix_hint="marker counts and role rules both derive from the plan's "
                "source/destination/entry lists; the plan was edited inconsistently",
                location=scope.label,
            )
    for entry in plan.entry_tasks:
        encoding = tasks.get(entry)
        if encoding is not None and not encoding.has_trigger_placeholder:
            yield Finding(
                check="plan-adapt-consumers",
                severity=Severity.ERROR,
                subject=entry,
                message=f"replacement entry {entry!r} has no TRIGGER placeholder in "
                "its SRC, so it would start before the adaptation fires (and its "
                f"activate rule for {plan_name!r} could never match)",
                fix_hint="replacement entry tasks must be encoded with the TRIGGER "
                "placeholder (has_trigger_placeholder=True)",
                location=scope.label,
            )


@register_check(
    "plan-trigger-wiring",
    kind="plan",
    severity=Severity.ERROR,
    description="every trigger task must be wired for both execution modes",
)
def check_trigger_wiring(scope: PlanScope) -> Iterator[Finding]:
    """The trigger fires through two different mechanisms, one per mode.

    Decentralised runs need the plan listed in the trigger task's
    ``trigger_plans`` (the agent's local ``trigger_adapt`` rule is built
    from it); centralised runs need the global ``trigger_adapt`` rule.  A
    missing wire means the adaptation silently never triggers in that mode.
    """
    plan = scope.plan
    plan_name = plan.spec.name
    global_rules = {rule.name for rule in scope.encoding.global_rules}
    for trigger in plan.trigger_tasks:
        encoding = scope.encoding.tasks.get(trigger)
        if encoding is None:
            continue  # plan-task-existence already reports the ghost
        if not any(p.spec.name == plan_name for p in encoding.trigger_plans):
            yield Finding(
                check="plan-trigger-wiring",
                severity=Severity.ERROR,
                subject=trigger,
                message=f"trigger task {trigger!r} does not list adaptation "
                f"{plan_name!r} in its trigger plans; decentralised runs would "
                "never trigger it",
                fix_hint="encode_workflow appends the plan to the trigger task's "
                "trigger_plans — re-encode instead of editing encodings",
                location=scope.label,
            )
        if f"trigger_adapt:{plan_name}:{trigger}" not in global_rules:
            yield Finding(
                check="plan-trigger-wiring",
                severity=Severity.ERROR,
                subject=trigger,
                message=f"no global rule 'trigger_adapt:{plan_name}:{trigger}' "
                "exists; centralised runs would never trigger the adaptation",
                fix_hint="encode_workflow creates one trigger_adapt rule per "
                "(plan, trigger task) pair — re-encode instead of editing encodings",
                location=scope.label,
            )


@register_check(
    "plan-replay-parity",
    kind="plan",
    severity=Severity.ERROR,
    description="log-replay recovery must rebuild the exact adapted state",
)
def check_replay_parity(scope: PlanScope) -> Iterator[Finding]:
    """Replays the plan's ADAPT delivery through the recovery path (IV-B).

    For every affected task, a live agent (boot + ``receive_adapt``) and a
    replayed agent (:func:`~repro.agents.recovery.rebuild_agent` over the
    logged ADAPT message) must end with identical local solutions — the
    paper's recovery correctness argument, exercised with the task's real
    rules.  Divergence means the live delivery path and the replay path
    interpret the ADAPT payload differently.
    """
    from repro.agents.core import AgentCore
    from repro.agents.recovery import rebuild_agent
    from repro.messaging.message import Message, MessageKind, adapt_count, agent_topic

    plan = scope.plan
    marker_counts = plan.adapt_marker_counts()
    for task in plan.affected_tasks():
        encoding = scope.encoding.tasks.get(task)
        if encoding is None:
            continue  # plan-task-existence already reports the ghost
        count = marker_counts.get(task, 1)
        payload = None if count == 1 else count
        live = AgentCore(encoding)
        live.boot()
        live.receive_adapt(adapt_count(payload))
        message = Message(
            topic=agent_topic(task),
            kind=MessageKind.ADAPT,
            sender="audit",
            recipient=task,
            payload=payload,
        )
        replayed, _actions = rebuild_agent(encoding, [message])
        if replayed.solution != live.solution:
            yield Finding(
                check="plan-replay-parity",
                severity=Severity.ERROR,
                subject=task,
                message=f"replaying the ADAPT delivery for task {task!r} (payload "
                f"{payload!r}) rebuilds a different local solution than the live "
                "delivery",
                fix_hint="live deliver and recovery.replay_messages must share the "
                "adapt_count coercion and apply messages in logged order",
                location=scope.label,
            )
