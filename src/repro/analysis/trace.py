"""Audit drivers: run workflows and hold the artifacts to the dynamic checks.

The drivers are what ``ginflow audit`` and the pytest API call:

* :func:`audit_reduction` — run the trace checks on one (possibly merged)
  :class:`~repro.hocl.engine.ReductionReport` against a rule universe;
* :func:`audit_run` — run the run-invariant checks on one
  :class:`~repro.runtime.results.RunReport`;
* :func:`audit_plans` — run the adaptation-plan checks on every plan of a
  :class:`~repro.hoclflow.translator.WorkflowEncoding`;
* :func:`audit_workflow` — the composition: encode, audit the plans,
  enact the workflow ``repeats`` times, audit every run's invariants, and
  audit rule coverage over the fire counters merged across all runs;
* :func:`audit_scenario` / :func:`audit_all_scenarios` — the same, for
  registered scenarios (``ginflow audit --scenario forkjoin:size=20``).

Static analysis (``ginflow lint``, :mod:`repro.analysis.analyzer`) proves
what *cannot* happen; these drivers observe what *did* — together a scenario
run doubles as a correctness oracle.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.hocl.engine import ReductionReport
from repro.hocl.rules import Rule
from repro.hoclflow.translator import WorkflowEncoding, encode_workflow
from repro.runtime.results import RunReport
from repro.scenarios.registry import available_scenarios, get_scenario, parse_scenario_spec
from repro.workflow.dag import Workflow

from .findings import AnalysisReport, Finding, Severity
from .obs_checks import ObsScope
from .plan_checks import PlanScope
from .registry import checks_for
from .trace_checks import RunScope, TraceScope, conditional_rule_names

__all__ = [
    "enactment_rules",
    "audit_reduction",
    "audit_run",
    "audit_plans",
    "audit_workflow",
    "audit_scenario",
    "audit_all_scenarios",
]


def _run_checks(kind: str, context: Any) -> AnalysisReport:
    report = AnalysisReport()
    for check in checks_for(kind):
        report.extend(check.run(context))
    return report


def enactment_rules(encoding: WorkflowEncoding, mode: str = "simulated") -> tuple[Rule, ...]:
    """The rule universe a run of ``encoding`` registers, unique by name.

    Decentralised modes instantiate :func:`~repro.agents.local_rules.build_local_rules`
    per agent (local ``gw_call``/``gw_pass`` variants plus per-plan local
    triggers); the centralised mode folds the global rules and every task's
    own local rules into one multiset.  Fire counters aggregate by *name*
    across agents, so the universe does too.
    """
    rules: dict[str, Rule] = {}
    if mode == "centralized":
        for rule in encoding.global_rules:
            rules.setdefault(rule.name, rule)
        for task in encoding.tasks.values():
            for rule in task.local_rules:
                rules.setdefault(rule.name, rule)
    else:
        from repro.agents.local_rules import build_local_rules

        def _sink(_action: Any) -> None:
            return None

        for task in encoding.tasks.values():
            for rule in build_local_rules(task, _sink):
                rules.setdefault(rule.name, rule)
    return tuple(rules.values())


# ------------------------------------------------------------------- drivers
def audit_reduction(
    report: ReductionReport,
    rules: Iterable[Rule | str] = (),
    label: str = "reduction",
) -> AnalysisReport:
    """Run the trace checks on one reduction report.

    ``rules`` is the rule universe the reduced solution(s) registered —
    :class:`~repro.hocl.rules.Rule` objects enable the conditional-rule
    classification (never-fired failure-path rules downgrade to info);
    bare names disable it.  An empty universe disables the coverage checks.
    """
    rule_objects = [rule for rule in rules if isinstance(rule, Rule)]
    names = tuple(rule.name if isinstance(rule, Rule) else rule for rule in rules)
    scope = TraceScope(
        label=label,
        report=report,
        registered=names,
        conditional=conditional_rule_names(rule_objects),
    )
    return _run_checks("trace", scope)


def audit_run(
    report: RunReport,
    exit_tasks: Iterable[str] = (),
    label: str = "",
) -> AnalysisReport:
    """Run the enactment-invariant checks on one run report."""
    scope = RunScope(
        label=label or f"run ({report.mode})",
        report=report,
        exit_tasks=tuple(exit_tasks),
    )
    return _run_checks("run", scope)


def audit_plans(encoding: WorkflowEncoding, label: str = "") -> AnalysisReport:
    """Run the adaptation-plan checks on every plan of ``encoding``."""
    prefix = f"{label}: " if label else ""
    report = AnalysisReport()
    for plan in encoding.plans:
        scope = PlanScope(
            label=f"{prefix}adaptation {plan.spec.name!r}",
            plan=plan,
            encoding=encoding,
        )
        report.merge(_run_checks("plan", scope))
    return report


def _merged_fires(runs: list[RunReport]) -> ReductionReport:
    """One synthetic reduction report aggregating every run's fire counters."""
    merged = ReductionReport()
    for run in runs:
        fires = run.extra.get("rule_fires")
        if isinstance(fires, dict):
            partial = ReductionReport(
                reactions=sum(fires.values()),
                match_attempts=run.reduction_match_attempts,
                rule_fires=dict(fires),
            )
            merged.merge(partial)
    return merged


def audit_workflow(
    workflow: Workflow,
    *,
    mode: str = "simulated",
    nodes: int = 5,
    seed: int = 1,
    repeats: int = 1,
    timeout: float = 120.0,
    reduction: str = "serial",
    label: str = "",
    **overrides: Any,
) -> AnalysisReport:
    """Enact ``workflow`` ``repeats`` times and audit every artifact.

    Composition: plan checks on the encoding, run-invariant checks on each
    run (seeds ``seed .. seed+repeats-1``), observability checks on each
    run's recorded trace (every audited run records spans and events through
    a per-repeat :class:`~repro.obs.RecordingTracer`), then one coverage
    pass over the fire counters merged across all runs — a rule only has to
    fire in *one* repeat (on *one* agent) to be covered.  A run that does
    not succeed is itself a finding, and disables the coverage pass (a
    cut-off run proves nothing about which rules could have fired).
    """
    from repro.obs import MetricsRegistry, Observability, RecordingTracer
    from repro.runtime import GinFlow, GinFlowConfig

    where = label or f"workflow {workflow.name!r}"
    report = AnalysisReport()
    encoding = encode_workflow(workflow)
    report.merge(audit_plans(encoding, label=where))

    exit_tasks = tuple(workflow.exit_tasks())
    runs: list[RunReport] = []
    all_succeeded = True
    for repeat in range(max(1, repeats)):
        # a fresh tracer per repeat: the obs checks reason about ONE run's
        # spans against that run's report
        obs = Observability(tracer=RecordingTracer(), metrics=MetricsRegistry())
        config = GinFlowConfig(
            mode=mode, nodes=nodes, seed=seed + repeat, reduction=reduction, obs=obs
        )
        run = GinFlow(config).run(workflow, timeout=timeout, **overrides)
        runs.append(run)
        run_label = f"{where}: run {repeat + 1}/{max(1, repeats)} ({mode}, seed={seed + repeat})"
        report.merge(audit_run(run, exit_tasks=exit_tasks, label=run_label))
        scope = ObsScope(
            label=run_label,
            spans=tuple(obs.tracer.spans),
            events=tuple(obs.tracer.events),
            report=run,
        )
        report.merge(_run_checks("obs", scope))
        if not run.succeeded or run.timed_out:
            all_succeeded = False
            reason = "timed out" if run.timed_out else "did not succeed"
            report.add(
                Finding(
                    check="run-enactment-failed",
                    severity=Severity.ERROR,
                    subject=workflow.name,
                    message=f"enactment {reason} (mode={mode}, seed={seed + repeat})",
                    fix_hint="audit expects clean runs; fix the workflow/services "
                    "first, then re-audit",
                    location=run_label,
                )
            )

    merged = _merged_fires(runs)
    if all_succeeded and merged.rule_fires:
        rules = enactment_rules(encoding, mode)
        report.merge(
            audit_reduction(
                merged,
                rules=rules,
                label=f"{where}: coverage over {len(runs)} run(s) ({mode})",
            )
        )
    return report


def audit_scenario(
    spec: str,
    *,
    mode: str = "simulated",
    nodes: int = 5,
    seed: int = 1,
    repeats: int = 1,
    timeout: float = 120.0,
    reduction: str = "serial",
    **params: Any,
) -> AnalysisReport:
    """Audit one registered scenario (spec syntax ``name[:k=v,...]``)."""
    name, spec_params = parse_scenario_spec(spec)
    spec_params.update(params)
    scenario = get_scenario(name)
    workflow = scenario.build(**spec_params)
    return audit_workflow(
        workflow,
        mode=mode,
        nodes=nodes,
        seed=seed,
        repeats=repeats,
        timeout=timeout,
        reduction=reduction,
        label=f"scenario {name!r}",
    )


def audit_all_scenarios(
    *,
    size: int = 20,
    mode: str = "simulated",
    nodes: int = 5,
    seed: int = 1,
    repeats: int = 1,
    timeout: float = 120.0,
    reduction: str = "serial",
) -> AnalysisReport:
    """Audit every registered scenario at a small size (CI smoke profile)."""
    report = AnalysisReport()
    for name in available_scenarios():
        report.merge(
            audit_scenario(
                name,
                mode=mode,
                nodes=nodes,
                seed=seed,
                repeats=repeats,
                timeout=timeout,
                reduction=reduction,
                size=size,
            )
        )
    return report
