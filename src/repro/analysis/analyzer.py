"""Lint drivers: turn workflows, scenarios and rule sets into reports.

The drivers are what ``ginflow lint`` and the pytest API call:

* :func:`analyze_rules` — run the rule checks on one solution's rule set;
* :func:`analyze_encoding` — analyze every scope of a
  :class:`~repro.hoclflow.translator.WorkflowEncoding` (the global solution
  plus each task sub-solution), wiring the cross-scope injection keys
  (e.g. the ``ADAPT`` markers a global ``trigger_adapt`` pushes into task
  sub-solutions) so intentionally-injected atoms are not reported as dead;
* :func:`analyze_workflow` — structural workflow checks, then (when the
  workflow is structurally sound) the full encoding analysis;
* :func:`analyze_document` — lenient loading of a raw JSON document, so a
  broken file yields findings instead of one opaque parse error;
* :func:`analyze_scenario` / :func:`analyze_all_scenarios` — build a
  registered scenario and hold it to its declared profiles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.hocl.multiset import Multiset, atom_index_keys
from repro.hocl.rules import Rule
from repro.hocl.templates import (
    Call,
    Compute,
    ListTemplate,
    Ref,
    SolutionTemplate,
    Splice,
    TupleTemplate,
)
from repro.hocl.atoms import Atom, Symbol
from repro.hoclflow.translator import WorkflowEncoding, encode_workflow
from repro.scenarios.registry import (
    available_scenarios,
    get_scenario,
    parse_scenario_spec,
)
from repro.workflow.dag import Task, Workflow
from repro.workflow.errors import JSONFormatError, WorkflowValidationError

from .findings import AnalysisReport, Finding, Severity
from .registry import checks_for
from .rule_checks import RuleScope
from .scenario_checks import ScenarioContext
from .workflow_checks import WorkflowContext

__all__ = [
    "analyze_rules",
    "analyze_encoding",
    "analyze_workflow",
    "analyze_document",
    "analyze_scenario",
    "analyze_all_scenarios",
]


# ------------------------------------------------------------------- helpers
def _run_checks(kind: str, context: Any) -> AnalysisReport:
    report = AnalysisReport()
    for check in checks_for(kind):
        report.extend(check.run(context))
    return report


def _nested_injected_keys(rules: Iterable[Rule]) -> tuple[set[Any], bool]:
    """Index keys the rules can inject into *nested* solutions.

    A global rule like ``trigger_adapt`` rewrites a task tuple and plants
    atoms (the ``ADAPT`` marker) inside the task's sub-solution; from the
    task scope's point of view those atoms arrive from outside.  Walks every
    ``SolutionTemplate`` in the products and collects the keys of its
    element atoms; elements that are themselves dynamic (``Ref``/``Call``/
    ``Compute``/tuples with unknown heads) set the wildcard flag.
    """
    keys: set[Any] = set()
    wildcard = False
    stack: list[Any] = []
    for rule in rules:
        stack.extend(rule.products)
    in_solution: list[Any] = []
    while stack:
        node = stack.pop()
        if isinstance(node, SolutionTemplate):
            in_solution.extend(node.elements)
        elif isinstance(node, (TupleTemplate, ListTemplate)):
            stack.extend(node.elements)
        elif isinstance(node, Call):
            stack.extend(node.arguments)
        elif isinstance(node, Compute):
            wildcard = True
    while in_solution:
        node = in_solution.pop()
        if isinstance(node, Atom):
            keys.update(atom_index_keys(node))
        elif isinstance(node, SolutionTemplate):
            keys.add(("kind", "solution"))
            in_solution.extend(node.elements)
        elif isinstance(node, TupleTemplate):
            head = node.elements[0] if node.elements else None
            if isinstance(head, Symbol):
                keys.add(("tuple", head.name))
                keys.add(("kind", "tuple"))
            else:
                wildcard = True
            in_solution.extend(node.elements[1:] if isinstance(head, Symbol) else node.elements)
        elif isinstance(node, (Ref, Splice)):
            pass  # re-inserts already-present atoms: no new keys
        elif isinstance(node, (Call, Compute)):
            wildcard = True
    return keys, wildcard


# ------------------------------------------------------------------- drivers
def analyze_rules(
    rules: Iterable[Rule],
    solution: Multiset | None = None,
    label: str = "rules",
    injected_keys: Iterable[Any] = (),
    injected_wildcard: bool = False,
) -> AnalysisReport:
    """Run every rule check on one solution's rule set."""
    scope = RuleScope(
        label=label,
        rules=tuple(rules),
        solution=solution,
        injected_keys=frozenset(injected_keys),
        injected_wildcard=injected_wildcard,
    )
    return _run_checks("rule", scope)


def analyze_encoding(encoding: WorkflowEncoding, label: str = "") -> AnalysisReport:
    """Analyze every rule scope of a workflow encoding.

    One scope per task sub-solution plus one for the global solution.  Task
    scopes receive, as injected keys, whatever the global rules can plant
    inside nested solutions — that is how the ``ADAPT`` marker reaches the
    adaptation rules without being a false "dead index key".
    """
    prefix = f"{label}: " if label else ""
    report = AnalysisReport()
    report.merge(
        analyze_rules(
            encoding.global_rules,
            solution=encoding.to_multiset(include_rules=True),
            label=f"{prefix}global solution",
        )
    )
    injected, wildcard = _nested_injected_keys(encoding.global_rules)
    for name, task in encoding.tasks.items():
        task_injected, task_wildcard = _nested_injected_keys(task.local_rules)
        report.merge(
            analyze_rules(
                task.local_rules,
                solution=task.initial_solution(include_rules=True),
                label=f"{prefix}task {name!r}",
                injected_keys=injected | task_injected,
                injected_wildcard=wildcard or task_wildcard,
            )
        )
    return report


def analyze_workflow(
    workflow: Workflow,
    document: Mapping[str, Any] | None = None,
    label: str = "",
) -> AnalysisReport:
    """Structural checks, then — if the workflow is sound — encoding checks."""
    where = label or f"workflow {workflow.name!r}"
    context = WorkflowContext(workflow=workflow, document=document, label=where)
    report = _run_checks("workflow", context)
    structural_errors = [finding for finding in report if finding.severity is Severity.ERROR]
    if not structural_errors and len(workflow) > 0 and workflow.is_valid():
        try:
            encoding = encode_workflow(workflow)
        except (WorkflowValidationError, ValueError) as exc:
            report.add(
                Finding(
                    check="workflow-encoding",
                    severity=Severity.ERROR,
                    subject=workflow.name,
                    message=f"workflow does not encode to HOCL: {exc}",
                    fix_hint="fix the adaptation specifications named in the message",
                    location=where,
                )
            )
        else:
            report.merge(analyze_encoding(encoding, label=where))
    return report


def analyze_document(source: str | Path | Mapping[str, Any]) -> AnalysisReport:
    """Lint a raw JSON workflow document (path, JSON text, or parsed dict).

    Loads *leniently*: structural offences the strict parser would raise on
    (duplicate task names, dependencies on unknown tasks, cycles) become
    findings, and analysis continues on the salvageable part of the DAG.
    """
    report = AnalysisReport()
    document = _load_document(source)
    label = f"workflow {document.get('name', '?')!r}" if isinstance(document, Mapping) else ""
    if not isinstance(document, Mapping):
        report.add(
            Finding(
                check="workflow-document",
                severity=Severity.ERROR,
                subject=str(source),
                message=f"workflow document must be a JSON object, got "
                f"{type(document).__name__}",
                fix_hint='start from {"name": ..., "tasks": [...]}',
                location=label,
            )
        )
        return report
    workflow = _lenient_workflow(document, report, label)
    if workflow is None:
        return report
    return report.merge(analyze_workflow(workflow, document=document, label=label))


def analyze_scenario(spec: str, **overrides: Any) -> AnalysisReport:
    """Lint one registered scenario (spec syntax ``name[:k=v,...]``)."""
    name, params = parse_scenario_spec(spec)
    params.update(overrides)
    scenario = get_scenario(name)
    label = f"scenario {name!r}"
    workflow = scenario.build(**params)
    context = ScenarioContext(scenario=scenario, workflow=workflow, params=params, label=label)
    report = _run_checks("scenario", context)
    return report.merge(analyze_workflow(workflow, label=label))


def analyze_all_scenarios() -> AnalysisReport:
    """Lint every registered scenario at its default parameters."""
    report = AnalysisReport()
    for name in available_scenarios():
        report.merge(analyze_scenario(name))
    return report


# ------------------------------------------------------- lenient doc loading
def _load_document(source: str | Path | Mapping[str, Any]) -> Any:
    if isinstance(source, Mapping):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".json")
    ):
        path = Path(source)
        if not path.exists():
            raise JSONFormatError(f"workflow file not found: {path}")
        text = path.read_text(encoding="utf-8")
    else:
        text = str(source)
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise JSONFormatError(f"invalid JSON workflow document: {exc}") from exc


def _lenient_workflow(
    document: Mapping[str, Any], report: AnalysisReport, label: str
) -> Workflow | None:
    """Build a workflow from ``document``, downgrading parse errors to findings.

    Duplicate task names keep their first occurrence; dependencies on
    unknown tasks and self-dependencies are dropped (each with a finding).
    Cycles are *kept* — the workflow checks report them properly.
    """
    name = document.get("name", "workflow")
    tasks = document.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        report.add(
            Finding(
                check="workflow-document",
                severity=Severity.ERROR,
                subject=str(name),
                message=f"workflow {name!r}: 'tasks' must be a non-empty list",
                fix_hint="add at least one task object with name and service",
                location=label,
            )
        )
        return None
    workflow = Workflow(name=str(name))
    dependencies: list[tuple[str, str]] = []
    for entry in tasks:
        if not isinstance(entry, Mapping):
            continue
        task_name = entry.get("name")
        service = entry.get("service")
        if not isinstance(task_name, str) or not task_name or not isinstance(service, str):
            report.add(
                Finding(
                    check="workflow-document",
                    severity=Severity.ERROR,
                    subject=str(task_name),
                    message=f"task entry {task_name!r} lacks a usable name/service",
                    fix_hint="every task needs non-empty string 'name' and 'service'",
                    location=label,
                )
            )
            continue
        if task_name in workflow:
            continue  # workflow-duplicate-task reports it from the raw document
        try:
            workflow.add_task(
                Task(
                    name=task_name,
                    service=service,
                    inputs=list(entry.get("inputs", [])),
                    duration=float(entry.get("duration", 0.0)),
                    metadata=dict(entry.get("metadata", {})),
                )
            )
        except (WorkflowValidationError, TypeError, ValueError) as exc:
            report.add(
                Finding(
                    check="workflow-document",
                    severity=Severity.ERROR,
                    subject=task_name,
                    message=f"task {task_name!r} does not parse: {exc}",
                    fix_hint="fix the offending field named in the message",
                    location=label,
                )
            )
            continue
        for source_name in entry.get("depends_on", []):
            dependencies.append((str(source_name), task_name))
    for source_name, destination in dependencies:
        try:
            workflow.add_dependency(source_name, destination)
        except WorkflowValidationError as exc:
            report.add(
                Finding(
                    check="workflow-document",
                    severity=Severity.ERROR,
                    subject=destination,
                    message=f"dependency {source_name!r} -> {destination!r} is invalid: {exc}",
                    fix_hint="reference existing, distinct task names in depends_on",
                    location=label,
                )
            )
    if len(workflow) == 0:
        return None
    return workflow
