"""Broker abstractions: profiles, persistent logs, and the broker interface.

The paper supports two message-queue middlewares and uses exactly two of
their properties:

* their relative **per-message cost** (Fig. 14 shows the whole workflow
  running ≈ 4× slower on Kafka than on ActiveMQ), captured here by
  :class:`BrokerProfile`;
* Kafka's **persistent, replayable log**, which is what makes the SA
  fault-recovery mechanism of Section IV-B possible, captured by
  :class:`MessageLog` and the ``persistent`` flag.

Concrete broker implementations come in two flavours: the in-process,
thread-safe brokers of :mod:`repro.messaging.activemq` /
:mod:`repro.messaging.kafka` used by the threaded runtime, and the
virtual-time :class:`~repro.messaging.simulated.SimulatedBroker` used by the
simulation runtime.  All share the profiles and log defined here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

__all__ = ["BrokerProfile", "ACTIVEMQ_PROFILE", "KAFKA_PROFILE", "MessageLog", "Broker", "profile_by_name"]


@dataclass(frozen=True)
class BrokerProfile:
    """Performance/feature profile of a message-queue middleware.

    Attributes
    ----------
    name:
        ``"activemq"`` or ``"kafka"`` (other middlewares can be described the
        same way).
    per_message_time:
        Broker-side processing time per message (seconds); messages queue
        behind each other on the broker's dispatcher.
    delivery_overhead:
        Fixed client-side overhead added to every delivery (serialisation,
        acknowledgement round-trip).
    persistent:
        Whether messages are durably logged and can be replayed — required by
        the agent-recovery mechanism.
    """

    name: str
    per_message_time: float
    delivery_overhead: float
    persistent: bool

    def scaled(self, factor: float) -> "BrokerProfile":
        """A profile with all time costs multiplied by ``factor``."""
        return BrokerProfile(
            name=self.name,
            per_message_time=self.per_message_time * factor,
            delivery_overhead=self.delivery_overhead * factor,
            persistent=self.persistent,
        )


#: ActiveMQ 5.6-like profile: fast, transient messaging.  The constants are
#: calibrated so that the reproduced Fig. 12/14 keep the paper's shape (see
#: DESIGN.md and repro.runtime.costs).
ACTIVEMQ_PROFILE = BrokerProfile(
    name="activemq",
    per_message_time=0.002,
    delivery_overhead=0.050,
    persistent=False,
)

#: Kafka 0.8-like profile: markedly higher per-message cost (synchronous,
#: replicated, disk-backed publishes — the paper measures the whole workflow
#: running ≈ 4× slower) but persistent and replayable.
KAFKA_PROFILE = BrokerProfile(
    name="kafka",
    per_message_time=0.150,
    delivery_overhead=0.080,
    persistent=True,
)


def profile_by_name(name: str) -> BrokerProfile:
    """Resolve a broker profile from its name (``"activemq"`` / ``"kafka"``)."""
    lowered = name.lower()
    if lowered == "activemq":
        return ACTIVEMQ_PROFILE
    if lowered == "kafka":
        return KAFKA_PROFILE
    raise ValueError(f"unknown broker {name!r} (expected 'activemq' or 'kafka')")


class MessageLog:
    """An append-only, offset-addressed log of messages per topic.

    This is the Kafka feature the recovery mechanism relies on: "we exploit
    the ability of Kafka to persist the messages exchanged by the services
    and to replay them on demand" (Section IV-B).
    """

    def __init__(self) -> None:
        self._topics: dict[str, list[Message]] = {}
        self._lock = threading.Lock()

    def append(self, message: Message) -> int:
        """Store ``message``; returns its offset within its topic."""
        with self._lock:
            log = self._topics.setdefault(message.topic, [])
            log.append(message)
            return len(log) - 1

    def replay(self, topic: str, from_offset: int = 0) -> list[Message]:
        """Messages of ``topic`` starting at ``from_offset``, in publication order."""
        with self._lock:
            return list(self._topics.get(topic, [])[from_offset:])

    def size(self, topic: str) -> int:
        """Number of messages stored for ``topic``."""
        with self._lock:
            return len(self._topics.get(topic, []))

    def topics(self) -> list[str]:
        """Every topic with at least one stored message."""
        with self._lock:
            return sorted(self._topics)


class Broker:
    """Interface shared by every broker implementation."""

    profile: BrokerProfile
    #: observability hooks, attached post-construction by the hosting
    #: runtime (brokers are built through the backend registry with a fixed
    #: signature); ``None`` — the default — records nothing.
    trace: "Tracer | None" = None
    metrics: "MetricsRegistry | None" = None

    def attach_observability(self, obs: "Observability | None") -> None:
        """Wire the run's tracer/metrics into this broker's publish path."""
        self.trace = obs.active_tracer() if obs is not None else None
        self.metrics = obs.metrics if obs is not None else None

    def publish(self, message: Message) -> None:
        """Publish ``message`` on its topic."""
        raise NotImplementedError

    def subscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        """Register ``callback`` for every message published on ``topic``."""
        raise NotImplementedError

    def unsubscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        """Remove a previously registered callback (no error if absent)."""
        raise NotImplementedError

    def replay(self, topic: str, from_offset: int = 0) -> list[Message]:
        """Replay the persisted messages of ``topic`` (persistent brokers only)."""
        raise NotImplementedError

    @property
    def supports_replay(self) -> bool:
        """Whether the broker can replay past messages (Kafka-like)."""
        return self.profile.persistent

    def published_count(self) -> int:
        """Total number of messages published so far (diagnostics)."""
        raise NotImplementedError

    def delivered_count(self) -> int:
        """Total number of messages handed to subscribers so far."""
        raise NotImplementedError


class InProcessBroker(Broker):
    """A thread-safe, in-process broker used by the threaded runtime.

    Delivery is synchronous from the publisher's thread (the subscribing
    agent enqueues the message into its own inbox, so the publisher never
    blocks on the consumer's work).
    """

    def __init__(self, profile: BrokerProfile) -> None:
        self.profile = profile
        self._subscribers: dict[str, list[Callable[[Message], None]]] = {}
        self._log = MessageLog() if profile.persistent else None
        self._published = 0
        self._delivered = 0
        self._lock = threading.Lock()

    def publish(self, message: Message) -> None:
        if self._log is not None:
            self._log.append(message)
        with self._lock:
            self._published += 1
            callbacks = list(self._subscribers.get(message.topic, []))
            self._delivered += len(callbacks)
        if self.trace is not None:
            self.trace.event(
                "broker.publish", "broker", topic=message.topic, kind=message.kind, sender=message.sender
            )
            if callbacks:
                self.trace.event(
                    "broker.deliver", "broker", topic=message.topic, count=len(callbacks)
                )
        if self.metrics is not None:
            self.metrics.counter("broker.published").inc()
            self.metrics.counter("broker.delivered").inc(len(callbacks))
        for callback in callbacks:
            callback(message)

    def subscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        with self._lock:
            self._subscribers.setdefault(topic, []).append(callback)

    def unsubscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        with self._lock:
            callbacks = self._subscribers.get(topic, [])
            if callback in callbacks:
                callbacks.remove(callback)

    def replay(self, topic: str, from_offset: int = 0) -> list[Message]:
        if self._log is None:
            raise RuntimeError(f"broker {self.profile.name!r} is not persistent; cannot replay")
        return self._log.replay(topic, from_offset)

    def published_count(self) -> int:
        return self._published

    def delivered_count(self) -> int:
        """Messages actually handed to subscriber callbacks (real accounting,
        not an echo of the publish counter: a message published to a topic
        nobody subscribes to is published but never delivered)."""
        return self._delivered

    def subscriber_count(self, topic: str | None = None) -> int:
        """Number of subscriptions (for one topic, or overall)."""
        with self._lock:
            if topic is not None:
                return len(self._subscribers.get(topic, []))
            return sum(len(callbacks) for callbacks in self._subscribers.values())
