"""ActiveMQ-like broker (transient, low per-message cost).

The real ActiveMQ 5.6 of the paper is a JMS broker used here purely as a
fast, non-persistent transport between service agents.  Because messages are
not durably logged, a workflow executed over this broker cannot use the
agent-recovery mechanism — exactly the trade-off the paper discusses in
Section V-C/V-D.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.backends import register_broker

from .broker import ACTIVEMQ_PROFILE, BrokerProfile, InProcessBroker

__all__ = ["ActiveMQBroker"]


class ActiveMQBroker(InProcessBroker):
    """In-process ActiveMQ-like broker (threaded runtime)."""

    def __init__(self, profile: BrokerProfile | None = None) -> None:
        super().__init__(profile or ACTIVEMQ_PROFILE)


@register_broker(
    "activemq",
    capabilities={"persistent": False, "broker_class": ActiveMQBroker},
    description="ActiveMQ 5.6-like JMS broker: fast, transient messaging",
)
def _activemq_profile(config: Any) -> BrokerProfile:
    """Broker backend factory (honours cost-model profile overrides)."""
    costs = getattr(config, "costs", None)
    return costs.activemq if costs is not None else ACTIVEMQ_PROFILE
