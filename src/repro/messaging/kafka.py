"""Kafka-like broker (persistent, replayable, higher per-message cost).

The Kafka 0.8 deployment of the paper is modelled by a broker that appends
every published message to an offset-addressed per-topic log and can replay
it on demand — the property the SA recovery mechanism of Section IV-B relies
on.  Its per-message cost is ≈ 4× ActiveMQ's, which reproduces the execution
time gap of Fig. 14.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.backends import register_broker

from .broker import KAFKA_PROFILE, BrokerProfile, InProcessBroker
from .message import Message

__all__ = ["KafkaBroker"]


class KafkaBroker(InProcessBroker):
    """In-process Kafka-like broker (threaded runtime)."""

    def __init__(self, profile: BrokerProfile | None = None) -> None:
        super().__init__(profile or KAFKA_PROFILE)

    def consumer_offset(self, topic: str) -> int:
        """Current end-of-log offset for ``topic`` (next message's offset)."""
        return self._log.size(topic) if self._log is not None else 0

    def replay_from_beginning(self, topic: str) -> list[Message]:
        """Every message ever published on ``topic`` (offset 0 onwards)."""
        return self.replay(topic, 0)


@register_broker(
    "kafka",
    capabilities={"persistent": True, "broker_class": KafkaBroker},
    description="Kafka 0.8-like broker: persistent, replayable, ~4x ActiveMQ's cost",
)
def _kafka_profile(config: Any) -> BrokerProfile:
    """Broker backend factory (honours cost-model profile overrides)."""
    costs = getattr(config, "costs", None)
    return costs.kafka if costs is not None else KAFKA_PROFILE
