"""Virtual-time broker used by the simulation runtime.

The broker owns a single serial dispatcher (a
:class:`~repro.simkernel.resources.SerialQueue`): every published message
occupies the dispatcher for the profile's ``per_message_time``, then travels
over the network model and is delivered to the subscribed callback.  This
serialisation is what makes message-heavy workflows (the fully-connected
diamonds of Fig. 12(b), the Kafka columns of Fig. 14) pay for their traffic.

Persistent profiles (Kafka) additionally append every message to a
:class:`~repro.messaging.broker.MessageLog`, from which recovered agents
replay their history.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.network import NetworkModel
from repro.simkernel import RandomStreams, SerialQueue, Simulator

from .broker import Broker, BrokerProfile, MessageLog
from .message import Message

__all__ = ["SimulatedBroker"]


class SimulatedBroker(Broker):
    """Broker model living inside the discrete-event simulation."""

    def __init__(
        self,
        sim: Simulator,
        profile: BrokerProfile,
        network: NetworkModel | None = None,
        randomness: RandomStreams | None = None,
        dispatchers: int = 1,
    ) -> None:
        if dispatchers < 1:
            raise ValueError("a broker needs at least one dispatcher")
        self.sim = sim
        self.profile = profile
        self.network = network or NetworkModel()
        self.randomness = randomness or RandomStreams(0)
        self._queues = [SerialQueue(sim, name=f"{profile.name}-dispatcher-{i}") for i in range(dispatchers)]
        self._subscribers: dict[str, list[Callable[[Message], None]]] = {}
        self._log = MessageLog() if profile.persistent else None
        self._published = 0
        self._delivered = 0

    # -------------------------------------------------------------- publish
    def publish(self, message: Message) -> None:
        """Publish ``message``; subscribers receive it after the modelled delays."""
        self._published += 1
        if self.trace is not None:
            self.trace.event(
                "broker.publish", "broker", topic=message.topic, kind=message.kind, sender=message.sender
            )
        if self.metrics is not None:
            self.metrics.counter("broker.published").inc()
        if self._log is not None:
            self._log.append(message)
        queue = self._queues[message.message_id % len(self._queues)]
        processing_done = queue.submit(self.profile.per_message_time)

        def deliver(_event: object) -> None:
            transfer = self.network.transfer_time(
                message.size_bytes, self.randomness.uniform("broker-jitter")
            )
            total_delay = self.profile.delivery_overhead + transfer
            self.sim.call_in(total_delay, lambda: self._deliver(message))

        processing_done.add_callback(deliver)

    def _deliver(self, message: Message) -> None:
        # Count one delivery per subscriber actually handed the message (a
        # message with no subscriber is lost, not delivered — counting it
        # would mask exactly the accounting drift `ginflow audit` checks).
        callbacks = list(self._subscribers.get(message.topic, []))
        self._delivered += len(callbacks)
        if callbacks and self.trace is not None:
            self.trace.event("broker.deliver", "broker", topic=message.topic, count=len(callbacks))
        if self.metrics is not None:
            self.metrics.counter("broker.delivered").inc(len(callbacks))
        for callback in callbacks:
            callback(message)

    # ------------------------------------------------------------ subscribe
    def subscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        self._subscribers.setdefault(topic, []).append(callback)

    def unsubscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        callbacks = self._subscribers.get(topic, [])
        if callback in callbacks:
            callbacks.remove(callback)

    # --------------------------------------------------------------- replay
    def replay(self, topic: str, from_offset: int = 0) -> list[Message]:
        if self._log is None:
            raise RuntimeError(f"broker {self.profile.name!r} is not persistent; cannot replay")
        return self._log.replay(topic, from_offset)

    # ----------------------------------------------------------- statistics
    def published_count(self) -> int:
        return self._published

    def delivered_count(self) -> int:
        """Messages actually handed to subscribers so far."""
        return self._delivered

    def backlog_seconds(self) -> float:
        """Work currently queued on the busiest dispatcher (diagnostics)."""
        return max(queue.backlog for queue in self._queues)
