"""Messages exchanged between service agents and the shared space.

Three kinds of messages circulate in GinFlow (Section IV-A):

* ``RESULT`` — a task's result transferred point-to-point to one destination
  agent (the decentralised ``gw_pass``);
* ``ADAPT`` — the adaptation marker sent by the agent that detected a
  failure to the agents that must reconfigure themselves;
* ``STATUS`` — the update every agent pushes to the shared multiset so that
  the workflow status stays observable.

Messages are immutable value objects; the broker assigns the delivery
metadata (offset, delivery time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageKind", "Message", "agent_topic", "adapt_count", "STATUS_TOPIC"]

_COUNTER = itertools.count(1)

#: Topic on which every agent publishes its status updates (the shared multiset).
STATUS_TOPIC = "ginflow.status"


class MessageKind:
    """String constants naming the message kinds."""

    RESULT = "RESULT"
    ADAPT = "ADAPT"
    STATUS = "STATUS"
    CONTROL = "CONTROL"


def agent_topic(task_name: str) -> str:
    """The broker topic on which the agent managing ``task_name`` listens."""
    return f"ginflow.agent.{task_name}"


def adapt_count(payload: Any) -> int:
    """Number of ``ADAPT`` markers carried by an ADAPT message payload.

    This is THE coercion applied to an ADAPT payload — the live delivery path
    and the log-replay recovery path must both use it, otherwise a replayed
    agent can inject a different number of markers than the agent it replaces
    and diverge from the state the replay is meant to rebuild (Section IV-B).
    ``None`` (a bare marker message) means one marker.
    """
    return int(payload) if payload is not None else 1


@dataclass(frozen=True)
class Message:
    """One message published on a broker topic.

    Attributes
    ----------
    topic:
        Destination topic (one per agent, plus the status topic).
    kind:
        One of :class:`MessageKind`.
    sender:
        Task name (or ``"coordinator"``) of the producer.
    recipient:
        Task name of the intended consumer (informational; the topic already
        routes the message).
    payload:
        Message body: for ``RESULT`` the produced value, for ``ADAPT`` the
        number of markers to inject, for ``STATUS`` a state dictionary.
    size_bytes:
        Approximate serialised size, used by the network model.
    message_id:
        Unique, monotonically increasing identifier (assigned at creation).
    """

    topic: str
    kind: str
    sender: str
    recipient: str
    payload: Any = None
    size_bytes: int = 512
    message_id: int = field(default_factory=lambda: next(_COUNTER))

    def describe(self) -> str:
        """Short human-readable description used by traces."""
        return f"{self.kind} {self.sender}->{self.recipient} (#{self.message_id})"
