"""Message-queue substrate: ActiveMQ-like and Kafka-like brokers."""

from .activemq import ActiveMQBroker
from .broker import (
    ACTIVEMQ_PROFILE,
    KAFKA_PROFILE,
    Broker,
    BrokerProfile,
    InProcessBroker,
    MessageLog,
    profile_by_name,
)
from .kafka import KafkaBroker
from .message import STATUS_TOPIC, Message, MessageKind, adapt_count, agent_topic
from .simulated import SimulatedBroker

__all__ = [
    "Message",
    "MessageKind",
    "adapt_count",
    "agent_topic",
    "STATUS_TOPIC",
    "Broker",
    "BrokerProfile",
    "InProcessBroker",
    "MessageLog",
    "profile_by_name",
    "ACTIVEMQ_PROFILE",
    "KAFKA_PROFILE",
    "ActiveMQBroker",
    "KafkaBroker",
    "SimulatedBroker",
]
