"""The shared-space coordinator.

In GinFlow the multiset also acts as the observable status of the workflow:
"It also sends a message to the multiset so as to update the status of the
workflow" (Section IV-A).  The :class:`Coordinator` plays that role in both
runtimes: it consumes ``STATUS`` messages, maintains the last known state of
every task, detects workflow completion (every exit task holds a result) and
records a timeline of events for the run report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TaskStatus", "TimelineEvent", "Coordinator"]


@dataclass
class TaskStatus:
    """Last known status of one task, as seen by the shared space."""

    task: str
    state: str = "unknown"
    has_result: bool = False
    has_error: bool = False
    pending_sources: list[str] = field(default_factory=list)
    pending_destinations: list[str] = field(default_factory=list)
    updates: int = 0
    last_update_time: float = 0.0


@dataclass
class TimelineEvent:
    """One entry of the run timeline."""

    time: float
    task: str
    event: str
    detail: str = ""


class Coordinator:
    """Tracks workflow status from agents' updates and detects completion.

    The run *completes* either when every exit task holds a result
    (``succeeded`` is then ``True``) or — fail-fast — as soon as an exit
    task reports a terminal ``ERROR``: one it holds itself and that no
    adaptation can repair (``succeeded`` is then ``False``).  Tasks listed
    in ``adaptable_tasks`` (their failure triggers an adaptation plan) never
    fail the run: their ERROR starts the recovery instead of ending it.
    """

    def __init__(
        self,
        exit_tasks: list[str],
        on_complete: Callable[[float], None] | None = None,
        adaptable_tasks: set[str] | None = None,
    ) -> None:
        if not exit_tasks:
            raise ValueError("the coordinator needs at least one exit task")
        self.exit_tasks = list(exit_tasks)
        self.on_complete = on_complete
        self.adaptable_tasks = set(adaptable_tasks or ())
        self.statuses: dict[str, TaskStatus] = {}
        self.timeline: list[TimelineEvent] = []
        self.completed = False
        self.succeeded = False
        self.completion_time: float | None = None
        self.status_updates = 0

    # -------------------------------------------------------------- updates
    def record_status(self, task: str, status: dict[str, Any], time: float = 0.0) -> None:
        """Apply one ``STATUS`` payload coming from an agent."""
        self.status_updates += 1
        entry = self.statuses.setdefault(task, TaskStatus(task=task))
        previous_state = entry.state
        entry.state = str(status.get("state", entry.state))
        entry.has_result = bool(status.get("has_result", entry.has_result))
        entry.has_error = bool(status.get("has_error", entry.has_error))
        entry.pending_sources = list(status.get("pending_sources", entry.pending_sources))
        entry.pending_destinations = list(status.get("pending_destinations", entry.pending_destinations))
        entry.updates += 1
        entry.last_update_time = time
        if entry.state != previous_state:
            self.record_event(time, task, entry.state)
        self._check_completion(time)

    def record_event(self, time: float, task: str, event: str, detail: str = "") -> None:
        """Append an arbitrary event to the timeline (failures, recoveries...)."""
        self.timeline.append(TimelineEvent(time=time, task=task, event=event, detail=detail))

    # ----------------------------------------------------------- completion
    def _check_completion(self, time: float) -> None:
        if self.completed:
            return
        all_hold_results = True
        for task in self.exit_tasks:
            status = self.statuses.get(task)
            if status is not None and status.has_error and not status.has_result and task not in self.adaptable_tasks:
                # Terminal exit-task error: fail fast instead of blocking
                # until timeout (threaded) or draining the queue (simulated).
                self._finish(time, succeeded=False)
                return
            if status is None or not status.has_result:
                all_hold_results = False
        if all_hold_results:
            self._finish(time, succeeded=True)

    def _finish(self, time: float, succeeded: bool) -> None:
        self.completed = True
        self.succeeded = succeeded
        self.completion_time = time
        if self.on_complete is not None:
            self.on_complete(time)

    # -------------------------------------------------------------- queries
    def task_state(self, task: str) -> str:
        """Last known state of ``task`` (``"unknown"`` before any update)."""
        status = self.statuses.get(task)
        return status.state if status else "unknown"

    def tasks_in_state(self, state: str) -> list[str]:
        """Every task whose last known state is ``state``."""
        return [name for name, status in self.statuses.items() if status.state == state]

    def error_tasks(self) -> list[str]:
        """Tasks whose last update reported an ``ERROR`` result."""
        return [name for name, status in self.statuses.items() if status.has_error]

    def progress(self) -> float:
        """Fraction of known tasks holding a result (coarse progress metric)."""
        if not self.statuses:
            return 0.0
        done = sum(1 for status in self.statuses.values() if status.has_result)
        return done / len(self.statuses)
