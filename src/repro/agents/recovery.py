"""Agent fault recovery through message replay (Section IV-B).

"The state of a SA is reflected by the state of its local solution.  Changes
in the local solution can result from two mutually exclusive actions: (a)
reception of new molecules and (b) reduction of the local solution. [...]
Consequently, being able to log all incoming molecules of a SA and replay
them in the same order on a newly created SA will lead the second SA in the
same state as the first."

:func:`rebuild_agent` does exactly that: it creates a fresh
:class:`~repro.agents.core.AgentCore` from the task's encoding, boots it, and
re-applies the logged ``RESULT``/``ADAPT`` messages in their original order.
The actions produced during the replay are returned so the runtime can decide
what to re-execute — typically the service invocation (services are assumed
idempotent) and the result re-sends, whose duplicates downstream agents
ignore thanks to the one-shot rules.
"""

from __future__ import annotations

from repro.hoclflow.translator import TaskEncoding
from repro.messaging.message import Message, MessageKind, adapt_count

from .actions import Action
from .core import AgentCore

__all__ = ["replay_messages", "rebuild_agent"]


def replay_messages(core: AgentCore, messages: list[Message]) -> list[Action]:
    """Re-apply logged incoming messages to ``core`` in order; collect actions."""
    actions: list[Action] = []
    for message in messages:
        if message.kind == MessageKind.RESULT:
            actions.extend(core.receive_result(message.sender, message.payload))
        elif message.kind == MessageKind.ADAPT:
            # same coercion as EnactmentEngine.deliver, by construction
            actions.extend(core.receive_adapt(adapt_count(message.payload)))
        # STATUS/CONTROL messages do not change an agent's local solution.
    return actions


def rebuild_agent(encoding: TaskEncoding, logged_messages: list[Message]) -> tuple[AgentCore, list[Action]]:
    """Create a replacement agent and bring it to the failed agent's state.

    Returns the new core and the combined actions produced by the boot and
    the replay (the runtime re-executes the invocation and the sends; the
    duplicate sends are harmless by construction).
    """
    core = AgentCore(encoding)
    actions = list(core.boot())
    actions.extend(replay_messages(core, logged_messages))
    return core, actions
