"""Service agents: the decentralised engine of GinFlow."""

from .actions import Action, SendAdapt, SendResult, StartInvocation, StatusUpdate
from .coordinator import Coordinator, TaskStatus, TimelineEvent
from .core import AgentCore, AgentState
from .local_rules import build_local_rules
from .recovery import rebuild_agent, replay_messages

__all__ = [
    "Action",
    "SendResult",
    "SendAdapt",
    "StartInvocation",
    "StatusUpdate",
    "AgentCore",
    "AgentState",
    "build_local_rules",
    "Coordinator",
    "TaskStatus",
    "TimelineEvent",
    "rebuild_agent",
    "replay_messages",
]
