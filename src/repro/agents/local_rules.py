"""Decentralised variants of the enactment rules.

Section IV-A: "the rules presented in Section III-B do not enable a
decentralised execution by themselves.  In particular, the ``gw_pass`` rule
is supposed to act from outside subsolutions...  In the GinFlow environment,
this was modified to act from within a subsolution: once the result of the
invocation of the service it manages is collected, a SA triggers a local
version of the ``gw_pass`` rule which calls a function that sends a message
directly to the destination SA."

The local rule set of one agent is therefore:

* ``gw_setup`` — unchanged (purely local);
* ``gw_call`` — instead of synchronously calling ``invoke``, it marks the
  sub-solution ``INVOKING`` and emits a :class:`~repro.agents.actions.StartInvocation`
  action (the invocation takes time and is driven by the runtime);
* ``gw_pass`` (local) — for each destination still listed in ``DST``, emit a
  :class:`~repro.agents.actions.SendResult` action and drop the destination;
* ``trigger_adapt`` (local) — when ``RES`` contains ``ERROR`` and this task
  triggers an adaptation plan, emit :class:`~repro.agents.actions.SendAdapt`
  actions towards every affected task;
* the adaptation rules proper (``add_dst`` / ``mv_src`` / ``activate``) are
  *already* local — the same rule objects produced by
  :mod:`repro.hoclflow.adaptation` are reused verbatim.
"""

from __future__ import annotations

from typing import Callable

from repro.hocl import (
    BindingView,
    Omega,
    PatchRemove,
    RewriteDelta,
    Rule,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Symbol,
    SymbolPattern,
    TuplePattern,
    TupleTemplate,
    Ref,
    Var,
    from_atom,
)
from repro.hoclflow import keywords as kw
from repro.hoclflow.adaptation import AdaptationPlan
from repro.hoclflow.generic_rules import make_gw_setup
from repro.hoclflow.translator import TaskEncoding

from .actions import Action, SendAdapt, SendResult, StartInvocation

__all__ = ["build_local_rules"]

#: Callback through which the rules hand their actions back to the agent core.
ActionSink = Callable[[Action], None]

#: ``gw_setup`` carries no per-agent state (no effect hook), so every agent
#: shares one immutable instance: the engine's per-rule index keys are then
#: computed once per process instead of once per agent.
_SHARED_GW_SETUP = make_gw_setup()


def _make_local_gw_call(emit: ActionSink) -> Rule:
    """Local ``gw_call``: request the invocation instead of performing it."""

    def effect(bindings: BindingView) -> None:
        service = str(bindings.value("s"))
        parameters = bindings.value("par")
        if not isinstance(parameters, list):
            parameters = [parameters]
        emit(StartInvocation(service=service, parameters=tuple(parameters)))

    return Rule(
        name="gw_call",
        patterns=[
            TuplePattern(SymbolPattern(kw.SRC), SolutionPattern()),
            TuplePattern(SymbolPattern(kw.SRV), Var("s")),
            TuplePattern(SymbolPattern(kw.PAR), Var("par")),
        ],
        products=[
            TupleTemplate(kw.SRC_SYM, SolutionTemplate()),
            TupleTemplate(kw.SRV_SYM, Ref("s")),
            kw.INVOKING_SYM,
        ],
        one_shot=True,
        effect=effect,
        # Delta form: SRC/SRV stay in place, PAR is consumed, the INVOKING
        # marker is the only new atom.
        delta=RewriteDelta(consume=(2,), produce=(kw.INVOKING_SYM,)),
    )


def _make_local_gw_pass(emit: ActionSink) -> Rule:
    """Local ``gw_pass``: send the result to one pending destination."""

    def condition(bindings: BindingView) -> bool:
        result = bindings.atom("res")
        return not (isinstance(result, Symbol) and result.name == kw.ERROR)

    def effect(bindings: BindingView) -> None:
        destination = bindings.value("tj")
        emit(SendResult(destination=str(destination), value=bindings.value("res")))

    return Rule(
        name="gw_pass",
        patterns=[
            TuplePattern(SymbolPattern(kw.RES), SolutionPattern(Var("res"), rest=Omega("wres"))),
            TuplePattern(SymbolPattern(kw.DST), SolutionPattern(Var("tj", kind="symbol"), rest=Omega("wdst"))),
        ],
        products=[
            TupleTemplate(kw.RES_SYM, SolutionTemplate(Ref("res"), Splice("wres"))),
            TupleTemplate(kw.DST_SYM, SolutionTemplate(Splice("wdst"))),
        ],
        condition=condition,
        one_shot=False,
        effect=effect,
        # Delta form: RES stays untouched; the served destination is dropped
        # from the kept DST body in place.
        delta=RewriteDelta(ops=(PatchRemove(at=1, items=(Ref("tj"),)),)),
    )


def _make_local_trigger(plan: AdaptationPlan, emit: ActionSink) -> Rule:
    """Local ``trigger_adapt``: broadcast ``ADAPT`` when this task fails."""

    marker_counts = plan.adapt_marker_counts()

    def effect(_bindings: BindingView) -> None:
        for task_name, count in marker_counts.items():
            emit(SendAdapt(destination=task_name, count=count, adaptation=plan.spec.name))

    return Rule(
        name=f"trigger_adapt:{plan.spec.name}",
        patterns=[
            TuplePattern(SymbolPattern(kw.RES), SolutionPattern(SymbolPattern(kw.ERROR), rest=Omega("wres"))),
        ],
        products=[],  # keep_matched=True puts the matched RES tuple back untouched
        one_shot=True,
        keep_matched=True,
        effect=effect,
        priority=10,
    )


def build_local_rules(encoding: TaskEncoding, emit: ActionSink) -> list[Rule]:
    """The complete local rule set of the agent managing ``encoding``.

    ``emit`` is called by the rules' effects with the actions they request;
    the agent core collects them and the runtime executes them.

    Every rule's *first* pattern names a head symbol (``SRC``, ``RES``,
    ``DST``...), so the engine's rule index can refute inapplicable rules
    from the local solution's head-symbol buckets without running a match.
    """
    rules: list[Rule] = [_SHARED_GW_SETUP, _make_local_gw_call(emit), _make_local_gw_pass(emit)]
    for plan in encoding.trigger_plans:
        rules.append(_make_local_trigger(plan, emit))
    for rule in encoding.local_rules:
        # reuse the adaptation rules; skip the centralised gw_setup/gw_call,
        # which the local variants above replace.
        if rule.name in ("gw_setup", "gw_call"):
            continue
        rules.append(rule)
    return rules
