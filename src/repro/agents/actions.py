"""Actions emitted by a service agent's local reduction.

The decentralised rules (:mod:`repro.agents.local_rules`) do not perform I/O
themselves: when they fire, they record an :class:`Action` describing what
the hosting runtime must do — send a result to another agent, broadcast the
``ADAPT`` marker, start a service invocation, or push a status update to the
shared space.  Keeping the rules pure lets the simulated and the threaded
runtimes share exactly the same agent logic while differing only in how they
execute the actions (virtual-time scheduling vs. real threads and queues).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Action", "SendResult", "SendAdapt", "StartInvocation", "StatusUpdate"]


@dataclass(frozen=True)
class Action:
    """Base class of every agent action."""


@dataclass(frozen=True)
class SendResult(Action):
    """Send this task's result to ``destination`` (decentralised ``gw_pass``)."""

    destination: str
    value: Any


@dataclass(frozen=True)
class SendAdapt(Action):
    """Send ``count`` ``ADAPT`` markers to ``destination`` (decentralised
    ``trigger_adapt``)."""

    destination: str
    count: int = 1
    adaptation: str = ""


@dataclass(frozen=True)
class StartInvocation(Action):
    """Invoke the task's service with the prepared parameter list."""

    service: str
    parameters: tuple[Any, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class StatusUpdate(Action):
    """Push the agent's new state to the shared multiset."""

    state: str
    detail: str = ""
