"""The runtime-agnostic service-agent state machine.

A service agent (SA) is "composed of three elements": the service to invoke,
a local copy of its sub-solution, and an HOCL interpreter reading and
updating that copy (Section IV-A).  :class:`AgentCore` is exactly that —
minus any notion of time or transport.  Every external stimulus (boot, a
received message, the completion of an invocation) is a method call that

1. updates the local solution,
2. runs the local HOCL reduction to inertness,
3. returns the list of :class:`~repro.agents.actions.Action` the rules
   requested (messages to send, invocation to start, status updates).

The simulated runtime and the threaded runtime both drive AgentCore; they
only differ in how they deliver stimuli and execute actions.  Keeping the
chemistry identical in both paths is what makes the simulation a faithful
stand-in for the real decentralised execution.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.hocl import Multiset, ReductionEngine, Symbol, default_registry, to_atom
from repro.hocl.parallel import resolve_policy
from repro.obs.logs import get_logger
from repro.obs.tracer import Tracer, active as active_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hocl.parallel import ParallelReducer, ReductionPolicy
from repro.hoclflow import keywords as kw
from repro.hoclflow.fields import (
    build_parameters,
    get_dst,
    get_in_atoms,
    get_res_atoms,
    get_src,
    has_error,
    has_result,
    tagged_input,
)
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.hoclflow.translator import TaskEncoding

from .actions import Action, StatusUpdate
from .local_rules import build_local_rules

__all__ = ["AgentState", "AgentCore"]


class AgentState:
    """Lifecycle states of a service agent (used in status updates)."""

    IDLE = "idle"
    READY = "ready"
    INVOKING = "invoking"
    COMPLETED = "completed"
    FAILED = "failed"


class AgentCore:
    """Local solution + interpreter + bookkeeping of one service agent.

    Parameters
    ----------
    encoding:
        The task's HOCLflow encoding (fields + generic rules).
    max_reduction_steps:
        Safety bound on reactions per stimulus.
    reduction:
        Reduction strategy (a name or a resolved
        :class:`~repro.hocl.parallel.ReductionPolicy`); ``None`` means
        serial.  ``batch`` engines fire whole batches of disjoint matches
        per pass — same final solution, fewer match sweeps.
    reducer:
        Optional shared :class:`~repro.hocl.parallel.ParallelReducer`: when
        given, each reduction runs on its pool (the caller blocks, so
        per-agent stimuli stay serialized) instead of the calling thread.
    trace:
        Optional :class:`~repro.obs.tracer.Tracer`: when active, every
        stimulus this core handles is recorded as an ``agent.<stimulus>``
        span on the agent's own track, containing the reduction-phase spans
        the engine emits (which it receives the same tracer for).  Tracing
        never changes the chemistry — the actions, counters and solution
        are identical with and without it.
    """

    def __init__(
        self,
        encoding: TaskEncoding,
        max_reduction_steps: int = 10_000,
        reduction: "ReductionPolicy | str | None" = None,
        reducer: "ParallelReducer | None" = None,
        trace: "Tracer | None" = None,
    ) -> None:
        self.encoding = encoding
        self.name = encoding.name
        self.trace = active_tracer(trace)
        self.log = get_logger(f"agents.{self.name}")
        self._pending: list[Action] = []
        self.solution: Multiset = encoding.initial_solution(include_rules=False)
        local_rules = build_local_rules(encoding, self._pending.append)
        self.solution.add_all(local_rules)
        #: names of every rule registered in this agent's local solution;
        #: the dynamic analyzer diffs this against `rule_fires` for coverage
        self.rule_names: tuple[str, ...] = tuple(rule.name for rule in local_rules)
        externals = default_registry()
        # Only the pure externals are needed locally: the decentralised
        # gw_call never calls `invoke` (the runtime owns the invocation).
        register_workflow_externals(externals, lambda *_args: None)
        # Incremental: between stimuli the local solution stays stamped
        # inert, so re-entering reduction after a stimulus only re-examines
        # the parts of the solution the stimulus actually dirtied.
        self.policy = resolve_policy(reduction)
        self.reducer = reducer
        self.engine = ReductionEngine(
            externals=externals,
            max_steps=max_reduction_steps,
            incremental=True,
            trace=self.trace,
            trace_track=self.name,
            **self.policy.engine_options(),
        )
        self.state = AgentState.IDLE
        self.invocation_requested = False
        self.results_sent = 0
        self.duplicates_ignored = 0
        self.adaptations_applied = 0
        #: cost-accounting counters consumed by the simulation's cost model
        self.match_attempts = 0
        self.reactions = 0
        self.reduction_units = 0.0
        #: wall-clock seconds per reduction phase (match/rewrite/index),
        #: aggregated across every stimulus this core handled
        self.reduction_timings: dict[str, float] = {}
        #: firings per rule name, aggregated across every stimulus
        self.rule_fires: dict[str, int] = {}

    # ----------------------------------------------------------------- state
    def pending_sources(self) -> list[str]:
        """Tasks this agent is still waiting for."""
        return get_src(self.solution)

    def pending_destinations(self) -> list[str]:
        """Tasks this agent still has to send its result to."""
        return get_dst(self.solution)

    def has_result(self) -> bool:
        """Whether a (non-error) result is stored in ``RES``."""
        return has_result(self.solution)

    def has_error(self) -> bool:
        """Whether ``RES`` contains the ``ERROR`` marker."""
        return has_error(self.solution)

    def result_value(self) -> Any:
        """The stored result value (unwrapped), or ``None``."""
        from repro.hocl import from_atom

        for atom in get_res_atoms(self.solution):
            if not (isinstance(atom, Symbol) and atom.name == kw.ERROR):
                return from_atom(atom)
        return None

    def current_parameters(self) -> list[Any]:
        """The parameter list the service would be invoked with right now."""
        return build_parameters(get_in_atoms(self.solution))

    def status(self) -> dict[str, Any]:
        """A status snapshot, the payload of ``STATUS`` messages."""
        return {
            "task": self.name,
            "state": self.state,
            "pending_sources": self.pending_sources(),
            "pending_destinations": self.pending_destinations(),
            "has_result": self.has_result(),
            "has_error": self.has_error(),
        }

    # -------------------------------------------------------------- stimuli
    def boot(self) -> list[Action]:
        """First reduction after deployment (entry tasks start invoking here)."""
        self.state = AgentState.READY
        return self._reduce_and_collect("boot")

    def receive_result(self, source: str, value: Any) -> list[Action]:
        """Handle a ``RESULT`` message from ``source``.

        Duplicated or stale results (the source is no longer listed in
        ``SRC`` — either because the first copy was already consumed or
        because an adaptation moved the source) are ignored; the one-shot
        nature of ``gw_setup``/``gw_call`` makes this safe (Section IV-B).
        """
        sources = self.pending_sources()
        if source not in sources:
            self.duplicates_ignored += 1
            return []
        remaining = [name for name in sources if name != source]
        from repro.hoclflow.fields import set_task_names

        set_task_names(self.solution, kw.SRC, remaining)
        in_field = self.solution.find_tuple(kw.IN)
        if in_field is not None:
            from repro.hocl import Subsolution

            body = in_field.elements[1]
            if isinstance(body, Subsolution):
                body.solution.add(tagged_input(source, value))
        return self._reduce_and_collect("receive_result")

    def receive_adapt(self, count: int = 1) -> list[Action]:
        """Handle an ``ADAPT`` message: inject the marker(s) and re-reduce."""
        for _ in range(max(1, count)):
            self.solution.add(kw.ADAPT_SYM)
        self.adaptations_applied += 1
        return self._reduce_and_collect("receive_adapt")

    def invocation_started(self) -> list[Action]:
        """Record that the runtime actually started the service invocation."""
        self.state = AgentState.INVOKING
        return [StatusUpdate(state=self.state)]

    def invocation_succeeded(self, value: Any) -> list[Action]:
        """Handle the service result: store it and let ``gw_pass`` send it."""
        self._store_result(to_atom(value))
        self.state = AgentState.COMPLETED
        return self._reduce_and_collect("invocation_succeeded")

    def invocation_failed(self, error: str | None = None) -> list[Action]:
        """Handle a failed invocation: store ``ERROR`` (triggers adaptation)."""
        self._store_result(kw.ERROR_SYM)
        self.state = AgentState.FAILED
        return self._reduce_and_collect("invocation_failed")

    # ------------------------------------------------------------- internals
    def _store_result(self, atom: Any) -> None:
        from repro.hocl import Subsolution

        res_field = self.solution.find_tuple(kw.RES)
        if res_field is None:
            from repro.hoclflow.fields import res_field as make_res

            self.solution.add(make_res([atom]))
            return
        body = res_field.elements[1]
        if isinstance(body, Subsolution):
            body.solution.add(atom)

    def _reduce_and_collect(self, stimulus: str = "stimulus") -> list[Action]:
        trace = self.trace
        started = perf_counter() if trace is not None else 0.0
        if self.reducer is not None:
            report = self.reducer.run(self.engine.reduce, self.solution)
        else:
            report = self.engine.reduce(self.solution)
        self.match_attempts += report.match_attempts
        self.reactions += report.reactions
        self.reduction_units += report.reduction_units(len(self.solution))
        for phase, seconds in report.timings.items():
            self.reduction_timings[phase] = self.reduction_timings.get(phase, 0.0) + seconds
        for rule_name, fires in report.rule_fires.items():
            self.rule_fires[rule_name] = self.rule_fires.get(rule_name, 0) + fires
        # NOTE: the rules' effect hooks hold a reference to self._pending, so
        # the list must be drained in place (never rebound).
        actions = list(self._pending)
        self._pending.clear()
        deduplicated: list[Action] = []
        for action in actions:
            if isinstance(action, type(None)):
                continue
            deduplicated.append(action)
            if action.__class__.__name__ == "StartInvocation":
                self.invocation_requested = True
        deduplicated.append(StatusUpdate(state=self.state))
        for action in deduplicated:
            if action.__class__.__name__ == "SendResult":
                self.results_sent += 1
        if trace is not None:
            trace.span(
                f"agent.{stimulus}",
                self.name,
                started,
                perf_counter(),
                reactions=report.reactions,
                match_attempts=report.match_attempts,
                state=self.state,
            )
        self.log.debug(
            "%s: %d reactions, %d actions, state=%s",
            stimulus,
            report.reactions,
            len(deduplicated),
            self.state,
        )
        return deduplicated
