"""Command line interface (the paper's Section IV-D client interface).

Usage::

    ginflow run workflow.json --mode simulated --executor mesos --broker kafka --nodes 10
    ginflow run workflow.json --mode asyncio
    ginflow sweep workflow.json --param nodes=5,10,15 --param broker=activemq,kafka --repeats 3
    ginflow backends
    ginflow validate workflow.json
    ginflow show-hocl workflow.json

or, without installing the console script::

    python -m repro.cli run workflow.json

Backend choices (``--mode`` / ``--executor`` / ``--broker`` / ``--cluster``)
are drawn dynamically from the backend registry
(:mod:`repro.runtime.backends`), so third-party backends registered before
:func:`main` runs are accepted everywhere without touching this module.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.hoclflow import encode_workflow
from repro.runtime import GinFlow, GinFlowConfig
from repro.runtime.backends import (
    KINDS,
    available_brokers,
    available_clusters,
    available_executors,
    available_runtimes,
    ensure_builtin_backends,
    registry,
)
from repro.services import FailureModel
from repro.workflow import workflow_from_json

__all__ = ["main", "build_parser"]


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Configuration flags shared by ``run`` and ``sweep`` (registry-driven)."""
    parser.add_argument("--mode", default="simulated", choices=available_runtimes())
    parser.add_argument("--executor", default="ssh", choices=available_executors())
    parser.add_argument("--broker", default="activemq", choices=available_brokers())
    parser.add_argument("--cluster", default="grid5000", choices=available_clusters(),
                        help="cluster preset (simulated mode)")
    parser.add_argument("--nodes", type=int, default=25, help="number of cluster nodes (simulated mode)")
    parser.add_argument("--seed", type=int, default=1, help="root random seed")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``ginflow`` command."""
    parser = argparse.ArgumentParser(
        prog="ginflow",
        description="GinFlow: decentralised adaptive workflow execution manager (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute a JSON workflow")
    run_parser.add_argument("workflow", help="path to the JSON workflow definition")
    _add_config_arguments(run_parser)
    run_parser.add_argument("--failure-probability", type=float, default=0.0, help="failure injection probability p")
    run_parser.add_argument("--failure-delay", type=float, default=0.0, help="failure injection delay T (seconds)")
    run_parser.add_argument("--json", action="store_true", help="print the report summary as JSON")

    sweep_parser = subparsers.add_parser("sweep", help="execute a workflow over a parameter grid")
    sweep_parser.add_argument("workflow", help="path to the JSON workflow definition")
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="sweep parameter (repeatable), e.g. --param nodes=5,10 --param broker=activemq,kafka",
    )
    sweep_parser.add_argument("--repeats", type=int, default=1, help="runs per grid cell")
    sweep_parser.add_argument("--workers", type=int, default=None, help="parallel workers (threads)")
    sweep_parser.add_argument("--csv", metavar="PATH", help="write the per-run rows as CSV")
    sweep_parser.add_argument("--json-out", metavar="PATH", help="write rows + aggregates as JSON")
    sweep_parser.add_argument("--json", action="store_true", help="print the sweep report as JSON")

    backends_parser = subparsers.add_parser("backends", help="list the registered backends")
    backends_parser.add_argument("--kind", choices=KINDS, help="restrict to one backend kind")
    backends_parser.add_argument("--json", action="store_true", help="print the listing as JSON")

    validate_parser = subparsers.add_parser("validate", help="validate a JSON workflow definition")
    validate_parser.add_argument("workflow", help="path to the JSON workflow definition")

    hocl_parser = subparsers.add_parser("show-hocl", help="print the HOCL encoding of a workflow")
    hocl_parser.add_argument("workflow", help="path to the JSON workflow definition")

    return parser


def _base_config(args: argparse.Namespace, failures: FailureModel | None = None) -> GinFlowConfig:
    return GinFlowConfig(
        mode=args.mode,
        executor=args.executor,
        broker=args.broker,
        cluster_preset=args.cluster,
        nodes=args.nodes,
        seed=args.seed,
        failures=failures if failures is not None else FailureModel(),
    )


def _command_run(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    failures = FailureModel(probability=args.failure_probability, delay=args.failure_delay)
    report = GinFlow(_base_config(args, failures)).run(workflow)
    if args.json:
        print(json.dumps(report.summary(), indent=2))
    else:
        print(report.format_summary())
    return 0 if report.succeeded else 1


def _parse_param_value(text: str) -> Any:
    """Best-effort scalar parsing of one swept value (int, float, bool, str)."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text.strip()


def _parse_params(specs: Sequence[str]) -> dict[str, list[Any]]:
    grid: dict[str, list[Any]] = {}
    for spec in specs:
        name, separator, values = spec.partition("=")
        name = name.strip()
        parts = [value.strip() for value in values.split(",")]
        if not separator or not name or not parts or any(part == "" for part in parts):
            raise ValueError(f"invalid --param {spec!r}; expected NAME=V1,V2,...")
        if name in grid:
            raise ValueError(f"duplicate --param {name!r}; give every value in one NAME=V1,V2,... spec")
        grid[name] = [_parse_param_value(part) for part in parts]
    return grid


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import ParameterGrid

    grid_spec = _parse_params(args.param)
    if not grid_spec:
        raise ValueError("sweep needs at least one --param NAME=V1,V2,...")
    workflow = workflow_from_json(args.workflow)
    report = GinFlow(_base_config(args)).sweep(
        workflow,
        ParameterGrid(grid_spec),
        repeats=args.repeats,
        workers=args.workers,
        name="cli-sweep",
    )
    if args.csv:
        report.to_csv(args.csv)
    if args.json_out:
        report.to_json(args.json_out)
    if args.json:
        print(report.to_json())
    else:
        print(report.format_table())
    return 0 if report.succeeded else 1


def _command_backends(args: argparse.Namespace) -> int:
    ensure_builtin_backends()
    kinds = (args.kind,) if args.kind else KINDS
    if args.json:
        payload = [
            {
                "kind": backend.kind,
                "name": backend.name,
                "description": backend.description,
                "capabilities": {
                    key: repr(value) if not isinstance(value, (str, int, float, bool, type(None))) else value
                    for key, value in backend.capabilities.items()
                },
            }
            for kind in kinds
            for backend in registry.backends(kind)
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for kind in kinds:
        entries = registry.backends(kind)
        print(f"{kind} ({len(entries)}):")
        for backend in entries:
            capabilities = ", ".join(
                f"{key}={value}" if not isinstance(value, bool) else (key if value else f"no-{key}")
                for key, value in backend.capabilities.items()
                if not callable(value) and not isinstance(value, type)
            )
            suffix = f"  [{capabilities}]" if capabilities else ""
            print(f"  {backend.name:<12} {backend.description}{suffix}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    workflow.validate()
    print(
        f"workflow {workflow.name!r}: {len(workflow)} tasks, "
        f"{len(workflow.dependencies())} dependencies, {len(workflow.adaptations)} adaptation(s) — OK"
    )
    return 0


def _command_show_hocl(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    encoding = encode_workflow(workflow)
    print(str(encoding.to_multiset()))
    return 0


_COMMANDS = {
    "run": _command_run,
    "sweep": _command_sweep,
    "backends": _command_backends,
    "validate": _command_validate,
    "show-hocl": _command_show_hocl,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``ginflow`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse enforces the choices
        return 2
    try:
        return command(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
