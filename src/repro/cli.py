"""Command line interface (the paper's Section IV-D client interface).

Usage::

    ginflow run workflow.json --mode simulated --executor mesos --broker kafka --nodes 10
    ginflow validate workflow.json
    ginflow show-hocl workflow.json

or, without installing the console script::

    python -m repro.cli run workflow.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.hoclflow import encode_workflow
from repro.runtime import GinFlow, GinFlowConfig
from repro.services import FailureModel
from repro.workflow import workflow_from_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``ginflow`` command."""
    parser = argparse.ArgumentParser(
        prog="ginflow",
        description="GinFlow: decentralised adaptive workflow execution manager (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute a JSON workflow")
    run_parser.add_argument("workflow", help="path to the JSON workflow definition")
    run_parser.add_argument("--mode", default="simulated", choices=("simulated", "threaded", "centralized"))
    run_parser.add_argument("--executor", default="ssh", choices=("ssh", "mesos"))
    run_parser.add_argument("--broker", default="activemq", choices=("activemq", "kafka"))
    run_parser.add_argument("--nodes", type=int, default=25, help="number of cluster nodes (simulated mode)")
    run_parser.add_argument("--seed", type=int, default=1, help="root random seed")
    run_parser.add_argument("--failure-probability", type=float, default=0.0, help="failure injection probability p")
    run_parser.add_argument("--failure-delay", type=float, default=0.0, help="failure injection delay T (seconds)")
    run_parser.add_argument("--json", action="store_true", help="print the report summary as JSON")

    validate_parser = subparsers.add_parser("validate", help="validate a JSON workflow definition")
    validate_parser.add_argument("workflow", help="path to the JSON workflow definition")

    hocl_parser = subparsers.add_parser("show-hocl", help="print the HOCL encoding of a workflow")
    hocl_parser.add_argument("workflow", help="path to the JSON workflow definition")

    return parser


def _command_run(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    failures = FailureModel(probability=args.failure_probability, delay=args.failure_delay)
    config = GinFlowConfig(
        mode=args.mode,
        executor=args.executor,
        broker=args.broker,
        nodes=args.nodes,
        seed=args.seed,
        failures=failures,
    )
    report = GinFlow(config).run(workflow)
    if args.json:
        print(json.dumps(report.summary(), indent=2))
    else:
        print(report.format_summary())
    return 0 if report.succeeded else 1


def _command_validate(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    workflow.validate()
    print(
        f"workflow {workflow.name!r}: {len(workflow)} tasks, "
        f"{len(workflow.dependencies())} dependencies, {len(workflow.adaptations)} adaptation(s) — OK"
    )
    return 0


def _command_show_hocl(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    encoding = encode_workflow(workflow)
    print(str(encoding.to_multiset()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``ginflow`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "validate":
            return _command_validate(args)
        if args.command == "show-hocl":
            return _command_show_hocl(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
