"""Command line interface (the paper's Section IV-D client interface).

Usage::

    ginflow run workflow.json --mode simulated --executor mesos --broker kafka --nodes 10
    ginflow run --scenario cybershake:size=500,seed=3 --mode asyncio
    ginflow run --scenario montage:size=100 --trace run.trace.jsonl
    ginflow run --scenario montage:size=100 --trace out.json --trace-format chrome
    ginflow trace summarize run.trace.jsonl --top 10
    ginflow trace convert run.trace.jsonl out.json --to chrome
    ginflow sweep workflow.json --param nodes=5,10,15 --param broker=activemq,kafka --repeats 3
    ginflow sweep --scenario epigenomics --param size=50,200 --repeats 3
    ginflow scenarios
    ginflow scenarios cybershake
    ginflow backends
    ginflow validate workflow.json
    ginflow lint workflow.json
    ginflow lint --scenario epigenomics --json
    ginflow lint --all-scenarios --fail-on error
    ginflow audit --scenario forkjoin:size=20 --repeats 3
    ginflow audit --all-scenarios --mode threaded
    ginflow show-hocl workflow.json

or, without installing the console script::

    python -m repro.cli run workflow.json

Backend choices (``--mode`` / ``--executor`` / ``--broker`` / ``--cluster``
/ ``--reduction``) are drawn dynamically from the backend registry
(:mod:`repro.runtime.backends`), so third-party backends registered before
:func:`main` runs are accepted everywhere without touching this module.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.hoclflow import encode_workflow
from repro.obs import JsonlTracer, MetricsRegistry, Observability, RecordingTracer
from repro.obs.export import read_trace, write_trace
from repro.obs.logs import configure_logging
from repro.obs.summarize import format_summary, summarize
from repro.runtime import GinFlow, GinFlowConfig
from repro.runtime.backends import (
    KINDS,
    available_brokers,
    available_clusters,
    available_executors,
    available_reductions,
    available_runtimes,
    ensure_builtin_backends,
    registry,
)
from repro.scenarios import available_scenarios, build_scenario, get_scenario
from repro.services import FailureModel
from repro.workflow import workflow_from_json

__all__ = ["main", "build_parser"]


def _add_workflow_source(parser: argparse.ArgumentParser) -> None:
    """The two workflow sources of ``run``/``sweep``: a JSON file or a scenario spec."""
    parser.add_argument("workflow", nargs="?", help="path to the JSON workflow definition")
    parser.add_argument(
        "--scenario",
        metavar="NAME[:K=V,...]",
        help="generate the workflow from a registered scenario instead of a JSON file, "
        "e.g. --scenario cybershake:size=500,seed=3 (see 'ginflow scenarios')",
    )


def _resolve_workflow_source(args: argparse.Namespace):
    """The workflow named by ``args`` (exactly one of file path / --scenario)."""
    if args.workflow and args.scenario:
        raise ValueError("pass either a workflow file or --scenario, not both")
    if args.scenario:
        return build_scenario(args.scenario)
    if args.workflow:
        return workflow_from_json(args.workflow)
    raise ValueError("a workflow source is required: a JSON file path or --scenario NAME[:K=V,...]")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Configuration flags shared by ``run`` and ``sweep`` (registry-driven)."""
    parser.add_argument("--mode", default="simulated", choices=available_runtimes())
    parser.add_argument("--executor", default="ssh", choices=available_executors())
    parser.add_argument("--broker", default="activemq", choices=available_brokers())
    parser.add_argument("--cluster", default="grid5000", choices=available_clusters(),
                        help="cluster preset (simulated mode)")
    parser.add_argument("--reduction", default="serial", choices=available_reductions(),
                        help="HOCL reduction strategy: serial (reference), batch "
                        "(disjoint matches per pass), parallel (batch + concurrent shards)")
    parser.add_argument("--nodes", type=int, default=25, help="number of cluster nodes (simulated mode)")
    parser.add_argument("--seed", type=int, default=1, help="root random seed")


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Tracing flags shared by ``run`` and ``sweep``."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a trace of the run to PATH (spans and events from every layer)",
    )
    parser.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format: streaming JSONL (default) or the Chrome "
        "trace-event format (open in Perfetto; one track per agent)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``ginflow`` command."""
    parser = argparse.ArgumentParser(
        prog="ginflow",
        description="GinFlow: decentralised adaptive workflow execution manager (reproduction)",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="enable library logging to stderr at this level (debug, info, warning, ...)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute a JSON workflow or a registered scenario")
    _add_workflow_source(run_parser)
    _add_config_arguments(run_parser)
    _add_trace_arguments(run_parser)
    run_parser.add_argument("--failure-probability", type=float, default=0.0, help="failure injection probability p")
    run_parser.add_argument("--failure-delay", type=float, default=0.0, help="failure injection delay T (seconds)")
    run_parser.add_argument("--json", action="store_true", help="print the report summary as JSON")

    sweep_parser = subparsers.add_parser("sweep", help="execute a workflow over a parameter grid")
    _add_workflow_source(sweep_parser)
    _add_config_arguments(sweep_parser)
    _add_trace_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="sweep parameter (repeatable), e.g. --param nodes=5,10 --param broker=activemq,kafka",
    )
    sweep_parser.add_argument("--repeats", type=int, default=1, help="runs per grid cell")
    sweep_parser.add_argument("--workers", type=int, default=None, help="parallel workers (threads)")
    sweep_parser.add_argument("--csv", metavar="PATH", help="write the per-run rows as CSV")
    sweep_parser.add_argument("--json-out", metavar="PATH", help="write rows + aggregates as JSON")
    sweep_parser.add_argument("--json", action="store_true", help="print the sweep report as JSON")

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list the registered workflow scenarios (or describe one)"
    )
    scenarios_parser.add_argument("name", nargs="?", help="describe one scenario in detail")
    scenarios_parser.add_argument("--json", action="store_true", help="print the listing as JSON")
    scenarios_parser.add_argument(
        "--names", action="store_true", help="print the bare scenario names, one per line"
    )

    backends_parser = subparsers.add_parser("backends", help="list the registered backends")
    backends_parser.add_argument("--kind", choices=KINDS, help="restrict to one backend kind")
    backends_parser.add_argument("--json", action="store_true", help="print the listing as JSON")

    validate_parser = subparsers.add_parser(
        "validate", help="validate a workflow definition and its JSON round-trip"
    )
    _add_workflow_source(validate_parser)

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically analyze workflows, scenarios and their HOCL rules",
        description="Run the repro.analysis checks (rule, workflow and scenario "
        "families) without executing anything; see the README's "
        "'Static analysis' section for the check catalog.",
    )
    _add_workflow_source(lint_parser)
    lint_parser.add_argument(
        "--all-scenarios",
        action="store_true",
        help="lint every registered scenario at its default parameters",
    )
    lint_parser.add_argument(
        "--fail-on",
        choices=["warning", "error"],
        default="error",
        help="exit non-zero when a finding of at least this severity exists (default: error)",
    )
    lint_parser.add_argument("--json", action="store_true", help="print the findings as JSON")
    lint_parser.add_argument(
        "--json-out", metavar="PATH", help="also write the JSON findings report to PATH"
    )

    audit_parser = subparsers.add_parser(
        "audit",
        help="dynamically analyze runs: rule coverage, enactment invariants, adaptation plans",
        description="Enact the workflow (or scenario) and run the repro.analysis "
        "dynamic checks (trace, run and plan families) on the artifacts the "
        "run produces; see the README's 'Dynamic analysis' section for the "
        "check catalog.",
    )
    _add_workflow_source(audit_parser)
    audit_parser.add_argument(
        "--all-scenarios",
        action="store_true",
        help="audit every registered scenario at a small size (size=20)",
    )
    audit_parser.add_argument("--mode", default="simulated", choices=available_runtimes())
    audit_parser.add_argument("--reduction", default="serial", choices=available_reductions(),
                              help="HOCL reduction strategy audited runs use")
    audit_parser.add_argument("--nodes", type=int, default=5, help="number of cluster nodes")
    audit_parser.add_argument("--seed", type=int, default=1, help="root random seed")
    audit_parser.add_argument(
        "--repeats", type=int, default=1,
        help="runs per workflow (seeds seed..seed+repeats-1); rule coverage merges all runs",
    )
    audit_parser.add_argument(
        "--fail-on",
        choices=["warning", "error"],
        default="error",
        help="exit non-zero when a finding of at least this severity exists (default: error)",
    )
    audit_parser.add_argument("--json", action="store_true", help="print the findings as JSON")
    audit_parser.add_argument(
        "--json-out", metavar="PATH", help="also write the JSON findings report to PATH"
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect or convert a recorded trace file",
        description="Work with traces recorded by 'ginflow run|sweep --trace': "
        "'summarize' prints per-phase, per-agent and per-rule rollups plus the "
        "top spans by self-time; 'convert' translates between the streaming "
        "JSONL format and the Chrome trace-event format (loadable in Perfetto).",
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)
    summarize_parser = trace_subparsers.add_parser("summarize", help="print rollups of a trace file")
    summarize_parser.add_argument("trace_path", metavar="PATH", help="trace file (JSONL or Chrome format)")
    summarize_parser.add_argument("--top", type=int, default=10, help="number of top spans to show")
    summarize_parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    convert_parser = trace_subparsers.add_parser("convert", help="convert a trace between formats")
    convert_parser.add_argument("src", metavar="SRC", help="input trace file (format auto-detected)")
    convert_parser.add_argument("dst", metavar="DST", help="output trace file")
    convert_parser.add_argument(
        "--to",
        dest="to_format",
        choices=["jsonl", "chrome"],
        help="output format (default: chrome unless DST ends in .jsonl)",
    )

    hocl_parser = subparsers.add_parser("show-hocl", help="print the HOCL encoding of a workflow")
    hocl_parser.add_argument("workflow", help="path to the JSON workflow definition")

    return parser


def _base_config(
    args: argparse.Namespace,
    failures: FailureModel | None = None,
    obs: Observability | None = None,
) -> GinFlowConfig:
    return GinFlowConfig(
        mode=args.mode,
        executor=args.executor,
        broker=args.broker,
        reduction=args.reduction,
        cluster_preset=args.cluster,
        nodes=args.nodes,
        seed=args.seed,
        failures=failures if failures is not None else FailureModel(),
        obs=obs,
    )


def _build_observability(args: argparse.Namespace) -> Observability | None:
    """The ``Observability`` bundle requested by ``--trace``, or ``None``."""
    if not args.trace:
        return None
    if args.trace_format == "chrome":
        # the Chrome export needs the whole record set: record in memory,
        # write the file once the run finished
        return Observability(tracer=RecordingTracer(), metrics=MetricsRegistry())
    return Observability(tracer=JsonlTracer(args.trace), metrics=MetricsRegistry())


def _finish_trace(args: argparse.Namespace, obs: Observability | None) -> None:
    """Flush/convert the recorded trace once the run completed."""
    if obs is None or obs.tracer is None:
        return
    if isinstance(obs.tracer, RecordingTracer):
        write_trace(obs.tracer.records(), args.trace, args.trace_format)
    obs.tracer.close()


def _command_run(args: argparse.Namespace) -> int:
    workflow = _resolve_workflow_source(args)
    failures = FailureModel(probability=args.failure_probability, delay=args.failure_delay)
    obs = _build_observability(args)
    try:
        report = GinFlow(_base_config(args, failures, obs)).run(workflow)
    finally:
        _finish_trace(args, obs)
    if args.json:
        print(json.dumps(report.summary(), indent=2))
    else:
        print(report.format_summary())
    return 0 if report.succeeded and not report.timed_out else 1


def _parse_param_value(text: str) -> Any:
    """Best-effort scalar parsing of one swept value (int, float, bool, str)."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text.strip()


def _parse_params(specs: Sequence[str]) -> dict[str, list[Any]]:
    grid: dict[str, list[Any]] = {}
    for spec in specs:
        name, separator, values = spec.partition("=")
        name = name.strip()
        parts = [value.strip() for value in values.split(",")]
        if not separator or not name or not parts or any(part == "" for part in parts):
            raise ValueError(f"invalid --param {spec!r}; expected NAME=V1,V2,...")
        if name in grid:
            raise ValueError(f"duplicate --param {name!r}; give every value in one NAME=V1,V2,... spec")
        grid[name] = [_parse_param_value(part) for part in parts]
    return grid


def _command_sweep(args: argparse.Namespace) -> int:
    from functools import partial

    from repro.experiments import ParameterGrid

    grid_spec = _parse_params(args.param)
    if not grid_spec:
        raise ValueError("sweep needs at least one --param NAME=V1,V2,...")
    if args.workflow and args.scenario:
        raise ValueError("pass either a workflow file or --scenario, not both")
    if args.scenario:
        # a factory, so swept parameters (size, edge_probability, ...) reach
        # the scenario generator as keyword overrides
        workflow: Any = partial(build_scenario, args.scenario)
    elif args.workflow:
        workflow = workflow_from_json(args.workflow)
    elif "scenario" in grid_spec:
        workflow = None  # the swept 'scenario' axis provides the workflows
    else:
        raise ValueError(
            "a workflow source is required: a JSON file path, --scenario, "
            "or a swept --param scenario=NAME1,NAME2"
        )
    obs = _build_observability(args)
    try:
        report = GinFlow(_base_config(args, obs=obs)).sweep(
            workflow,
            ParameterGrid(grid_spec),
            repeats=args.repeats,
            workers=args.workers,
            name="cli-sweep",
        )
    finally:
        _finish_trace(args, obs)
    if args.csv:
        report.to_csv(args.csv)
    if args.json_out:
        report.to_json(args.json_out)
    if args.json:
        print(report.to_json())
    else:
        print(report.format_table())
    return 0 if report.succeeded and not report.timed_out else 1


def _scenario_payload(name: str) -> dict[str, Any]:
    scenario = get_scenario(name)
    return {
        "name": scenario.name,
        "description": scenario.description,
        "structure": scenario.structure,
        "parameters": scenario.parameters(),
        "cost_profile": {stage: list(bounds) for stage, bounds in scenario.cost_profile.items()},
        "failure_profile": dict(scenario.failure_profile),
        "tags": list(scenario.tags),
    }


def _command_scenarios(args: argparse.Namespace) -> int:
    names = (args.name,) if args.name else available_scenarios()
    if args.names:
        for name in names:
            print(name)
        return 0
    if args.json:
        print(json.dumps([_scenario_payload(name) for name in names], indent=2))
        return 0
    if args.name:
        scenario = get_scenario(args.name)
        print(f"{scenario.name} — {scenario.description}")
        print(f"  structure : {scenario.structure}")
        if scenario.tags:
            print(f"  tags      : {', '.join(scenario.tags)}")
        print("  parameters:")
        for parameter, default in scenario.parameters().items():
            print(f"    {parameter:<20} default={default!r}")
        if scenario.cost_profile:
            print("  cost profile (stage -> duration range, seconds):")
            for stage, (low, high) in scenario.cost_profile.items():
                print(f"    {stage:<20} {low:g} .. {high:g}")
        if scenario.failure_profile:
            profile = ", ".join(f"{key}={value}" for key, value in scenario.failure_profile.items())
            print(f"  failure profile: {profile}")
        print(f"  example   : ginflow run --scenario {scenario.name}:size=100,seed=1")
        return 0
    print(f"scenarios ({len(names)}):")
    for name in names:
        scenario = get_scenario(name)
        tasks = len(scenario.build())
        print(f"  {name:<16} {tasks:>4} tasks at size={scenario.parameters().get('size')}  {scenario.description}")
    print("run 'ginflow scenarios NAME' for parameters and cost profiles")
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    ensure_builtin_backends()
    kinds = (args.kind,) if args.kind else KINDS
    if args.json:
        payload = [
            {
                "kind": backend.kind,
                "name": backend.name,
                "description": backend.description,
                "capabilities": {
                    key: repr(value) if not isinstance(value, (str, int, float, bool, type(None))) else value
                    for key, value in backend.capabilities.items()
                },
            }
            for kind in kinds
            for backend in registry.backends(kind)
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for kind in kinds:
        entries = registry.backends(kind)
        print(f"{kind} ({len(entries)}):")
        for backend in entries:
            capabilities = ", ".join(
                f"{key}={value}" if not isinstance(value, bool) else (key if value else f"no-{key}")
                for key, value in backend.capabilities.items()
                if not callable(value) and not isinstance(value, type)
            )
            suffix = f"  [{capabilities}]" if capabilities else ""
            print(f"  {backend.name:<12} {backend.description}{suffix}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    from repro.analysis import Severity, analyze_workflow

    workflow = _resolve_workflow_source(args)
    workflow.validate()
    # Structural and JSON round-trip checks are delegated to the analyzer —
    # one implementation of cycle/orphan/JSON-safety shared with `ginflow
    # lint`.  Only error-severity structural findings fail validation (the
    # analyzer's warnings and rule-level findings belong to `lint`).
    report = analyze_workflow(workflow)
    errors = [finding for finding in report if finding.severity is Severity.ERROR]
    if errors:
        raise ValueError("; ".join(finding.message for finding in errors))
    print(
        f"workflow {workflow.name!r}: {len(workflow)} tasks, "
        f"{len(workflow.dependencies())} dependencies, {len(workflow.adaptations)} adaptation(s) — OK"
    )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis import AnalysisReport, Severity, analyze_all_scenarios, analyze_document, analyze_scenario

    sources = sum(1 for given in (args.workflow, args.scenario, args.all_scenarios) if given)
    if sources != 1:
        raise ValueError(
            "pass exactly one lint target: a workflow JSON path, --scenario NAME[:K=V,...], "
            "or --all-scenarios"
        )
    report: AnalysisReport
    if args.all_scenarios:
        report = analyze_all_scenarios()
    elif args.scenario:
        report = analyze_scenario(args.scenario)
    else:
        report = analyze_document(args.workflow)
    fail_on = Severity.parse(args.fail_on)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(fail_on) + "\n")
    if args.json:
        print(report.to_json(fail_on))
    else:
        print(report.format_text())
    return 0 if report.ok(fail_on) else 1


def _command_audit(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisReport,
        Severity,
        audit_all_scenarios,
        audit_scenario,
        audit_workflow,
    )

    sources = sum(1 for given in (args.workflow, args.scenario, args.all_scenarios) if given)
    if sources != 1:
        raise ValueError(
            "pass exactly one audit target: a workflow JSON path, --scenario NAME[:K=V,...], "
            "or --all-scenarios"
        )
    report: AnalysisReport
    if args.all_scenarios:
        report = audit_all_scenarios(
            mode=args.mode,
            nodes=args.nodes,
            seed=args.seed,
            repeats=args.repeats,
            reduction=args.reduction,
        )
    elif args.scenario:
        report = audit_scenario(
            args.scenario,
            mode=args.mode,
            nodes=args.nodes,
            seed=args.seed,
            repeats=args.repeats,
            reduction=args.reduction,
        )
    else:
        report = audit_workflow(
            workflow_from_json(args.workflow),
            mode=args.mode,
            nodes=args.nodes,
            seed=args.seed,
            repeats=args.repeats,
            reduction=args.reduction,
        )
    fail_on = Severity.parse(args.fail_on)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(fail_on) + "\n")
    if args.json:
        print(report.to_json(fail_on))
    else:
        print(report.format_text())
    return 0 if report.ok(fail_on) else 1


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        records = read_trace(args.trace_path)
        summary = summarize(records, top=args.top)
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(format_summary(summary))
        return 0
    if args.trace_command == "convert":
        records = read_trace(args.src)
        fmt = args.to_format
        if fmt is None:
            fmt = "jsonl" if args.dst.endswith(".jsonl") else "chrome"
        write_trace(records, args.dst, fmt)
        print(f"wrote {len(records)} records to {args.dst} ({fmt})")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def _command_show_hocl(args: argparse.Namespace) -> int:
    workflow = workflow_from_json(args.workflow)
    encoding = encode_workflow(workflow)
    print(str(encoding.to_multiset()))
    return 0


_COMMANDS = {
    "run": _command_run,
    "sweep": _command_sweep,
    "scenarios": _command_scenarios,
    "backends": _command_backends,
    "validate": _command_validate,
    "lint": _command_lint,
    "audit": _command_audit,
    "trace": _command_trace,
    "show-hocl": _command_show_hocl,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``ginflow`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        configure_logging(args.log_level)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse enforces the choices
        return 2
    try:
        return command(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
