"""Additional cluster presets built on the backend registry.

The Grid'5000 preset reproduces the paper's testbed exactly (uneven core
counts, a 25-node ceiling).  The *uniform* preset here removes both
constraints: every node is identical and the node count is unbounded, which
is what scale experiments beyond the paper's setup need.  It also serves as
the in-tree example of adding a cluster backend without touching the engine:
third-party presets register exactly the same way.
"""

from __future__ import annotations

from repro.runtime.backends import register_cluster

from .node import Cluster, Node

__all__ = ["uniform_cluster", "UNIFORM_CORES_PER_NODE"]

#: Core count of every node of the uniform preset.
UNIFORM_CORES_PER_NODE = 8


def uniform_cluster(
    nodes: int,
    cores_per_node: int = UNIFORM_CORES_PER_NODE,
    agents_per_core: int = 2,
    name: str | None = None,
) -> Cluster:
    """A homogeneous cluster of ``nodes`` identical machines."""
    if nodes < 1:
        raise ValueError("a uniform cluster needs at least one node")
    machines = [
        Node(name=f"uniform-{index + 1}", cores=cores_per_node, agents_per_core=agents_per_core)
        for index in range(nodes)
    ]
    return Cluster(machines, name=name or f"uniform-{nodes}")


@register_cluster(
    "uniform",
    capabilities={"max_nodes": None, "cores_per_node": UNIFORM_CORES_PER_NODE},
    description="homogeneous cluster: any node count, 8 cores per node, 2 agents/core",
)
def _build_uniform_cluster(config) -> Cluster:
    """Cluster backend factory: ``config.nodes`` identical machines."""
    return uniform_cluster(getattr(config, "nodes", 1))
