"""Grid'5000-like cluster presets.

The experimental setup of the paper: up to 25 nodes, 568 cores in total,
1.5 TB of RAM, 1 Gbps Ethernet, at most two service agents per core (hence up
to ~1000 deployable services).  :func:`grid5000_cluster` builds a cluster
with exactly that aggregate core count.
"""

from __future__ import annotations

from repro.runtime.backends import register_cluster

from .network import NetworkModel
from .node import Cluster, Node

__all__ = [
    "GRID5000_NODES",
    "GRID5000_TOTAL_CORES",
    "grid5000_cluster",
    "grid5000_network",
]

#: Number of nodes used in the paper's experiments.
GRID5000_NODES = 25

#: Total number of cores available in the paper's experiments.
GRID5000_TOTAL_CORES = 568

#: Agents-per-core limit applied in the paper.
GRID5000_AGENTS_PER_CORE = 2


def grid5000_cluster(nodes: int = GRID5000_NODES, agents_per_core: int = GRID5000_AGENTS_PER_CORE) -> Cluster:
    """A cluster preset mirroring the paper's testbed.

    When ``nodes`` equals 25 the aggregate core count is exactly 568 (the
    cores are spread as evenly as integer arithmetic allows); smaller values
    keep the same per-node core counts and simply take the first ``nodes``
    machines, which is how the Fig. 14 experiment varies the node count.
    """
    if nodes < 1 or nodes > GRID5000_NODES:
        raise ValueError(f"the Grid'5000 preset provides between 1 and {GRID5000_NODES} nodes")
    base = GRID5000_TOTAL_CORES // GRID5000_NODES          # 22 cores
    remainder = GRID5000_TOTAL_CORES % GRID5000_NODES      # 18 nodes get one more
    machines = []
    for index in range(GRID5000_NODES):
        cores = base + (1 if index < remainder else 0)
        machines.append(Node(name=f"paranoia-{index + 1}", cores=cores, agents_per_core=agents_per_core))
    return Cluster(machines[:nodes], name=f"grid5000-{nodes}")


def grid5000_network() -> NetworkModel:
    """The 1 Gbps Ethernet network model of the testbed."""
    return NetworkModel(latency=0.0005, bandwidth=125_000_000.0, jitter=0.0002)


@register_cluster(
    "grid5000",
    capabilities={"max_nodes": GRID5000_NODES, "total_cores": GRID5000_TOTAL_CORES},
    description="the paper's Grid'5000 testbed: 25 nodes, 568 cores, 2 agents/core",
)
def _build_grid5000_cluster(config) -> Cluster:
    """Cluster backend factory: the first ``config.nodes`` testbed machines."""
    return grid5000_cluster(getattr(config, "nodes", GRID5000_NODES))
