"""A Mesos-like resource-offer master.

The paper's Mesos executor "starts one SA per machine for each offer received
from the Mesos scheduler", so the relevant behaviour is the *offer cycle*:
periodically, the master offers the currently available machines to the
framework, which accepts slots on them.  More nodes per offer means more
agents started per cycle, which is what produces the linearly decreasing
deployment time of Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import Cluster, Node

__all__ = ["ResourceOffer", "MesosMaster"]


@dataclass
class ResourceOffer:
    """One resource offer: a set of machines with at least one free agent slot."""

    round_index: int
    nodes: list[Node]

    def __len__(self) -> int:
        return len(self.nodes)


class MesosMaster:
    """Generates resource offers over a cluster.

    Parameters
    ----------
    cluster:
        The managed cluster.
    offer_interval:
        Virtual seconds between two offer rounds.
    registration_delay:
        Framework registration time before the first offer.
    """

    def __init__(self, cluster: Cluster, offer_interval: float = 2.0, registration_delay: float = 1.0):
        if offer_interval <= 0:
            raise ValueError("offer_interval must be > 0")
        self.cluster = cluster
        self.offer_interval = offer_interval
        self.registration_delay = registration_delay
        self._round = 0

    def next_offer_time(self) -> float:
        """Virtual time (relative to deployment start) of the next offer round."""
        return self.registration_delay + self._round * self.offer_interval

    def make_offer(self) -> ResourceOffer:
        """Produce the next offer: every node that still has a free slot."""
        offer = ResourceOffer(
            round_index=self._round,
            nodes=[node for node in self.cluster.nodes if node.free_slots > 0],
        )
        self._round += 1
        return offer

    def reset(self) -> None:
        """Restart the offer cycle."""
        self._round = 0
