"""Network model of the simulated testbed.

The Grid'5000 nodes of the paper are connected through 1 Gbps Ethernet.  The
model is deliberately simple — a fixed per-message latency plus a
bandwidth-proportional transfer time — because the experiments exchange small
coordination messages whose cost is dominated by latency and by broker
processing, not by payload size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    """Point-to-point network cost model.

    Attributes
    ----------
    latency:
        One-way latency in seconds (default 0.5 ms, a typical same-switch
        Grid'5000 round trip of ~1 ms).
    bandwidth:
        Link bandwidth in bytes per second (default 1 Gbps).
    jitter:
        Maximum uniform jitter added to each transfer, in seconds.
    """

    latency: float = 0.0005
    bandwidth: float = 125_000_000.0  # 1 Gbps in bytes/s
    jitter: float = 0.0

    def transfer_time(self, size_bytes: float = 1024.0, jitter_draw: float = 0.0) -> float:
        """Time to move ``size_bytes`` from one node to another.

        ``jitter_draw`` must be a uniform draw in ``[0, 1)`` supplied by the
        caller (so that all randomness flows from the run's seeded streams).
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        return self.latency + size_bytes / self.bandwidth + self.jitter * jitter_draw

    def scaled(self, factor: float) -> "NetworkModel":
        """A copy with latency (and jitter) multiplied by ``factor``."""
        return NetworkModel(latency=self.latency * factor, bandwidth=self.bandwidth, jitter=self.jitter * factor)
