"""Simulated infrastructure: nodes, clusters, network and the Mesos master.

Import order matters here: the leaf modules (:mod:`.node`, :mod:`.network`,
:mod:`.mesos_master`) load first so that the preset modules — which import
:mod:`repro.runtime.backends` to register themselves — can be imported even
while this package is still initialising.
"""

from .node import Cluster, Node
from .network import NetworkModel
from .mesos_master import MesosMaster, ResourceOffer
from .grid5000 import (
    GRID5000_NODES,
    GRID5000_TOTAL_CORES,
    grid5000_cluster,
    grid5000_network,
)
from .presets import UNIFORM_CORES_PER_NODE, uniform_cluster

__all__ = [
    "Node",
    "Cluster",
    "NetworkModel",
    "MesosMaster",
    "ResourceOffer",
    "grid5000_cluster",
    "grid5000_network",
    "GRID5000_NODES",
    "GRID5000_TOTAL_CORES",
    "uniform_cluster",
    "UNIFORM_CORES_PER_NODE",
]
