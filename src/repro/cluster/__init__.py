"""Simulated infrastructure: nodes, clusters, network and the Mesos master."""

from .grid5000 import (
    GRID5000_NODES,
    GRID5000_TOTAL_CORES,
    grid5000_cluster,
    grid5000_network,
)
from .mesos_master import MesosMaster, ResourceOffer
from .network import NetworkModel
from .node import Cluster, Node

__all__ = [
    "Node",
    "Cluster",
    "NetworkModel",
    "MesosMaster",
    "ResourceOffer",
    "grid5000_cluster",
    "grid5000_network",
    "GRID5000_NODES",
    "GRID5000_TOTAL_CORES",
]
