"""Compute nodes of the simulated infrastructure.

The paper's experiments ran on up to 25 Grid'5000 nodes totalling 568 cores,
with the number of service agents per core limited to two (which is what
allowed up to 1000 deployed services).  :class:`Node` and :class:`Cluster`
model exactly that capacity accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Node", "Cluster"]


@dataclass
class Node:
    """One compute node.

    Attributes
    ----------
    name:
        Host name (``node-3``).
    cores:
        Number of CPU cores.
    agents_per_core:
        Deployment limit of service agents per core (2 in the paper).
    """

    name: str
    cores: int
    agents_per_core: int = 2
    assigned: list[str] = field(default_factory=list)

    @property
    def capacity(self) -> int:
        """Maximum number of service agents this node may host."""
        return self.cores * self.agents_per_core

    @property
    def free_slots(self) -> int:
        """Remaining agent slots."""
        return self.capacity - len(self.assigned)

    def assign(self, agent_name: str) -> None:
        """Place one agent on the node (raises when the node is full)."""
        if self.free_slots <= 0:
            raise RuntimeError(f"node {self.name!r} is full ({self.capacity} agents)")
        self.assigned.append(agent_name)

    def release(self, agent_name: str) -> None:
        """Remove one agent from the node (no error if absent)."""
        if agent_name in self.assigned:
            self.assigned.remove(agent_name)

    def reset(self) -> None:
        """Clear every assignment."""
        self.assigned.clear()


class Cluster:
    """A named set of nodes with capacity accounting."""

    def __init__(self, nodes: Iterable[Node], name: str = "cluster"):
        self.name = name
        self.nodes: list[Node] = list(nodes)
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, name: str) -> Node:
        """The node called ``name``."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"unknown node {name!r}")

    @property
    def total_cores(self) -> int:
        """Total number of cores across the cluster."""
        return sum(node.cores for node in self.nodes)

    @property
    def total_capacity(self) -> int:
        """Total number of agent slots across the cluster."""
        return sum(node.capacity for node in self.nodes)

    def free_capacity(self) -> int:
        """Remaining agent slots across the cluster."""
        return sum(node.free_slots for node in self.nodes)

    def subset(self, count: int) -> "Cluster":
        """A cluster restricted to the first ``count`` nodes (fresh assignments)."""
        if count < 1 or count > len(self.nodes):
            raise ValueError(f"cannot take {count} nodes out of {len(self.nodes)}")
        selected = [Node(name=node.name, cores=node.cores, agents_per_core=node.agents_per_core) for node in self.nodes[:count]]
        return Cluster(selected, name=f"{self.name}[{count}]")

    def reset(self) -> None:
        """Clear every node's assignments."""
        for node in self.nodes:
            node.reset()

    def round_robin_placement(self, agent_names: Iterable[str]) -> dict[str, Node]:
        """Place agents on nodes in round-robin order (the SSH executor's policy)."""
        placement: dict[str, Node] = {}
        nodes = self.nodes
        index = 0
        for agent_name in agent_names:
            placed = False
            for _attempt in range(len(nodes)):
                node = nodes[index % len(nodes)]
                index += 1
                if node.free_slots > 0:
                    node.assign(agent_name)
                    placement[agent_name] = node
                    placed = True
                    break
            if not placed:
                raise RuntimeError(
                    f"cluster {self.name!r} is out of capacity "
                    f"({self.total_capacity} slots) while placing {agent_name!r}"
                )
        return placement

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Cluster({self.name!r}, {len(self.nodes)} nodes, {self.total_cores} cores)"
