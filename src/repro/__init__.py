"""repro — a Python reproduction of GinFlow (IPDPS 2016).

GinFlow is a decentralised adaptive workflow execution manager built on
shared-space (chemical) coordination.  This package re-implements the whole
stack described in the paper:

* :mod:`repro.hocl` — the HOCL multiset-rewriting language and interpreter,
* :mod:`repro.hoclflow` — the workflow-specific extensions (generic
  enactment rules, adaptation rules, DAG → HOCL translation),
* :mod:`repro.workflow` — the user-facing workflow model (tasks, DAGs, JSON
  format, adaptation specifications, workload generators),
* :mod:`repro.services` — service abstraction and failure injection,
* :mod:`repro.simkernel` — a deterministic discrete-event simulation kernel,
* :mod:`repro.cluster` — the simulated infrastructure (nodes, network,
  Grid'5000-like presets, a Mesos-like resource-offer master),
* :mod:`repro.messaging` — ActiveMQ-like and Kafka-like message brokers,
* :mod:`repro.agents` — service agents, the shared-space coordinator and the
  fault-recovery mechanism,
* :mod:`repro.executors` — centralised, SSH-like and Mesos-like executors,
* :mod:`repro.runtime` — the GinFlow facade tying everything together,
* :mod:`repro.bench` — drivers reproducing every figure of the evaluation.

Quickstart
----------
>>> from repro import GinFlow, diamond_workflow
>>> ginflow = GinFlow()
>>> report = ginflow.run(diamond_workflow(width=3, depth=2))
>>> report.succeeded
True
"""

from __future__ import annotations

__version__ = "1.0.0"

# The names below form the stable public facade.  Heavy subpackages are
# imported lazily on first attribute access so `import repro` stays cheap.
_FACADE = {
    "GinFlow": ("repro.runtime.ginflow", "GinFlow"),
    "GinFlowConfig": ("repro.runtime.config", "GinFlowConfig"),
    "CostModel": ("repro.runtime.costs", "CostModel"),
    "RunReport": ("repro.runtime.results", "RunReport"),
    "FailureModel": ("repro.services.faults", "FailureModel"),
    "ServiceRegistry": ("repro.services.service", "ServiceRegistry"),
    "Workflow": ("repro.workflow.dag", "Workflow"),
    "Task": ("repro.workflow.dag", "Task"),
    "AdaptationSpec": ("repro.workflow.adaptive", "AdaptationSpec"),
    "diamond_workflow": ("repro.workflow.patterns", "diamond_workflow"),
    "adaptive_diamond_workflow": ("repro.workflow.patterns", "adaptive_diamond_workflow"),
    "sequence_workflow": ("repro.workflow.patterns", "sequence_workflow"),
    "parallel_workflow": ("repro.workflow.patterns", "parallel_workflow"),
    "montage_workflow": ("repro.workflow.montage", "montage_workflow"),
    "workflow_from_json": ("repro.workflow.json_format", "workflow_from_json"),
    "workflow_to_json": ("repro.workflow.json_format", "workflow_to_json"),
}

__all__ = ["__version__", *sorted(_FACADE)]


def __getattr__(name: str):
    """Lazily resolve the public facade names listed in ``_FACADE``."""
    try:
        module_name, attribute = _FACADE[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_FACADE))
