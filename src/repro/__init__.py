"""repro — a Python reproduction of GinFlow (IPDPS 2016).

GinFlow is a decentralised adaptive workflow execution manager built on
shared-space (chemical) coordination.  This package re-implements the whole
stack described in the paper:

* :mod:`repro.hocl` — the HOCL multiset-rewriting language and interpreter,
* :mod:`repro.hoclflow` — the workflow-specific extensions (generic
  enactment rules, adaptation rules, DAG → HOCL translation),
* :mod:`repro.workflow` — the user-facing workflow model (tasks, DAGs, JSON
  format, adaptation specifications, workload generators),
* :mod:`repro.services` — service abstraction and failure injection,
* :mod:`repro.simkernel` — a deterministic discrete-event simulation kernel,
* :mod:`repro.cluster` — the simulated infrastructure (nodes, network,
  Grid'5000-like presets, a Mesos-like resource-offer master),
* :mod:`repro.messaging` — ActiveMQ-like and Kafka-like message brokers,
* :mod:`repro.agents` — service agents, the shared-space coordinator and the
  fault-recovery mechanism,
* :mod:`repro.executors` — centralised, SSH-like and Mesos-like executors,
* :mod:`repro.runtime` — the GinFlow facade, the run configuration and the
  pluggable backend registry (runtimes, executors, brokers, cluster presets
  all resolve by name through :mod:`repro.runtime.backends`),
* :mod:`repro.scenarios` — a registry of parameterized, seed-deterministic
  scientific-workflow generators (Epigenomics/CyberShake/Inspiral/SIPHT-like
  shapes plus synthetic stress families), wired into the CLI, the sweeps and
  the benchmark matrix,
* :mod:`repro.analysis` — a static analyzer for HOCL rules, workflows and
  scenarios (``ginflow lint``): registered, severity-tagged checks that
  catch enactment-time hangs before anything runs,
* :mod:`repro.experiments` — the first-class Experiment/Sweep API
  (:class:`ParameterGrid`, :class:`Experiment`, :class:`SweepReport`),
* :mod:`repro.bench` — drivers reproducing every figure of the evaluation,
  each a thin grid declaration over ``GinFlow.sweep``.

Quickstart
----------
>>> from repro import GinFlow, diamond_workflow
>>> ginflow = GinFlow()
>>> report = ginflow.run(diamond_workflow(width=3, depth=2))
>>> report.succeeded
True

Sweeps
------
>>> from repro import GinFlow, ParameterGrid, diamond_workflow
>>> grid = ParameterGrid({"nodes": [5, 10], "broker": ["activemq", "kafka"]})
>>> sweep = GinFlow().sweep(lambda: diamond_workflow(3, 3, duration=0.1), grid)
>>> len(sweep.cells())
4

Extending
---------
Register third-party backends (runtimes, executors, brokers, cluster
presets) with the ``register_*`` decorators; they become valid ``GinFlowConfig``
choices and CLI options immediately::

    from repro import register_broker
    from repro.messaging import BrokerProfile

    @register_broker("inmemory", capabilities={"persistent": True})
    def inmemory_profile(config):
        return BrokerProfile("inmemory", 0.001, 0.01, persistent=True)
"""

from __future__ import annotations

__version__ = "1.0.0"

# The names below form the stable public facade.  Heavy subpackages are
# imported lazily on first attribute access so `import repro` stays cheap.
_FACADE = {
    "GinFlow": ("repro.runtime.ginflow", "GinFlow"),
    "GinFlowConfig": ("repro.runtime.config", "GinFlowConfig"),
    "CostModel": ("repro.runtime.costs", "CostModel"),
    "RunReport": ("repro.runtime.results", "RunReport"),
    "Experiment": ("repro.experiments", "Experiment"),
    "ParameterGrid": ("repro.experiments", "ParameterGrid"),
    "SweepReport": ("repro.experiments", "SweepReport"),
    "Backend": ("repro.runtime.backends", "Backend"),
    "BackendError": ("repro.runtime.backends", "BackendError"),
    "BackendRegistry": ("repro.runtime.backends", "BackendRegistry"),
    "register_runtime": ("repro.runtime.backends", "register_runtime"),
    "register_executor": ("repro.runtime.backends", "register_executor"),
    "register_broker": ("repro.runtime.backends", "register_broker"),
    "register_cluster": ("repro.runtime.backends", "register_cluster"),
    "available_runtimes": ("repro.runtime.backends", "available_runtimes"),
    "available_executors": ("repro.runtime.backends", "available_executors"),
    "available_brokers": ("repro.runtime.backends", "available_brokers"),
    "available_clusters": ("repro.runtime.backends", "available_clusters"),
    "Scenario": ("repro.scenarios", "Scenario"),
    "register_scenario": ("repro.scenarios", "register_scenario"),
    "available_scenarios": ("repro.scenarios", "available_scenarios"),
    "get_scenario": ("repro.scenarios", "get_scenario"),
    "build_scenario": ("repro.scenarios", "build_scenario"),
    "BrokerProfile": ("repro.messaging.broker", "BrokerProfile"),
    "FailureModel": ("repro.services.faults", "FailureModel"),
    "ServiceRegistry": ("repro.services.service", "ServiceRegistry"),
    "Workflow": ("repro.workflow.dag", "Workflow"),
    "Task": ("repro.workflow.dag", "Task"),
    "AdaptationSpec": ("repro.workflow.adaptive", "AdaptationSpec"),
    "diamond_workflow": ("repro.workflow.patterns", "diamond_workflow"),
    "adaptive_diamond_workflow": ("repro.workflow.patterns", "adaptive_diamond_workflow"),
    "sequence_workflow": ("repro.workflow.patterns", "sequence_workflow"),
    "parallel_workflow": ("repro.workflow.patterns", "parallel_workflow"),
    "montage_workflow": ("repro.workflow.montage", "montage_workflow"),
    "workflow_from_json": ("repro.workflow.json_format", "workflow_from_json"),
    "workflow_to_json": ("repro.workflow.json_format", "workflow_to_json"),
    "AnalysisReport": ("repro.analysis", "AnalysisReport"),
    "Finding": ("repro.analysis", "Finding"),
    "Severity": ("repro.analysis", "Severity"),
    "register_check": ("repro.analysis", "register_check"),
    "available_checks": ("repro.analysis", "available_checks"),
    "analyze_workflow": ("repro.analysis", "analyze_workflow"),
    "analyze_scenario": ("repro.analysis", "analyze_scenario"),
    "analyze_all_scenarios": ("repro.analysis", "analyze_all_scenarios"),
}

__all__ = ["__version__", *sorted(_FACADE)]


def __getattr__(name: str):
    """Lazily resolve the public facade names listed in ``_FACADE``."""
    try:
        module_name, attribute = _FACADE[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_FACADE))
