"""Stdlib-logging wiring for the library.

Every diagnostic in library code paths goes through a logger under the
``repro`` namespace (per-agent loggers are ``repro.agents.<task>``); the
package installs a :class:`logging.NullHandler` on the root ``repro``
logger, so embedding the library stays silent until the host application —
or ``ginflow --log-level`` — configures handlers.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"

# Embedding default: no output, no "No handlers could be found" warnings.
logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``name`` may already carry it)."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: str | int) -> None:
    """Attach a stderr handler to the ``repro`` logger at ``level``.

    Called by ``ginflow --log-level``; idempotent — repeated calls adjust
    the level instead of stacking handlers.
    """
    numeric = logging.getLevelName(level.upper()) if isinstance(level, str) else level
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(numeric)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(handler, logging.NullHandler):
            handler.setLevel(numeric)
            return
    handler = logging.StreamHandler()
    handler.setLevel(numeric)
    handler.setFormatter(logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s"))
    root.addHandler(handler)
