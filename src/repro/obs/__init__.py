"""``repro.obs`` — structured tracing, metrics and logging for every run.

The observability substrate every layer instruments against:

* :class:`Tracer` and its implementations (:class:`NullTracer` — the
  zero-overhead default, :class:`RecordingTracer`, streaming
  :class:`JsonlTracer`), recording spans/events stamped with
  ``perf_counter`` wall time and, under the simulated runtime, virtual
  time;
* :class:`MetricsRegistry` — counters/gauges/histograms snapshotted into
  ``RunReport.extra["metrics"]``;
* the trace file formats (native JSONL and Chrome trace-event for
  Perfetto) and the rollups behind ``ginflow trace summarize``;
* stdlib-logging wiring (``repro.*`` logger namespace, NullHandler
  default, ``ginflow --log-level``).

An :class:`Observability` bundle (tracer + metrics) rides on
:class:`~repro.runtime.config.GinFlowConfig` and is threaded by each
runtime into the agents, the reduction engines, the brokers and the
executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .export import (
    from_chrome,
    read_jsonl,
    read_trace,
    to_chrome,
    write_chrome,
    write_jsonl,
    write_trace,
)
from .logs import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .summarize import format_summary, summarize
from .tracer import (
    EventRecord,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    SpanRecord,
    Tracer,
    active,
    record_from_json,
)

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "SpanRecord",
    "EventRecord",
    "record_from_json",
    "active",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "read_trace",
    "read_jsonl",
    "write_trace",
    "write_jsonl",
    "write_chrome",
    "to_chrome",
    "from_chrome",
    "summarize",
    "format_summary",
    "get_logger",
    "configure_logging",
]


@dataclass
class Observability:
    """The per-run observability bundle: one tracer, one metrics registry.

    ``Observability()`` is fully enabled (a recording tracer would still
    need to be supplied); the *absence* of a bundle — ``config.obs is
    None``, the default — is the zero-overhead off state.
    """

    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = field(default_factory=MetricsRegistry)

    def active_tracer(self) -> Tracer | None:
        """The tracer normalised for hot-seam guards (see :func:`active`)."""
        return active(self.tracer)
