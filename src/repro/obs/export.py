"""Trace file formats: JSONL (native) and Chrome trace-event (Perfetto).

The native format is one JSON object per line (the streaming
:class:`~repro.obs.tracer.JsonlTracer` output).  The Chrome format is the
``traceEvents`` JSON consumed by Perfetto / ``chrome://tracing``: every
track becomes one thread (``tid``) named through a ``thread_name`` metadata
event, spans are complete events (``ph: "X"``) and instants are ``ph: "i"``.
Timestamps convert seconds → microseconds (kept as floats, so a round-trip
through both formats preserves them to float precision).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .tracer import EventRecord, SpanRecord, record_from_json

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "from_chrome",
    "write_chrome",
    "read_trace",
    "write_trace",
]

TraceRecord = SpanRecord | EventRecord

_CATEGORY = "repro"
_PID = 0


def write_jsonl(records: Iterable[TraceRecord], path: str) -> None:
    """Write ``records`` as native JSONL (one record object per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_json(), default=str) + "\n")


def read_jsonl(path: str) -> list[TraceRecord]:
    """Read a native JSONL trace file."""
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_json(json.loads(line)))
    return records


def _track_ids(records: Iterable[TraceRecord]) -> dict[str, int]:
    """One ``tid`` per track, in order of first appearance (1-based)."""
    tids: dict[str, int] = {}
    for record in records:
        if record.track not in tids:
            tids[record.track] = len(tids) + 1
    return tids


def to_chrome(records: list[TraceRecord]) -> dict[str, Any]:
    """Convert records to a Chrome trace-event object (Perfetto-loadable)."""
    tids = _track_ids(records)
    events: list[dict[str, Any]] = []
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for record in records:
        args = dict(record.attrs)
        if record.vt is not None:
            args["vt"] = record.vt
        if isinstance(record, SpanRecord):
            events.append(
                {
                    "ph": "X",
                    "name": record.name,
                    "cat": _CATEGORY,
                    "pid": _PID,
                    "tid": tids[record.track],
                    "ts": record.start * 1e6,
                    "dur": (record.end - record.start) * 1e6,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "name": record.name,
                    "cat": _CATEGORY,
                    "pid": _PID,
                    "tid": tids[record.track],
                    "ts": record.time * 1e6,
                    "s": "t",
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome(payload: dict[str, Any]) -> list[TraceRecord]:
    """Rebuild records from a Chrome trace-event object."""
    trace_events = payload.get("traceEvents", [])
    tracks: dict[int, str] = {}
    for event in trace_events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[int(event.get("tid", 0))] = str(event.get("args", {}).get("name", ""))
    records: list[TraceRecord] = []
    for event in trace_events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        tid = int(event.get("tid", 0))
        track = tracks.get(tid, f"track-{tid}")
        args = dict(event.get("args", {}))
        vt = args.pop("vt", None)
        if phase == "X":
            start = float(event["ts"]) / 1e6
            records.append(
                SpanRecord(
                    name=str(event.get("name", "")),
                    track=track,
                    start=start,
                    end=start + float(event.get("dur", 0.0)) / 1e6,
                    vt=vt,
                    attrs=args,
                )
            )
        else:
            records.append(
                EventRecord(
                    name=str(event.get("name", "")),
                    track=track,
                    time=float(event["ts"]) / 1e6,
                    vt=vt,
                    attrs=args,
                )
            )
    return records


def write_chrome(records: list[TraceRecord], path: str) -> None:
    """Write ``records`` as a Chrome trace-event JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(records), handle, default=str)


def read_trace(path: str) -> list[TraceRecord]:
    """Read a trace file, auto-detecting the format.

    A file whose whole body parses as one JSON object with ``traceEvents``
    is a Chrome trace; anything else is treated as native JSONL.
    """
    with open(path, "r", encoding="utf-8") as handle:
        body = handle.read()
    stripped = body.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(body)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return from_chrome(payload)
        if isinstance(payload, dict) and "type" in payload:
            # a single-record JSONL file also parses as one object
            return [record_from_json(payload)]
    records: list[TraceRecord] = []
    for line in body.splitlines():
        line = line.strip()
        if line:
            records.append(record_from_json(json.loads(line)))
    return records


def write_trace(records: list[TraceRecord], path: str, fmt: str = "jsonl") -> None:
    """Write ``records`` in the requested format (``jsonl`` or ``chrome``)."""
    if fmt == "jsonl":
        write_jsonl(records, path)
    elif fmt == "chrome":
        write_chrome(records, path)
    else:
        raise ValueError(f"unknown trace format {fmt!r} (expected 'jsonl' or 'chrome')")
