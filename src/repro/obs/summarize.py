"""Trace rollups: per-agent, per-rule and per-phase summaries.

This is what ``ginflow trace summarize`` prints.  The reduction-phase
totals sum the very ``perf_counter`` windows the engine accumulated into
:attr:`~repro.hocl.engine.ReductionReport.timings` (match/rewrite/patch
span durations plus the ``index_seconds`` attribute the rewrite/patch spans
carry), so they reconcile with ``RunReport.extra["reduction_timings"]`` to
float-summation precision.  Self-time subtracts the durations of a span's
direct children (same-track timestamp containment) — the nesting the Chrome
export renders.
"""

from __future__ import annotations

from typing import Any

from .tracer import EventRecord, SpanRecord

__all__ = ["summarize", "format_summary"]

#: span-name → timing phase of the reduction engine's accounting
_PHASE_SPANS = {
    "reduction.match": "match",
    "reduction.rewrite": "rewrite",
    "reduction.patch": "patch",
}
_PHASES = ("match", "rewrite", "patch", "index")


def _self_times(spans: list[SpanRecord]) -> dict[int, float]:
    """Self-time (duration minus direct children) per span, by index.

    Spans are grouped per track; within a track, containment by timestamps
    defines the nesting (outer spans start no later and end no earlier).
    """
    self_times = {index: span.end - span.start for index, span in enumerate(spans)}
    by_track: dict[str, list[int]] = {}
    for index, span in enumerate(spans):
        by_track.setdefault(span.track, []).append(index)
    for indices in by_track.values():
        ordered = sorted(indices, key=lambda i: (spans[i].start, -spans[i].end))
        stack: list[int] = []
        for index in ordered:
            span = spans[index]
            while stack and spans[stack[-1]].end <= span.start:
                stack.pop()
            if stack and span.end <= spans[stack[-1]].end:
                self_times[stack[-1]] -= span.end - span.start
            stack.append(index)
    return self_times


def summarize(records: list[SpanRecord | EventRecord], top: int = 10) -> dict[str, Any]:
    """Roll a record list up into the summary dictionary."""
    spans = [record for record in records if isinstance(record, SpanRecord)]
    events = [record for record in records if isinstance(record, EventRecord)]
    self_times = _self_times(spans)

    phases = {phase: 0.0 for phase in _PHASES}
    per_track: dict[str, dict[str, Any]] = {}
    per_rule: dict[str, dict[str, Any]] = {}
    for index, span in enumerate(spans):
        phase = _PHASE_SPANS.get(span.name)
        if phase is not None:
            phases[phase] += span.end - span.start
            index_seconds = span.attrs.get("index_seconds")
            if index_seconds is not None:
                phases["index"] += float(index_seconds)
        row = per_track.setdefault(span.track, {"spans": 0, "events": 0, "busy_seconds": 0.0})
        row["spans"] += 1
        row["busy_seconds"] += self_times[index]
        rule = span.attrs.get("rule")
        if rule is not None:
            rule_row = per_rule.setdefault(str(rule), {"fires": 0, "seconds": 0.0})
            rule_row["fires"] += 1
            rule_row["seconds"] += span.end - span.start
    for event in events:
        row = per_track.setdefault(event.track, {"spans": 0, "events": 0, "busy_seconds": 0.0})
        row["events"] += 1

    ranked = sorted(range(len(spans)), key=lambda i: -self_times[i])[: max(0, top)]
    top_spans = [
        {
            "name": spans[i].name,
            "track": spans[i].track,
            "self_seconds": self_times[i],
            "duration": spans[i].end - spans[i].start,
        }
        for i in ranked
    ]

    window: dict[str, float] = {}
    if spans or events:
        starts = [span.start for span in spans] + [event.time for event in events]
        ends = [span.end for span in spans] + [event.time for event in events]
        window = {"start": min(starts), "end": max(ends)}
    return {
        "spans": len(spans),
        "events": len(events),
        "tracks": len(per_track),
        "window": window,
        "phases": phases,
        "per_track": {track: per_track[track] for track in sorted(per_track)},
        "per_rule": {rule: per_rule[rule] for rule in sorted(per_rule)},
        "top_spans": top_spans,
    }


def format_summary(summary: dict[str, Any]) -> str:
    """Render :func:`summarize` output as the stable text report."""
    lines = [
        f"trace summary: {summary['spans']} spans, {summary['events']} events, "
        f"{summary['tracks']} tracks"
    ]
    window = summary.get("window") or {}
    if window:
        lines.append(f"window: {window['end'] - window['start']:.6f}s")
    lines.append("")
    lines.append("reduction phase seconds:")
    for phase in _PHASES:
        lines.append(f"  {phase:<8} {summary['phases'][phase]:.6f}")
    per_track = summary["per_track"]
    if per_track:
        lines.append("")
        lines.append("per-agent rollup:")
        lines.append(f"  {'track':<24} {'spans':>6} {'events':>7} {'busy_s':>10}")
        for track, row in per_track.items():
            lines.append(
                f"  {track:<24} {row['spans']:>6} {row['events']:>7} {row['busy_seconds']:>10.6f}"
            )
    per_rule = summary["per_rule"]
    if per_rule:
        lines.append("")
        lines.append("per-rule rollup:")
        lines.append(f"  {'rule':<24} {'fires':>6} {'seconds':>10}")
        for rule, row in per_rule.items():
            lines.append(f"  {rule:<24} {row['fires']:>6} {row['seconds']:>10.6f}")
    top_spans = summary["top_spans"]
    if top_spans:
        lines.append("")
        lines.append(f"top {len(top_spans)} spans by self-time:")
        for rank, row in enumerate(top_spans, start=1):
            lines.append(
                f"  {rank}. {row['name']}  track={row['track']}  "
                f"self={row['self_seconds']:.6f}s  dur={row['duration']:.6f}s"
            )
    return "\n".join(lines)
