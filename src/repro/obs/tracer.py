"""The tracer seam: spans and events, recorded with zero overhead when off.

A *span* is one timed unit of work (a reduction phase, an agent stimulus, a
service invocation) on a named *track* (one track per agent, plus tracks for
the broker and the executors).  An *event* is an instantaneous point (a
broker publish, a STATUS update).  Both carry wall-clock timestamps from
``time.perf_counter()`` — the same clock the reduction engine's
:attr:`~repro.hocl.engine.ReductionReport.timings` accumulate, so span
totals reconcile with the report to float precision — and, when the hosting
runtime runs under virtual time, a ``vt`` stamp read from its
:class:`~repro.runtime.enactment.clock.VirtualClock`.

The zero-overhead contract: every instrumented seam stores ``None`` (not a
:class:`NullTracer`) when tracing is off and guards each record with a
single ``if trace is not None`` — :func:`active` performs that
normalisation.  Traced and untraced runs are identical in everything but
the trace: instrumentation only *reads* values the engine already computed
(timing windows, counters), never adds reduction work, so ``content_hash``,
``rule_fires`` and the simulated timeline are unchanged by construction.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, TextIO

__all__ = [
    "SpanRecord",
    "EventRecord",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "active",
]


@dataclass
class SpanRecord:
    """One completed span: ``[start, end]`` seconds on ``track``."""

    name: str
    track: str
    start: float
    end: float
    vt: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
        }
        if self.vt is not None:
            payload["vt"] = self.vt
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


@dataclass
class EventRecord:
    """One instantaneous event at ``time`` seconds on ``track``."""

    name: str
    track: str
    time: float
    vt: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "type": "event",
            "name": self.name,
            "track": self.track,
            "time": self.time,
        }
        if self.vt is not None:
            payload["vt"] = self.vt
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


def record_from_json(payload: dict[str, Any]) -> SpanRecord | EventRecord:
    """Rebuild a record from its :meth:`to_json` form."""
    kind = payload.get("type")
    if kind == "span":
        return SpanRecord(
            name=payload["name"],
            track=payload["track"],
            start=float(payload["start"]),
            end=float(payload["end"]),
            vt=payload.get("vt"),
            attrs=dict(payload.get("attrs", {})),
        )
    if kind == "event":
        return EventRecord(
            name=payload["name"],
            track=payload["track"],
            time=float(payload["time"]),
            vt=payload.get("vt"),
            attrs=dict(payload.get("attrs", {})),
        )
    raise ValueError(f"not a trace record: {payload!r}")


class Tracer:
    """Base tracer: complete-span recording with optional virtual-time stamps.

    Instrumentation calls :meth:`span` / :meth:`event` with explicit
    ``perf_counter`` timestamps (no context managers in hot loops);
    subclasses implement :meth:`record_span` / :meth:`record_event`.
    ``vt_source`` is set by virtual-time runtimes to their simulator clock;
    when set, every record is additionally stamped with the virtual time at
    recording (reductions run at one virtual instant, so one stamp per
    record is exact).
    """

    #: ``False`` makes :func:`active` normalise the tracer away entirely.
    enabled: bool = True

    def __init__(self) -> None:
        self.vt_source: Callable[[], float] | None = None

    # ------------------------------------------------------------ recording
    def span(self, name: str, track: str, start: float, end: float, **attrs: Any) -> None:
        """Record one completed span (timestamps from ``perf_counter``)."""
        vt = self.vt_source() if self.vt_source is not None else None
        self.record_span(SpanRecord(name=name, track=track, start=start, end=end, vt=vt, attrs=attrs))

    def event(self, name: str, track: str, time: float | None = None, **attrs: Any) -> None:
        """Record one instantaneous event (``time`` defaults to now)."""
        vt = self.vt_source() if self.vt_source is not None else None
        moment = time if time is not None else perf_counter()
        self.record_event(EventRecord(name=name, track=track, time=moment, vt=vt, attrs=attrs))

    # ---------------------------------------------------------------- sinks
    def record_span(self, record: SpanRecord) -> None:
        raise NotImplementedError

    def record_event(self, record: EventRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying sink (idempotent)."""


class NullTracer(Tracer):
    """The default tracer: records nothing.

    :func:`active` maps it to ``None`` so instrumented code never even calls
    it — keeping the traced-off hot path to a single ``is not None`` check.
    """

    enabled = False

    def record_span(self, record: SpanRecord) -> None:  # pragma: no cover - normalised away
        pass

    def record_event(self, record: EventRecord) -> None:  # pragma: no cover - normalised away
        pass


class RecordingTracer(Tracer):
    """Collects every record in memory (thread-safe); used by the audit
    drivers, the Chrome exporter and the tests."""

    def __init__(self) -> None:
        super().__init__()
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self._lock = threading.Lock()

    def record_span(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def record_event(self, record: EventRecord) -> None:
        with self._lock:
            self.events.append(record)

    def records(self) -> list[SpanRecord | EventRecord]:
        """All records, spans first (recording order within each kind)."""
        with self._lock:
            return [*self.spans, *self.events]

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        state["vt_source"] = None  # bound to the originating run's simulator
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class JsonlTracer(Tracer):
    """Streams records to a JSONL file, one record object per line.

    The file handle opens lazily on the first record (append mode), so the
    tracer survives pickling into process-pool sweeps: ``__getstate__``
    drops the handle and the worker re-opens it on first use.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        self._handle: TextIO | None = None
        self._lock = threading.Lock()

    def _write(self, payload: dict[str, Any]) -> None:
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(payload, default=str) + "\n")

    def record_span(self, record: SpanRecord) -> None:
        self._write(record.to_json())

    def record_event(self, record: EventRecord) -> None:
        self._write(record.to_json())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        state["_handle"] = None
        state["vt_source"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def active(tracer: Tracer | None) -> Tracer | None:
    """Normalise a tracer for the hot seams: ``None`` unless it records.

    Every instrumented layer stores ``active(tracer)`` and guards with
    ``if trace is not None`` — a disabled tracer (or :class:`NullTracer`)
    therefore costs exactly one pointer comparison per would-be record.
    """
    if tracer is None or not tracer.enabled:
        return None
    return tracer
