"""A small metrics registry: counters, gauges and histograms.

The registry is a per-run bundle (one instance per
:class:`~repro.obs.Observability`): the runtimes and brokers increment it at
their hot seams and the report assembly snapshots it into
``RunReport.extra["metrics"]``.  Thread-safe (the threaded runtime and
parallel reducers hit it concurrently) and picklable (process-pool sweeps
ship the whole configuration to workers).
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": (self.total / self.count) if self.count else 0.0,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe snapshot of every instrument, sorted by name."""
        with self._lock:
            return {
                "counters": {name: self._counters[name].value for name in sorted(self._counters)},
                "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
                "histograms": {
                    name: self._histograms[name].summary() for name in sorted(self._histograms)
                },
            }

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
