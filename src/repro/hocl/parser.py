"""An ASCII parser for HOCL / HOCLflow programs.

The paper prints programs with mathematical typography (``〈 … 〉``, ω, primes);
this parser accepts an ASCII rendering of the same language so that programs
like the getMax example or the workflow of Fig. 8 can be written as text:

.. code-block:: text

    let max = replace x, y by x if x >= y in
    let clean = replace-one <max, ?w> by ?w in
    < <2, 3, 5, 8, 9, max>, clean >

Syntax conventions
------------------
* Solutions are written ``< ... >``; lists are written ``[ ... ]``.
* Tuples are colon-separated: ``SRC : <T1>``, ``MVSRC : T4 : T2 : T2p``.
* Identifiers starting with an **uppercase** letter are symbol literals
  (``SRC``, ``ERROR``, ``T1``); identifiers starting with a lowercase letter
  are **pattern variables** inside rule left-hand sides and variable
  references inside products — unless they name a previously ``let``-defined
  rule, in which case they denote that rule (higher order).
* ``?name`` is an omega (rest) variable, the ω of the paper.
* ``fn(arg, ...)`` in a product calls the external function ``fn``.
* Rule definitions: ``let NAME = replace LHS by RHS [if COND] in BODY``,
  ``replace-one`` for one-shot rules and ``with LHS inject RHS`` for the
  HOCLflow sugar.
* Conditions are comparisons between two operands (variables or literals)
  with ``<= >= < > == !=``.
* ``#`` starts a comment running to the end of the line.

The parser returns a :class:`Program` exposing the top-level solution (a
:class:`~repro.hocl.multiset.Multiset`) and the dictionary of named rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from .atoms import Atom, FloatAtom, IntAtom, ListAtom, StringAtom, Subsolution, Symbol, TupleAtom
from .errors import ParseError
from .multiset import Multiset
from .patterns import Literal, Omega, Pattern, RulePattern, SolutionPattern, SymbolPattern, TuplePattern, Var
from .rules import BindingView, Rule
from .templates import Call, ListTemplate, Ref, SolutionTemplate, Splice, Template, TupleTemplate

__all__ = ["Program", "parse_program", "parse_solution"]

_KEYWORDS = {"let", "replace", "replace-one", "by", "if", "in", "with", "inject"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op><=|>=|==|!=|[<>\[\](),:=?])
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {source[position]!r}", line, column)
        kind = match.lastgroup or ""
        text = match.group(0)
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, match.start() - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        position = match.end()
    # merge `replace` `-`? the tokenizer has no '-' token; handle replace-one
    merged: list[_Token] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        merged.append(token)
        index += 1
    return merged


def _merge_replace_one(source: str) -> str:
    """Rewrite ``replace-one`` into a single token the tokenizer can read."""
    return source.replace("replace-one", "replace_one__")


@dataclass
class Program:
    """A parsed HOCL program: the top-level solution plus its named rules."""

    solution: Multiset
    rules: dict[str, Rule] = field(default_factory=dict)


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.position = 0
        self.rules: dict[str, Rule] = {}

    # ------------------------------------------------------------- utilities
    def _peek(self) -> _Token | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else None
            raise ParseError("unexpected end of input", last.line if last else None)
        self.position += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, got {token.text!r}", token.line, token.column)
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    def _at_name(self, name: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "name" and token.text == name

    # --------------------------------------------------------------- program
    def parse_program(self) -> Program:
        solution_atom = self._parse_body()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(f"trailing input starting at {token.text!r}", token.line, token.column)  # type: ignore[union-attr]
        if isinstance(solution_atom, Subsolution):
            return Program(solution=solution_atom.solution, rules=dict(self.rules))
        raise ParseError("a program must end with a top-level solution '< ... >'")

    def _parse_body(self) -> Atom:
        """Parse ``let``-definitions followed by a solution (or value)."""
        if self._at_name("let"):
            self._next()
            name_token = self._next()
            if name_token.kind != "name":
                raise ParseError("expected a rule name after 'let'", name_token.line, name_token.column)
            self._expect("=")
            rule = self._parse_rule_definition(name_token.text)
            self.rules[rule.name] = rule
            if not self._at_name("in"):
                token = self._peek()
                raise ParseError(
                    "expected 'in' after rule definition",
                    token.line if token else None,
                    token.column if token else None,
                )
            self._next()
            return self._parse_body()
        return self._parse_value()

    # ----------------------------------------------------------------- rules
    def _parse_rule_definition(self, name: str) -> Rule:
        token = self._next()
        if token.kind != "name" or token.text not in ("replace", "replace_one__", "with"):
            raise ParseError(
                f"expected 'replace', 'replace-one' or 'with', got {token.text!r}",
                token.line,
                token.column,
            )
        style = token.text
        patterns = self._parse_pattern_list()
        if style == "with":
            self._expect_name("inject")
            products = self._parse_product_list()
            return Rule.with_inject(name, patterns, products)
        self._expect_name("by")
        products = self._parse_product_list()
        condition = None
        if self._at_name("if"):
            self._next()
            condition = self._parse_condition()
        return Rule(name, patterns, products, condition=condition, one_shot=(style == "replace_one__"))

    def _expect_name(self, name: str) -> None:
        token = self._next()
        if token.kind != "name" or token.text != name:
            raise ParseError(f"expected {name!r}, got {token.text!r}", token.line, token.column)

    def _parse_pattern_list(self) -> list[Pattern]:
        patterns = [self._parse_pattern()]
        while self._at(","):
            self._next()
            patterns.append(self._parse_pattern())
        return patterns

    def _parse_product_list(self) -> list[Any]:
        products = [self._parse_product()]
        while self._at(","):
            self._next()
            products.append(self._parse_product())
        return products

    # -------------------------------------------------------------- patterns
    def _parse_pattern(self) -> Pattern:
        primary = self._parse_pattern_primary()
        if self._at(":"):
            elements = [primary]
            while self._at(":"):
                self._next()
                elements.append(self._parse_pattern_primary())
            return TuplePattern(*elements)
        return primary

    def _parse_pattern_primary(self) -> Pattern:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in pattern")
        if token.text == "?":
            self._next()
            name_token = self._next()
            if name_token.kind != "name":
                raise ParseError("expected a name after '?'", name_token.line, name_token.column)
            return Omega(name_token.text)
        if token.text == "<":
            return self._parse_solution_pattern()
        if token.kind == "number":
            self._next()
            return Literal(_number_atom(token.text))
        if token.kind == "string":
            self._next()
            return Literal(StringAtom(_unquote(token.text)))
        if token.kind == "name":
            self._next()
            name = token.text
            if name in self.rules:
                return RulePattern(name=name)
            if name[0].isupper():
                return SymbolPattern(name)
            return Var(name)
        raise ParseError(f"unexpected token {token.text!r} in pattern", token.line, token.column)

    def _parse_solution_pattern(self) -> SolutionPattern:
        self._expect("<")
        elements: list[Any] = []
        if not self._at(">"):
            elements.append(self._parse_pattern())
            while self._at(","):
                self._next()
                elements.append(self._parse_pattern())
        self._expect(">")
        return SolutionPattern(*elements)

    # -------------------------------------------------------------- products
    def _parse_product(self) -> Any:
        primary = self._parse_product_primary()
        if self._at(":"):
            elements = [primary]
            while self._at(":"):
                self._next()
                elements.append(self._parse_product_primary())
            return TupleTemplate(*elements)
        return primary

    def _parse_product_primary(self) -> Any:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in product")
        if token.text == "?":
            self._next()
            name_token = self._next()
            if name_token.kind != "name":
                raise ParseError("expected a name after '?'", name_token.line, name_token.column)
            return Splice(name_token.text)
        if token.text == "<":
            self._next()
            elements: list[Any] = []
            if not self._at(">"):
                elements.append(self._parse_product())
                while self._at(","):
                    self._next()
                    elements.append(self._parse_product())
            self._expect(">")
            return SolutionTemplate(*elements)
        if token.text == "[":
            self._next()
            items: list[Any] = []
            if not self._at("]"):
                items.append(self._parse_product())
                while self._at(","):
                    self._next()
                    items.append(self._parse_product())
            self._expect("]")
            return ListTemplate(*items)
        if token.kind == "number":
            self._next()
            return _number_atom(token.text)
        if token.kind == "string":
            self._next()
            return StringAtom(_unquote(token.text))
        if token.kind == "name":
            self._next()
            name = token.text
            if self._at("("):
                self._next()
                arguments: list[Any] = []
                if not self._at(")"):
                    arguments.append(self._parse_product())
                    while self._at(","):
                        self._next()
                        arguments.append(self._parse_product())
                self._expect(")")
                return Call(name, *arguments)
            if name in self.rules:
                return self.rules[name]
            if name[0].isupper():
                return Symbol(name)
            return Ref(name)
        raise ParseError(f"unexpected token {token.text!r} in product", token.line, token.column)

    # ------------------------------------------------------------- condition
    def _parse_condition(self) -> Callable[..., bool]:
        left = self._parse_condition_operand()
        op_token = self._next()
        if op_token.text not in ("<=", ">=", "<", ">", "==", "!="):
            raise ParseError(f"expected a comparison operator, got {op_token.text!r}", op_token.line, op_token.column)
        right = self._parse_condition_operand()
        operator = op_token.text

        def evaluate(operand: Any, view: BindingView) -> Any:
            kind, value = operand
            if kind == "var":
                return view.value(value)
            return value

        def condition(view: BindingView, _l: Any = left, _r: Any = right, _op: str = operator) -> bool:
            lhs = evaluate(_l, view)
            rhs = evaluate(_r, view)
            if _op == "<=":
                return lhs <= rhs
            if _op == ">=":
                return lhs >= rhs
            if _op == "<":
                return lhs < rhs
            if _op == ">":
                return lhs > rhs
            if _op == "==":
                return lhs == rhs
            return lhs != rhs

        return condition

    def _parse_condition_operand(self) -> Any:
        """Returns a tagged operand: ("var", name) or ("lit", python value)."""
        token = self._next()
        if token.kind == "number":
            return ("lit", _number_atom(token.text).value)
        if token.kind == "string":
            return ("lit", _unquote(token.text))
        if token.kind == "name":
            if token.text[0].isupper():
                # symbols unwrap to their name when compared in conditions
                return ("lit", token.text)
            return ("var", token.text)
        raise ParseError(f"unexpected token {token.text!r} in condition", token.line, token.column)

    # ----------------------------------------------------------------- values
    def _parse_value(self) -> Atom:
        primary = self._parse_value_primary()
        if self._at(":"):
            elements = [primary]
            while self._at(":"):
                self._next()
                elements.append(self._parse_value_primary())
            return TupleAtom(elements)
        return primary

    def _parse_value_primary(self) -> Atom:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in value")
        if token.text == "<":
            self._next()
            contents: list[Atom] = []
            if not self._at(">"):
                contents.append(self._parse_body_element())
                while self._at(","):
                    self._next()
                    contents.append(self._parse_body_element())
            self._expect(">")
            return Subsolution(contents)
        if token.text == "[":
            self._next()
            items: list[Atom] = []
            if not self._at("]"):
                items.append(self._parse_value())
                while self._at(","):
                    self._next()
                    items.append(self._parse_value())
            self._expect("]")
            return ListAtom(items)
        if token.kind == "number":
            self._next()
            return _number_atom(token.text)
        if token.kind == "string":
            self._next()
            return StringAtom(_unquote(token.text))
        if token.kind == "name":
            self._next()
            name = token.text
            if name in self.rules:
                return self.rules[name]
            return Symbol(name)
        raise ParseError(f"unexpected token {token.text!r} in value", token.line, token.column)

    def _parse_body_element(self) -> Atom:
        # solution elements may themselves start with let-definitions? No —
        # definitions only appear at program top level; elements are values.
        return self._parse_value()


def _number_atom(text: str) -> Atom:
    if "." in text:
        return FloatAtom(float(text))
    return IntAtom(int(text))


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_program(source: str) -> Program:
    """Parse a full HOCL program (``let`` definitions plus a top-level solution)."""
    tokens = _tokenize(_merge_replace_one(source))
    return _Parser(tokens).parse_program()


def parse_solution(source: str) -> Multiset:
    """Parse a standalone solution literal such as ``<1, 2, A : <B>>``."""
    program = parse_program(source)
    return program.solution
