"""Atom (molecule) model of the HOCL chemical programming language.

HOCL programs rewrite a *multiset* of *atoms*.  An atom is either

* a **scalar** — integer, float, boolean or string (:class:`IntAtom`,
  :class:`FloatAtom`, :class:`BoolAtom`, :class:`StringAtom`),
* a **symbol** — an interned bare identifier such as ``ADAPT`` or ``ERROR``
  (:class:`Symbol`),
* a **tuple** — an ordered sequence written ``A1 : A2 : ... : An`` in the
  paper (:class:`TupleAtom`), commonly used with a keyword head such as
  ``SRC : <T2, T3>``,
* a **sub-solution** — a multiset nested inside the multiset, written
  ``<A1, A2, ..., An>`` (:class:`Subsolution`),
* a **list** — the ordered container added by HOCLflow (:class:`ListAtom`),
* a **rule** — rules are first-class atoms (higher order); the rule class
  itself lives in :mod:`repro.hocl.rules` and registers as an atom by
  inheriting from :class:`Atom`.

The helper :func:`to_atom` coerces plain Python values (``int``, ``str``,
``list``, ...) into atoms so that user code rarely needs to build atom
objects explicitly.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from .errors import AtomError

__all__ = [
    "Atom",
    "ScalarAtom",
    "IntAtom",
    "FloatAtom",
    "BoolAtom",
    "StringAtom",
    "Symbol",
    "TupleAtom",
    "ListAtom",
    "Subsolution",
    "to_atom",
    "atoms_equal",
]


class Atom:
    """Abstract base class of every HOCL molecule element.

    Atoms are *value objects*: equality and hashing are structural, and the
    public API never mutates an existing atom (sub-solutions are the single
    exception — they wrap a mutable :class:`~repro.hocl.multiset.Multiset`
    because the reduction engine rewrites them in place).
    """

    __slots__ = ()

    #: Subclasses override with a short lowercase tag used by pattern type
    #: constraints (``x::int``) and by diagnostics.
    kind: str = "atom"

    #: Whether the atom's structure can change after construction.  Only
    #: sub-solutions (and containers transitively holding one) are mutable;
    #: containers of immutable atoms may cache their structural hash.
    _mutable: bool = False

    #: Cached multiset index keys (see
    #: :func:`repro.hocl.multiset.atom_index_keys`).  ``None`` means "not
    #: computed yet"; classes whose keys are per-instance carry a slot,
    #: classes whose keys are constant get a class-level tuple.
    _index_keys: Any = None

    def is_structured(self) -> bool:
        """Return ``True`` for tuples, lists and sub-solutions."""
        return False

    def copy(self) -> "Atom":
        """Return a deep copy of the atom (scalars return themselves)."""
        return self


class ScalarAtom(Atom):
    """Common base for atoms wrapping a single immutable Python value."""

    __slots__ = ("value", "_hash")
    kind = "scalar"

    def __init__(self, value: Any):
        self.value = value
        self._hash = hash((type(self).__name__, value))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.value == other.value  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class IntAtom(ScalarAtom):
    """An integer atom, e.g. the values reduced by the ``getMax`` example."""

    __slots__ = ()
    kind = "int"

    def __init__(self, value: int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise AtomError(f"IntAtom requires an int, got {value!r}")
        super().__init__(int(value))


class FloatAtom(ScalarAtom):
    """A floating-point atom."""

    __slots__ = ()
    kind = "float"

    def __init__(self, value: float):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise AtomError(f"FloatAtom requires a number, got {value!r}")
        super().__init__(float(value))


class BoolAtom(ScalarAtom):
    """A boolean atom."""

    __slots__ = ()
    kind = "bool"

    def __init__(self, value: bool):
        if not isinstance(value, bool):
            raise AtomError(f"BoolAtom requires a bool, got {value!r}")
        super().__init__(value)


class StringAtom(ScalarAtom):
    """A string atom (quoted text in the concrete syntax)."""

    __slots__ = ()
    kind = "string"

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise AtomError(f"StringAtom requires a str, got {value!r}")
        super().__init__(value)


class Symbol(Atom):
    """A bare identifier atom such as ``ADAPT``, ``ERROR`` or a task name.

    Symbols with the same name compare equal.  HOCLflow reserved keywords
    (``SRC``, ``DST``, ``SRV``, ``IN``, ``PAR``, ``RES``, ...) are plain
    symbols; :mod:`repro.hoclflow.keywords` exposes them as constants.

    Symbols are *interned*: constructing the same name repeatedly returns the
    same object (up to a bounded table size), so the extremely frequent
    symbol-equality checks of the matcher short-circuit on identity.
    """

    __slots__ = ("name", "_hash", "_index_keys")
    kind = "symbol"

    #: Interning table; bounded so pathological name churn cannot leak.
    _interned: dict[str, "Symbol"] = {}
    _INTERN_LIMIT = 65536

    def __new__(cls, name: str) -> "Symbol":
        if cls is Symbol and isinstance(name, str):
            cached = Symbol._interned.get(name)
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __init__(self, name: str):
        if isinstance(name, str) and getattr(self, "name", None) == name:
            return  # an interned instance handed back by __new__: already set up
        if not isinstance(name, str) or not name:
            raise AtomError(f"Symbol requires a non-empty string name, got {name!r}")
        self.name = name
        self._hash = hash(("Symbol", name))
        self._index_keys = None
        if type(self) is Symbol and len(Symbol._interned) < Symbol._INTERN_LIMIT:
            Symbol._interned.setdefault(name, self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Symbol) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        # Interning makes the default slots pickling unusable (`__new__`
        # requires the name); reconstructing through the constructor both
        # pickles cleanly and re-interns on load — needed by the opt-in
        # process-pool reduction path (`repro.hocl.parallel`).
        return (type(self), (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name


def _nested_solutions_in(items: Sequence["Atom"]) -> tuple:
    """All solutions transitively nested in ``items`` (for version stamps)."""
    solutions: list = []
    for element in items:
        if isinstance(element, Subsolution):
            solutions.append(element.solution)
        elif element._mutable:
            solutions.extend(element._nested_sols)  # type: ignore[attr-defined]
    return tuple(solutions)


class TupleAtom(Atom):
    """An ordered tuple of atoms, written ``A1 : A2 : ... : An``.

    Tuples are the workhorse of the HOCLflow encoding: ``SRC : <T1>``,
    ``T2 : <...>``, ``MVSRC : T4 : T2 : T2p`` are all tuples.  The first
    element is conventionally called the *head*; :meth:`head_symbol` returns
    its name when it is a :class:`Symbol`, which the workflow rules use to
    address fields of a task sub-solution.
    """

    __slots__ = ("elements", "_hash", "_mutable", "_index_keys", "_nested_sols", "_reject_memo")
    kind = "tuple"

    def __init__(self, elements: Sequence[Any]):
        items = tuple(to_atom(e) for e in elements)
        if len(items) < 1:
            raise AtomError("TupleAtom requires at least one element")
        self.elements = items
        self._hash = None
        self._mutable = any(e._mutable for e in items)
        self._index_keys = None
        self._nested_sols = _nested_solutions_in(items) if self._mutable else ()
        #: pattern -> structure version at which the pattern proved this
        #: tuple unmatchable (see TuplePattern.quick_reject); lazily created
        self._reject_memo: dict | None = None

    def structure_version(self) -> int:
        """Monotonic stamp of the tuple's mutable state.

        The elements themselves never change; only nested solutions can.
        Solution versions only ever grow (and every deep mutation bumps its
        enclosing solutions), so an unchanged sum proves the whole structure
        is unchanged.  Immutable tuples always return 0.
        """
        total = 0
        for solution in self._nested_sols:
            total += solution.version
        return total

    # -- structure ---------------------------------------------------------
    def is_structured(self) -> bool:
        return True

    @property
    def head(self) -> Atom:
        """The first element of the tuple."""
        return self.elements[0]

    def head_symbol(self) -> str | None:
        """Return the head's name when the head is a :class:`Symbol`."""
        head = self.elements[0]
        return head.name if isinstance(head, Symbol) else None

    @property
    def rest(self) -> tuple[Atom, ...]:
        """All elements after the head."""
        return self.elements[1:]

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.elements)

    def __getitem__(self, index: int) -> Atom:
        return self.elements[index]

    def copy(self) -> "TupleAtom":
        return TupleAtom([e.copy() for e in self.elements])

    # -- equality ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, TupleAtom):
            return False
        if (
            self._hash is not None
            and other._hash is not None
            and self._hash != other._hash
        ):
            return False
        return self.elements == other.elements

    def __hash__(self) -> int:
        # The structural hash is cached for immutable tuples (the common
        # case); tuples holding a sub-solution recompute it, since their
        # contents may be rewritten in place.
        cached = self._hash
        if cached is not None:
            return cached
        value = hash(("TupleAtom", self.elements))
        if not self._mutable:
            self._hash = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "TupleAtom(" + ", ".join(repr(e) for e in self.elements) + ")"

    def __str__(self) -> str:
        return ":".join(str(e) for e in self.elements)


class ListAtom(Atom):
    """The ordered list container added by HOCLflow.

    Lists carry service parameters (the ``PAR`` atom holds
    ``list(...)`` of the task inputs) and service results.  Unlike tuples
    they may be empty and are built by the ``list()`` external function.
    """

    __slots__ = ("items", "_hash", "_mutable", "_nested_sols")
    kind = "list"

    def __init__(self, items: Iterable[Any] = ()):  # noqa: B008 - immutable default
        self.items = tuple(to_atom(i) for i in items)
        self._hash = None
        self._mutable = any(i._mutable for i in self.items)
        self._nested_sols = _nested_solutions_in(self.items) if self._mutable else ()

    def is_structured(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.items)

    def __getitem__(self, index: int) -> Atom:
        return self.items[index]

    def append(self, item: Any) -> "ListAtom":
        """Return a new list with ``item`` appended (lists are immutable)."""
        return ListAtom(self.items + (to_atom(item),))

    def extend(self, items: Iterable[Any]) -> "ListAtom":
        """Return a new list with ``items`` appended."""
        return ListAtom(self.items + tuple(to_atom(i) for i in items))

    def to_python(self) -> list[Any]:
        """Convert back to a plain Python list of unwrapped values."""
        return [from_atom(i) for i in self.items]

    def copy(self) -> "ListAtom":
        return ListAtom([i.copy() for i in self.items])

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ListAtom):
            return False
        if (
            self._hash is not None
            and other._hash is not None
            and self._hash != other._hash
        ):
            return False
        return self.items == other.items

    def __hash__(self) -> int:
        cached = self._hash
        if cached is not None:
            return cached
        value = hash(("ListAtom", self.items))
        if not self._mutable:
            self._hash = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ListAtom({list(self.items)!r})"

    def __str__(self) -> str:
        return "[" + ", ".join(str(i) for i in self.items) + "]"


class Subsolution(Atom):
    """A multiset nested inside a multiset, written ``<A1, ..., An>``.

    A sub-solution wraps a :class:`~repro.hocl.multiset.Multiset`.  Under
    HOCL semantics, an enclosing rule may only *match* a sub-solution once
    that sub-solution is inert (no inner rule can fire); the reduction engine
    enforces this.
    """

    __slots__ = ("solution",)
    kind = "solution"
    _mutable = True

    def __init__(self, contents: Any = ()):  # Multiset | Iterable
        from .multiset import Multiset  # local import to avoid a cycle

        if isinstance(contents, Multiset):
            self.solution = contents
        else:
            self.solution = Multiset(contents)

    def is_structured(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.solution)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.solution)

    def copy(self) -> "Subsolution":
        return Subsolution(self.solution.copy())

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Subsolution) and self.solution == other.solution

    def __hash__(self) -> int:
        # Multisets are unordered: hash the order-insensitive content hash,
        # which the multiset caches per version.
        return hash(("Subsolution", self.solution.content_hash()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Subsolution({list(self.solution)!r})"

    def __str__(self) -> str:
        return "<" + ", ".join(str(a) for a in self.solution) + ">"


def to_atom(value: Any) -> Atom:
    """Coerce a Python value into an :class:`Atom`.

    ``Atom`` instances pass through unchanged.  ``bool``/``int``/``float``/
    ``str`` map to the corresponding scalar atoms, ``list``/``tuple`` map to
    :class:`ListAtom`, and ``dict`` is rejected (there is no mapping atom in
    HOCL).
    """
    if isinstance(value, Atom):
        return value
    if isinstance(value, bool):
        return BoolAtom(value)
    if isinstance(value, int):
        return IntAtom(value)
    if isinstance(value, float):
        return FloatAtom(value)
    if isinstance(value, str):
        return StringAtom(value)
    if isinstance(value, (list, tuple)):
        return ListAtom(value)
    raise AtomError(f"cannot represent {value!r} ({type(value).__name__}) as an HOCL atom")


def from_atom(atom: Atom) -> Any:
    """Unwrap an atom into the closest plain Python value.

    Scalars unwrap to their value, symbols to their name, lists to Python
    lists, tuples to Python tuples and sub-solutions to lists of unwrapped
    contents.  Rules unwrap to themselves.
    """
    if isinstance(atom, ScalarAtom):
        return atom.value
    if isinstance(atom, Symbol):
        return atom.name
    if isinstance(atom, ListAtom):
        return [from_atom(i) for i in atom.items]
    if isinstance(atom, TupleAtom):
        return tuple(from_atom(e) for e in atom.elements)
    if isinstance(atom, Subsolution):
        return [from_atom(a) for a in atom.solution]
    return atom


def atoms_equal(left: Any, right: Any) -> bool:
    """Structural equality between two values after coercion to atoms."""
    return to_atom(left) == to_atom(right)
