"""The HOCL reduction engine.

Reduction repeatedly applies applicable rules to a solution until no rule can
fire anywhere — the solution is then *inert*.  Two points of the HOCL
execution model matter for GinFlow and are implemented here:

* **Nested solutions reduce first.**  A rule of an outer solution may only
  consume a sub-solution once that sub-solution is inert.  The engine
  enforces this by reducing depth-first: at every step, all nested solutions
  (including those stored inside tuples, which is how task sub-solutions are
  encoded) are brought to inertness before any outer rule is tried.
* **One-shot rules.**  A ``replace-one`` rule is removed from its solution
  when it fires.

The engine is deliberately deterministic for a fixed rule set and solution:
rules are tried in priority order (then insertion order) and the first match
found is applied.  HOCL semantics allow any order; determinism makes tests
and the simulation reproducible without changing the set of reachable inert
states for the confluent programs used by GinFlow.

Incremental reduction
---------------------
By default the engine is *incremental*: it relies on the dirty tracking of
:class:`~repro.hocl.multiset.Multiset` to avoid redoing work that cannot
have changed since the last reduction:

* a solution proven inert is stamped (:meth:`Multiset.note_inert`) and is
  skipped — along with its whole subtree — until any mutation anywhere
  below it bumps its version again;
* rules are drawn from the multiset's cached priority ordering, and a rule
  is only *tried* (and only then charged a ``match_attempt``) when every
  one of its patterns has at least one candidate in the solution's
  head-symbol index; after a reaction this leaves only the plausibly
  applicable rules.

Both optimisations are trace-preserving: skipping an inert solution skips
zero reactions, and skipping an index-refuted rule skips a search that was
guaranteed to fail, so :attr:`ReductionReport.history` is identical to the
naive engine's (``incremental=False``), which remains available as the
reference implementation and as the baseline of the reduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from .errors import ReductionError
from .externals import ExternalRegistry, default_registry
from .matching import Match
from .multiset import Multiset
from .rules import Rule

__all__ = ["ReductionReport", "ReactionRecord", "ReductionEngine", "reduce_solution", "is_inert"]


@dataclass
class ReactionRecord:
    """One rule firing, as recorded in a :class:`ReductionReport`."""

    rule: str
    depth: int
    consumed: int
    produced: int


@dataclass
class ReductionReport:
    """Statistics gathered while reducing a solution.

    Attributes
    ----------
    reactions:
        Number of rule firings.
    match_attempts:
        Number of (rule, solution) match searches performed; the simulation
        cost model charges virtual time proportional to this and to the
        solution size.
    inert:
        ``True`` when reduction reached a state where no rule can fire;
        ``False`` only when the step limit was hit.
    history:
        Per-reaction records (rule name, nesting depth, atoms consumed and
        produced), useful for debugging and for the execution traces.
    timings:
        Wall-clock seconds spent per reduction phase: ``"match"`` (searching
        for applicable rules), ``"rewrite"`` (expanding rule products and
        firing effects) and ``"index"`` (mutating the multiset — removals,
        insertions and the index maintenance they imply).  Indicative, not
        deterministic; used to diagnose where a perf regression lives.
    rule_fires:
        Number of firings per rule name, aggregated across the whole
        reduction (and across merged reports).  ``sum(rule_fires.values())``
        always equals ``reactions``; the dynamic analyzer uses this to flag
        registered rules that never fired over a run or sweep.
    """

    reactions: int = 0
    match_attempts: int = 0
    inert: bool = True
    history: list[ReactionRecord] = field(default_factory=list)
    timings: dict[str, float] = field(
        default_factory=lambda: {"match": 0.0, "rewrite": 0.0, "index": 0.0}
    )
    rule_fires: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "ReductionReport") -> None:
        """Accumulate ``other`` into this report."""
        self.reactions += other.reactions
        self.match_attempts += other.match_attempts
        self.inert = self.inert and other.inert
        self.history.extend(other.history)
        for phase, seconds in other.timings.items():
            self.timings[phase] = self.timings.get(phase, 0.0) + seconds
        for name, fires in other.rule_fires.items():
            self.rule_fires[name] = self.rule_fires.get(name, 0) + fires

    def reduction_units(self, solution_size: int) -> float:
        """Cost units of this reduction: attempts weighted by solution size.

        This is the accounting consumed by
        :meth:`repro.runtime.costs.CostModel.handling_cost`.  A *unit* is one
        match attempt over one atom of the local solution; under the
        incremental engine ``match_attempts`` only counts searches that were
        actually performed (index-refuted rules and already-inert solutions
        are free), so the charged virtual time shrinks exactly where the
        real interpreter's work does.
        """
        return self.match_attempts * max(1, solution_size)


#: Optional observer invoked after every reaction with
#: ``(rule, match, depth)``; the GinFlow agents use it for tracing.
ReactionObserver = Callable[[Rule, Match, int], None]


class ReductionEngine:
    """Reduce HOCL solutions to inertness.

    Parameters
    ----------
    externals:
        External function registry used to expand ``Call`` templates; a
        default registry (with ``list`` et al.) is created when omitted.
    max_steps:
        Safety bound on the number of reactions in one :meth:`reduce` call.
        Workflow programs always terminate, but user-supplied rules might
        not; exceeding the bound marks the report as non-inert instead of
        looping forever.
    observer:
        Optional callback invoked after each reaction.
    incremental:
        When ``True`` (the default) the engine caches inertness per
        sub-solution and prunes rules through the multiset's head-symbol
        index; ``False`` restores the naive re-reduce-everything behaviour
        (same traces, used as the benchmark baseline).
    """

    def __init__(
        self,
        externals: ExternalRegistry | None = None,
        max_steps: int = 100_000,
        observer: ReactionObserver | None = None,
        incremental: bool = True,
    ):
        self.externals = externals if externals is not None else default_registry()
        self.max_steps = int(max_steps)
        self.observer = observer
        self.incremental = bool(incremental)

    # ----------------------------------------------------------------- public
    def reduce(self, solution: Multiset) -> ReductionReport:
        """Rewrite ``solution`` in place until it is inert (or the step limit hits)."""
        report = ReductionReport()
        self._reduce_level(solution, depth=0, report=report)
        return report

    def step(self, solution: Multiset) -> bool:
        """Apply at most one reaction (anywhere in the solution tree).

        Returns ``True`` if a reaction was applied.  Useful for debugging and
        for tests that need to observe intermediate states.
        """
        report = ReductionReport()
        return self._try_one_reaction(solution, depth=0, report=report)

    def is_inert(self, solution: Multiset) -> bool:
        """Whether no rule can fire anywhere in ``solution`` (non-mutating)."""
        report = ReductionReport()
        return not self._has_applicable_rule(solution, report)

    # --------------------------------------------------------------- internal
    def _nested_solutions(self, solution: Multiset) -> list[Multiset]:
        """Sub-solutions at this level, including those wrapped in tuples.

        The multiset maintains this list incrementally (in exactly the
        depth-first descent order a scan would produce), so re-descending
        after every reaction costs O(nested) instead of O(atoms).
        """
        return solution.nested_solutions()

    def _reduce_level(self, solution: Multiset, depth: int, report: ReductionReport) -> None:
        incremental = self.incremental
        while True:
            if report.reactions >= self.max_steps:
                report.inert = False
                return
            if incremental and solution.known_inert:
                # proven inert at this exact version: nothing below can fire
                # (any mutation in the subtree would have bumped the version
                # through the parent chain).
                return
            # 1. bring every nested solution to inertness first
            for nested in self._nested_solutions(solution):
                if incremental and nested.known_inert:
                    continue
                self._reduce_level(nested, depth + 1, report)
                if report.reactions >= self.max_steps:
                    report.inert = False
                    return
            # 2. then try one reaction at this level
            if not self._apply_first_applicable(solution, depth, report):
                if incremental:
                    solution.note_inert()
                return
            # a reaction at this level may have created new nested solutions
            # or re-enabled nested rules: loop.

    def _try_one_reaction(self, solution: Multiset, depth: int, report: ReductionReport) -> bool:
        if self.incremental and solution.known_inert:
            return False
        for nested in self._nested_solutions(solution):
            if self._try_one_reaction(nested, depth + 1, report):
                return True
        return self._apply_first_applicable(solution, depth, report)

    def _ordered_rules(self, solution: Multiset) -> list[Rule]:
        # priority descending, insertion order preserved among equals —
        # cached by the multiset and invalidated only when rules change.
        return solution.rules_by_priority()

    def _plausible(self, rule: Rule, solution: Multiset) -> bool:
        """Whether the index leaves any candidates for every pattern of ``rule``.

        A ``False`` answer proves the rule cannot match (each pattern's key
        names a bucket that must contain any atom it matches), so the search
        — and its ``match_attempts`` charge — is skipped entirely.
        """
        for key in rule.pattern_index_keys:
            if key is not None and not solution.has_candidates(key):
                return False
        return True

    def _apply_first_applicable(
        self, solution: Multiset, depth: int, report: ReductionReport
    ) -> bool:
        started = perf_counter()
        for rule in self._ordered_rules(solution):
            if self.incremental and not self._plausible(rule, solution):
                continue
            report.match_attempts += 1
            match = self._find_match_excluding_self(rule, solution)
            if match is None:
                continue
            report.timings["match"] += perf_counter() - started
            self._apply(rule, match, solution, depth, report)
            return True
        report.timings["match"] += perf_counter() - started
        return False

    def _has_applicable_rule(self, solution: Multiset, report: ReductionReport) -> bool:
        if self.incremental and solution.known_inert:
            return False
        for nested in self._nested_solutions(solution):
            if self._has_applicable_rule(nested, report):
                return True
        for rule in self._ordered_rules(solution):
            if self.incremental and not self._plausible(rule, solution):
                continue
            report.match_attempts += 1
            if self._find_match_excluding_self(rule, solution) is not None:
                return True
        if self.incremental:
            # nothing can fire here or below: remember it (atoms untouched —
            # `is_inert` stays non-mutating, only the cache marker is set).
            solution.note_inert()
        return False

    @staticmethod
    def _find_match_excluding_self(rule: Rule, solution: Multiset) -> Match | None:
        """First match of ``rule`` whose consumed atoms do not include the rule itself."""
        for match in rule.find_all_matches(solution):
            if not any(consumed is rule for consumed in match.consumed):
                return match
        return None

    def _apply(
        self, rule: Rule, match: Match, solution: Multiset, depth: int, report: ReductionReport
    ) -> None:
        started = perf_counter()
        try:
            products = rule.produce(match, self.externals)
        except Exception as exc:  # noqa: BLE001 - context added
            raise ReductionError(f"rule {rule.name!r} failed to produce its products: {exc}") from exc
        produced_at = perf_counter()
        report.timings["rewrite"] += produced_at - started
        for consumed in match.consumed:
            solution.remove_identical(consumed)
        if rule.one_shot:
            # the rule removes itself once fired (replace-one semantics)
            try:
                solution.remove_identical(rule)
            except KeyError:
                solution.discard(rule)
        for atom in products:
            solution.add(atom)
        report.timings["index"] += perf_counter() - produced_at
        report.reactions += 1
        report.rule_fires[rule.name] = report.rule_fires.get(rule.name, 0) + 1
        report.history.append(
            ReactionRecord(rule=rule.name, depth=depth, consumed=len(match.consumed), produced=len(products))
        )
        rule.fire_effect(match)
        if self.observer is not None:
            self.observer(rule, match, depth)


def reduce_solution(
    solution: Multiset,
    externals: ExternalRegistry | None = None,
    max_steps: int = 100_000,
) -> ReductionReport:
    """Convenience wrapper: reduce ``solution`` with a fresh engine."""
    return ReductionEngine(externals=externals, max_steps=max_steps).reduce(solution)


def is_inert(solution: Multiset, externals: ExternalRegistry | None = None) -> bool:
    """Convenience wrapper: whether ``solution`` is inert."""
    return ReductionEngine(externals=externals).is_inert(solution)
