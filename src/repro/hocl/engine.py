"""The HOCL reduction engine.

Reduction repeatedly applies applicable rules to a solution until no rule can
fire anywhere — the solution is then *inert*.  Two points of the HOCL
execution model matter for GinFlow and are implemented here:

* **Nested solutions reduce first.**  A rule of an outer solution may only
  consume a sub-solution once that sub-solution is inert.  The engine
  enforces this by reducing depth-first: at every step, all nested solutions
  (including those stored inside tuples, which is how task sub-solutions are
  encoded) are brought to inertness before any outer rule is tried.
* **One-shot rules.**  A ``replace-one`` rule is removed from its solution
  when it fires.

The engine is deliberately deterministic for a fixed rule set and solution:
rules are tried in priority order (then insertion order) and the first match
found is applied.  HOCL semantics allow any order; determinism makes tests
and the simulation reproducible without changing the set of reachable inert
states for the confluent programs used by GinFlow.

Incremental reduction
---------------------
By default the engine is *incremental*: it relies on the dirty tracking of
:class:`~repro.hocl.multiset.Multiset` to avoid redoing work that cannot
have changed since the last reduction:

* a solution proven inert is stamped (:meth:`Multiset.note_inert`) and is
  skipped — along with its whole subtree — until any mutation anywhere
  below it bumps its version again;
* rules are drawn from the multiset's cached priority ordering, and a rule
  is only *tried* (and only then charged a ``match_attempt``) when every
  one of its patterns has at least one candidate in the solution's
  head-symbol index; after a reaction this leaves only the plausibly
  applicable rules.

Both optimisations are trace-preserving: skipping an inert solution skips
zero reactions, and skipping an index-refuted rule skips a search that was
guaranteed to fail, so :attr:`ReductionReport.history` is identical to the
naive engine's (``incremental=False``), which remains available as the
reference implementation and as the baseline of the reduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.obs.tracer import Tracer, active as active_tracer

from .atoms import Atom
from .errors import ReductionError
from .externals import ExternalRegistry, default_registry
from .matching import Match
from .multiset import Multiset, atom_index_keys
from .rules import Rule

__all__ = ["ReductionReport", "ReactionRecord", "ReductionEngine", "reduce_solution", "is_inert"]


@dataclass
class ReactionRecord:
    """One rule firing, as recorded in a :class:`ReductionReport`.

    ``consumed`` counts the matched atoms and ``produced`` the atoms the
    firing left behind — products on the rebuild path, kept anchors plus
    ``produce`` expansions on the delta path.  A delta rule whose rebuild
    products list the kept fields first (the convention every workflow rule
    follows) records identical numbers on both paths.
    """

    rule: str
    depth: int
    consumed: int
    produced: int


@dataclass
class ReductionReport:
    """Statistics gathered while reducing a solution.

    Attributes
    ----------
    reactions:
        Number of rule firings.
    match_attempts:
        Number of (rule, solution) match searches performed; the simulation
        cost model charges virtual time proportional to this and to the
        solution size.
    inert:
        ``True`` when reduction reached a state where no rule can fire;
        ``False`` only when the step limit was hit.
    history:
        Per-reaction records (rule name, nesting depth, atoms consumed and
        produced), useful for debugging and for the execution traces.
    timings:
        Wall-clock seconds spent per reduction phase: ``"match"`` (searching
        for applicable rules), ``"rewrite"`` (expanding full rebuild
        products), ``"patch"`` (applying in-place rewrite deltas, including
        the nested-solution edits they perform) and ``"index"`` (mutating
        the top-level multiset — removals, insertions and the index
        maintenance they imply).  Indicative, not deterministic; used to
        diagnose where a perf regression lives.
    rule_fires:
        Number of firings per rule name, aggregated across the whole
        reduction (and across merged reports).  ``sum(rule_fires.values())``
        always equals ``reactions``; the dynamic analyzer uses this to flag
        registered rules that never fired over a run or sweep.
    batches:
        Number of non-empty reaction batches applied by the batched engine
        (``ReductionEngine(batch=True)``).  Zero under the serial engine;
        ``batches <= reactions`` always, and the ratio measures how much
        per-level work the batching amortised.
    patched:
        Number of reactions applied through the in-place delta path
        (:class:`~repro.hocl.deltas.RewriteDelta`) rather than by rebuilding
        products; ``patched <= reactions`` always, and the ratio measures
        how much of the rewrite work the deltas absorbed.
    """

    reactions: int = 0
    match_attempts: int = 0
    inert: bool = True
    history: list[ReactionRecord] = field(default_factory=list)
    timings: dict[str, float] = field(
        default_factory=lambda: {"match": 0.0, "rewrite": 0.0, "patch": 0.0, "index": 0.0}
    )
    rule_fires: dict[str, int] = field(default_factory=dict)
    batches: int = 0
    patched: int = 0

    def merge(self, other: "ReductionReport") -> None:
        """Accumulate ``other`` into this report.

        Every counter is summed key-by-key: ``timings`` and ``rule_fires``
        keys present only in ``other`` are *added*, not dropped, so merged
        accounting stays balanced (``sum(rule_fires.values()) == reactions``)
        even when the two sides saw disjoint rule sets — the invariant the
        dynamic analyzer's accounting check relies on.
        """
        self.reactions += other.reactions
        self.match_attempts += other.match_attempts
        self.inert = self.inert and other.inert
        self.history.extend(other.history)
        self.batches += other.batches
        self.patched += other.patched
        for phase, seconds in other.timings.items():
            self.timings[phase] = self.timings.get(phase, 0.0) + seconds
        for name, fires in other.rule_fires.items():
            self.rule_fires[name] = self.rule_fires.get(name, 0) + fires

    def reduction_units(self, solution_size: int) -> float:
        """Cost units of this reduction: attempts weighted by solution size.

        This is the accounting consumed by
        :meth:`repro.runtime.costs.CostModel.handling_cost`.  A *unit* is one
        match attempt over one atom of the local solution; under the
        incremental engine ``match_attempts`` only counts searches that were
        actually performed (index-refuted rules and already-inert solutions
        are free), so the charged virtual time shrinks exactly where the
        real interpreter's work does.
        """
        return self.match_attempts * max(1, solution_size)


#: Optional observer invoked after every reaction with
#: ``(rule, match, depth)``; the GinFlow agents use it for tracing.
ReactionObserver = Callable[[Rule, Match, int], None]


class _LevelFrontier:
    """The dirty-atom frontier of one solution level (batched engine state).

    The batched engine's central invariant: after a pass over a level, no
    rule can match a combination of atoms that are all *clean* (present and
    untouched since that pass) — any new match must consume at least one
    atom of the frontier: a product added by a reaction, or an atom whose
    nested solution reacted.  Each pass therefore only enumerates matches
    led by a frontier atom, instead of re-exhausting the whole level.

    ``version`` is the solution version at the last point where every
    mutation was accounted for in the frontier; a mismatch on re-entry means
    someone mutated the solution outside the engine (an agent delivering a
    message, a test poking atoms in), and the only safe answer is a full
    rescan (``full=True``, the state of a freshly created frontier).
    """

    __slots__ = ("dirty", "next_dirty", "version", "full")

    def __init__(self) -> None:
        self.dirty: dict[int, Atom] = {}
        self.next_dirty: dict[int, Atom] = {}
        self.version = -1
        self.full = True

    def mark(self, atom: Atom) -> None:
        """Add ``atom`` to the current frontier (consumed by the next pass)."""
        self.dirty[id(atom)] = atom

    def mark_next(self, atom: Atom) -> None:
        """Add ``atom`` to the next frontier (a product of the running pass)."""
        self.next_dirty[id(atom)] = atom

    def forget(self, atom: Atom) -> None:
        """Drop a consumed atom from both frontiers."""
        self.dirty.pop(id(atom), None)
        self.next_dirty.pop(id(atom), None)

    def advance(self) -> None:
        """Finish a pass: the atoms it touched become the next frontier."""
        self.dirty = self.next_dirty
        self.next_dirty = {}
        self.full = False

    def reset(self) -> None:
        """Invalidate everything: the next pass must rescan the whole level."""
        self.dirty = {}
        self.next_dirty = {}
        self.full = True


class ReductionEngine:
    """Reduce HOCL solutions to inertness.

    Parameters
    ----------
    externals:
        External function registry used to expand ``Call`` templates; a
        default registry (with ``list`` et al.) is created when omitted.
    max_steps:
        Safety bound on the number of reactions in one :meth:`reduce` call.
        Workflow programs always terminate, but user-supplied rules might
        not; exceeding the bound marks the report as non-inert instead of
        looping forever.
    observer:
        Optional callback invoked after each reaction.
    incremental:
        When ``True`` (the default) the engine caches inertness per
        sub-solution and prunes rules through the multiset's head-symbol
        index; ``False`` restores the naive re-reduce-everything behaviour
        (same traces, used as the benchmark baseline).
    batch:
        When ``True``, each pass over a level applies *every* applicable
        match with pairwise-disjoint reactant sets (decided on atom
        identity) in one batch, instead of restarting the scan after every
        single reaction — and, crucially, each pass after the first only
        searches from the level's dirty-atom *frontier* (products of the
        previous pass plus atoms whose nested solutions reacted), because a
        pass establishes that no rule can match clean atoms alone (see
        :class:`_LevelFrontier`).  Batching preserves the final inert
        solution and the reaction multiset (``rule_fires``) for the
        confluent programs GinFlow uses, but the *order* of
        :attr:`ReductionReport.history` may differ from the serial
        engine's, because several same-level reactions happen before nested
        solutions are re-descended.  ``ReductionReport.batches`` counts the
        applied batches.
    delta:
        When ``True`` (the default), rules that carry a
        :class:`~repro.hocl.deltas.RewriteDelta` fire through it: matched
        atoms stay in place (minus the delta's consume set) and the delta's
        patches edit their nested solutions under copy-on-write, instead of
        removing everything matched and rebuilding products.  ``False``
        forces the classic rebuild path for every rule — the reference
        semantics the delta-vs-rebuild parity harness compares against.
        Both paths produce structurally identical final solutions and the
        same ``rule_fires``; ``ReductionReport.patched`` counts the
        reactions the delta path absorbed.
    trace:
        Optional :class:`~repro.obs.tracer.Tracer`: when active, every
        timing window the engine accumulates into
        :attr:`ReductionReport.timings` is also recorded as a span
        (``reduction.match`` / ``reduction.rewrite`` / ``reduction.patch``,
        with the index-maintenance share as an ``index_seconds`` attribute)
        using the *same* ``perf_counter`` values — span totals therefore
        reconcile with the report.  A disabled tracer is normalised to
        ``None`` and costs one pointer check per window.  Tracing never
        changes what reduction does: history, ``match_attempts`` and the
        final solution are identical with and without it.
    trace_track:
        Trace track the spans land on (the hosting agent's name; the
        centralised executor uses ``"centralized"``).
    """

    def __init__(
        self,
        externals: ExternalRegistry | None = None,
        max_steps: int = 100_000,
        observer: ReactionObserver | None = None,
        incremental: bool = True,
        batch: bool = False,
        delta: bool = True,
        trace: Tracer | None = None,
        trace_track: str = "reduction",
    ):
        self.externals = externals if externals is not None else default_registry()
        self.max_steps = int(max_steps)
        self.observer = observer
        self.incremental = bool(incremental)
        self.batch = bool(batch)
        self.delta = bool(delta)
        self.trace = active_tracer(trace)
        self.trace_track = trace_track
        #: per-solution frontier states of the batched engine, keyed by
        #: ``id(solution)``; the stored solution reference both keeps the id
        #: stable and detects a recycled id.
        self._frontiers: dict[int, tuple[Multiset, _LevelFrontier]] = {}

    # ----------------------------------------------------------------- public
    def reduce(self, solution: Multiset) -> ReductionReport:
        """Rewrite ``solution`` in place until it is inert (or the step limit hits)."""
        report = ReductionReport()
        self._reduce_level(solution, depth=0, report=report)
        return report

    def step(self, solution: Multiset) -> bool:
        """Apply at most one reaction (anywhere in the solution tree).

        Returns ``True`` if a reaction was applied.  Useful for debugging and
        for tests that need to observe intermediate states.
        """
        report = ReductionReport()
        return self._try_one_reaction(solution, depth=0, report=report)

    def is_inert(self, solution: Multiset) -> bool:
        """Whether no rule can fire anywhere in ``solution`` (non-mutating)."""
        report = ReductionReport()
        return not self._has_applicable_rule(solution, report)

    # --------------------------------------------------------------- internal
    def _nested_solutions(self, solution: Multiset) -> list[Multiset]:
        """Sub-solutions at this level, including those wrapped in tuples.

        The multiset maintains this list incrementally (in exactly the
        depth-first descent order a scan would produce), so re-descending
        after every reaction costs O(nested) instead of O(atoms).
        """
        return solution.nested_solutions()

    def _reduce_level(self, solution: Multiset, depth: int, report: ReductionReport) -> None:
        if self.batch:
            self._reduce_level_batch(solution, depth, report)
            return
        incremental = self.incremental
        while True:
            if report.reactions >= self.max_steps:
                report.inert = False
                return
            if incremental and solution.known_inert:
                # proven inert at this exact version: nothing below can fire
                # (any mutation in the subtree would have bumped the version
                # through the parent chain).
                return
            # 1. bring every nested solution to inertness first
            for nested in self._nested_solutions(solution):
                if incremental and nested.known_inert:
                    continue
                self._reduce_level(nested, depth + 1, report)
                if report.reactions >= self.max_steps:
                    report.inert = False
                    return
            # 2. then react at this level: one reaction, then loop — the
            # reaction may have created new nested solutions or re-enabled
            # nested rules.
            if not self._apply_first_applicable(solution, depth, report):
                if incremental:
                    solution.note_inert()
                return

    def _frontier_for(self, solution: Multiset) -> _LevelFrontier:
        """The frontier state of ``solution``, reset if the level changed
        outside the engine's own (tracked) mutations."""
        key = id(solution)
        item = self._frontiers.get(key)
        if item is None or item[0] is not solution:
            state = _LevelFrontier()
            self._frontiers[key] = (solution, state)
        else:
            state = item[1]
            if state.version != solution.version:
                state.reset()
        return state

    def mark_frontier(self, solution: Multiset, atoms: "list[Atom]") -> None:
        """Account for external mutations below the given top-level ``atoms``.

        The sharded reducer (:mod:`repro.hocl.parallel`) reduces nested
        sub-solutions with *other* engine instances, which bumps the
        top-level version behind this engine's back; marking the owning
        atoms dirty here (after the shard phase, before the next surface
        pass) keeps the frontier valid without the full rescan an unexplained
        version bump would otherwise force.
        """
        if not self.batch:
            return
        item = self._frontiers.get(id(solution))
        if item is None or item[0] is not solution:
            return  # no state yet: the first surface pass scans everything
        state = item[1]
        for atom in atoms:
            state.mark(atom)
        state.version = solution.version

    def _reduce_level_batch(self, solution: Multiset, depth: int, report: ReductionReport) -> None:
        incremental = self.incremental
        if report.reactions >= self.max_steps:
            report.inert = False
            return
        if incremental and solution.known_inert:
            return
        state = self._frontier_for(solution)
        while True:
            # 1. bring every nested solution to inertness first; any nested
            # activity makes the owning atom part of this level's frontier.
            nested_active = False
            for atom, nested in solution.nested_solution_items():
                if incremental and nested.known_inert:
                    continue
                before = report.reactions
                self._reduce_level_batch(nested, depth + 1, report)
                if report.reactions >= self.max_steps:
                    report.inert = False
                    state.version = solution.version
                    return
                if report.reactions != before:
                    nested_active = True
                    state.mark(atom)
            # 2. then react at this level: one frontier pass applies every
            # applicable disjoint match involving a dirty atom.
            applied = self._apply_batch(solution, depth, report, state)
            state.version = solution.version
            if report.reactions >= self.max_steps:
                report.inert = False
                return
            if not applied and not nested_active:
                if incremental:
                    solution.note_inert()
                return

    def _try_one_reaction(self, solution: Multiset, depth: int, report: ReductionReport) -> bool:
        if self.incremental and solution.known_inert:
            return False
        for nested in self._nested_solutions(solution):
            if self._try_one_reaction(nested, depth + 1, report):
                return True
        return self._apply_first_applicable(solution, depth, report)

    def _ordered_rules(self, solution: Multiset) -> list[Rule]:
        # priority descending, insertion order preserved among equals —
        # cached by the multiset and invalidated only when rules change.
        return solution.rules_by_priority()

    def _plausible(self, rule: Rule, solution: Multiset) -> bool:
        """Whether the index leaves any candidates for every pattern of ``rule``.

        A ``False`` answer proves the rule cannot match (each pattern's key
        names a bucket that must contain any atom it matches), so the search
        — and its ``match_attempts`` charge — is skipped entirely.
        """
        for key in rule.pattern_index_keys:
            if key is not None and not solution.has_candidates(key):
                return False
        return True

    def _apply_first_applicable(
        self, solution: Multiset, depth: int, report: ReductionReport
    ) -> bool:
        started = perf_counter()
        for rule in self._ordered_rules(solution):
            if self.incremental and not self._plausible(rule, solution):
                continue
            report.match_attempts += 1
            match = self._find_match_excluding_self(rule, solution)
            if match is None:
                continue
            now = perf_counter()
            report.timings["match"] += now - started
            if self.trace is not None:
                self.trace.span("reduction.match", self.trace_track, started, now, depth=depth, rule=rule.name)
            self._apply(rule, match, solution, depth, report)
            return True
        now = perf_counter()
        report.timings["match"] += now - started
        if self.trace is not None:
            self.trace.span("reduction.match", self.trace_track, started, now, depth=depth)
        return False

    def reduce_level_once(self, solution: Multiset, report: ReductionReport, depth: int = 0) -> bool:
        """React at the top level of ``solution`` only (no nested descent).

        Applies one reaction (serial) or one frontier batch of disjoint
        reactions (``batch=True``) and returns whether anything fired.  The
        sharded reducer (:mod:`repro.hocl.parallel`) alternates this with
        parallel sub-solution reduction — see :meth:`mark_frontier` for how
        the two stay consistent; nested solutions must already be inert for
        the result to be HOCL-faithful, exactly as in :meth:`reduce`.
        """
        if self.batch:
            state = self._frontier_for(solution)
            applied = self._apply_batch(solution, depth, report, state)
            state.version = solution.version
            return applied > 0
        return self._apply_first_applicable(solution, depth, report)

    def _apply_batch(
        self, solution: Multiset, depth: int, report: ReductionReport, state: _LevelFrontier
    ) -> int:
        """One frontier pass: apply every applicable disjoint *new* match.

        A fresh (or invalidated) frontier scans the whole level once, like
        the serial engine's final failing attempt.  Every later pass only
        enumerates matches that consume at least one frontier atom — for
        each rule, one enumeration per pattern position with that position
        pinned to the frontier candidates, the other patterns running in
        declaration order over binding-narrowed buckets
        (:meth:`~repro.hocl.rules.Rule.find_matches_from`).  By the frontier
        invariant (see :class:`_LevelFrontier`) matches among clean atoms
        cannot exist, so a pass that applies nothing proves the level inert
        as reliably as a full exhaustion — at a cost proportional to what
        changed, not to the level size.

        Matches fire as soon as they are found, and the rule's enumeration
        then *restarts* under the grown claim set: a fresh search excludes
        claimed atoms at candidate-selection time, whereas resuming a
        suspended generator would keep constructing full matches below an
        already-claimed choice (a fan-out atom with many destinations builds
        one complete match per destination) only to discard them.  Restarting
        also freezes the claim set for the lifetime of each search, so an
        enumeration never goes stale mid-flight.  Products join the *next*
        frontier; a produced rule invalidates the whole frontier, since a
        new rule can match atoms no pass needed to revisit.

        The claim map holds strong references, not bare ids: a consumed atom
        may otherwise be freed mid-pass and a *product* allocated at the
        recycled address, aliasing the dead claim and silently excluding the
        product from the rest of the pass (heap-layout-dependent
        ``match_attempts``).  Kept delta anchors are released from the map
        once their reaction fires — they play the role of fresh products.
        """
        claimed: dict[int, object] = {}

        def is_claimed(atom: object) -> bool:
            return id(atom) in claimed

        applied = 0
        rescan = False
        started = perf_counter()
        if state.full:
            dirty_entries = None
        else:
            if not state.dirty:
                state.advance()
                return 0
            # map frontier atoms back to their occurrence entries through
            # each atom's most specific index bucket (a handful of entries)
            dirty_entries = []
            for atom in state.dirty.values():
                for entry in solution.live_entries(atom_index_keys(atom)[0]):
                    if entry.atom is atom:
                        dirty_entries.append(entry)
        for rule in self._ordered_rules(solution):
            if id(rule) in claimed:
                continue  # consumed by an earlier reaction of this pass
            if self.incremental and not self._plausible(rule, solution):
                continue
            charged = False
            while True:
                # one fresh first-match search per fired reaction
                match = None
                if dirty_entries is None:
                    if not charged:
                        report.match_attempts += 1
                        charged = True
                    for candidate in rule.find_all_matches(solution, exclude=is_claimed):
                        if any(consumed is rule for consumed in candidate.consumed):
                            continue  # a rule never consumes itself
                        match = candidate
                        break
                else:
                    live = [
                        entry for entry in dirty_entries if id(entry.atom) not in claimed
                    ]
                    enumerations = []
                    for lead, key in enumerate(rule.pattern_index_keys):
                        # structural pre-filter (memoized): an enumeration
                        # whose every pinned candidate quick-rejects cannot
                        # yield, and skipping it here skips the full
                        # candidate iteration of the patterns before the
                        # pinned one.
                        pattern = rule.patterns[lead]
                        lead_entries = [
                            e
                            for e in live
                            if (key is None or key in atom_index_keys(e.atom))
                            and not pattern.quick_reject(e.atom)
                        ]
                        if lead_entries:
                            enumerations.append(
                                rule.find_matches_from(
                                    solution, lead, lead_entries, exclude=is_claimed
                                )
                            )
                    if not enumerations:
                        break  # no frontier atom can feed this rule: no search
                    if not charged:
                        report.match_attempts += 1
                        charged = True
                    for enumeration in enumerations:
                        for candidate in enumeration:
                            if any(consumed is rule for consumed in candidate.consumed):
                                continue
                            match = candidate
                            break
                        if match is not None:
                            break
                if match is None:
                    break
                if report.reactions >= self.max_steps:
                    now = perf_counter()
                    report.timings["match"] += now - started
                    if self.trace is not None:
                        self.trace.span("reduction.match", self.trace_track, started, now, depth=depth)
                    return applied
                for atom in match.consumed:
                    claimed[id(atom)] = atom
                if rule.one_shot:
                    claimed[id(rule)] = rule
                now = perf_counter()
                report.timings["match"] += now - started
                if self.trace is not None:
                    self.trace.span(
                        "reduction.match", self.trace_track, started, now, depth=depth, rule=rule.name
                    )
                removed, dirty, kept = self._apply(rule, match, solution, depth, report)
                applied += 1
                for atom in removed:
                    state.forget(atom)
                if rule.one_shot:
                    state.forget(rule)
                if kept:
                    # delta path: the kept-and-repositioned anchors now play
                    # the role of fresh rebuild products — matchable again
                    # within this pass (unclaimed), but never as this pass's
                    # frontier leads (their pass-start entries are stale).
                    kept_ids = {id(atom) for atom in kept}
                    for kept_id in kept_ids:
                        claimed.pop(kept_id, None)
                    if dirty_entries is not None:
                        dirty_entries = [
                            entry for entry in dirty_entries if id(entry.atom) not in kept_ids
                        ]
                for atom in dirty:
                    state.mark_next(atom)
                    if atom.kind == "rule":
                        rescan = True
                started = perf_counter()
                if rule.one_shot:
                    break  # replace-one: the rule is gone
        now = perf_counter()
        report.timings["match"] += now - started
        if self.trace is not None:
            self.trace.span("reduction.match", self.trace_track, started, now, depth=depth)
        if applied:
            report.batches += 1
        if rescan:
            state.reset()
        else:
            state.advance()
        return applied

    def _has_applicable_rule(self, solution: Multiset, report: ReductionReport) -> bool:
        if self.incremental and solution.known_inert:
            return False
        for nested in self._nested_solutions(solution):
            if self._has_applicable_rule(nested, report):
                return True
        for rule in self._ordered_rules(solution):
            if self.incremental and not self._plausible(rule, solution):
                continue
            report.match_attempts += 1
            if self._find_match_excluding_self(rule, solution) is not None:
                return True
        if self.incremental:
            # nothing can fire here or below: remember it (atoms untouched —
            # `is_inert` stays non-mutating, only the cache marker is set).
            solution.note_inert()
        return False

    @staticmethod
    def _find_match_excluding_self(rule: Rule, solution: Multiset) -> Match | None:
        """First match of ``rule`` whose consumed atoms do not include the rule itself."""
        for match in rule.find_all_matches(solution):
            if not any(consumed is rule for consumed in match.consumed):
                return match
        return None

    def _apply(
        self, rule: Rule, match: Match, solution: Multiset, depth: int, report: ReductionReport
    ) -> tuple[list[Atom], list[Atom], list[Atom]]:
        """Fire ``rule`` on ``match``; returns ``(removed, dirty, kept)``.

        ``removed`` lists the top-level atoms the reaction took out of the
        solution and ``dirty`` the atoms it left needing another look —
        inserted products plus, on the delta path, every kept matched atom.
        ``kept`` is the delta path's kept-and-repositioned subset of
        ``dirty`` (empty on the rebuild path): the batched engine must treat
        those exactly like fresh products — release them from the pass's
        claim set and drop them from the pass's remaining frontier leads —
        so both paths enumerate identically.
        """
        started = perf_counter()
        delta = rule.delta if self.delta else None
        if delta is not None:
            try:
                applied = delta.apply(match, solution, self.externals)
            except Exception as exc:  # noqa: BLE001 - context added
                raise ReductionError(
                    f"rule {rule.name!r} failed to apply its rewrite delta: {exc}"
                ) from exc
            patched_at = perf_counter()
            report.timings["patch"] += patched_at - started
            if rule.one_shot:
                # the rule removes itself once fired (replace-one semantics)
                try:
                    solution.remove_identical(rule)
                except KeyError:
                    solution.discard(rule)
            indexed_at = perf_counter()
            report.timings["index"] += indexed_at - patched_at
            report.patched += 1
            if self.trace is not None:
                self.trace.span(
                    "reduction.patch",
                    self.trace_track,
                    started,
                    patched_at,
                    rule=rule.name,
                    depth=depth,
                    index_seconds=indexed_at - patched_at,
                )
            removed = applied.removed
            kept = applied.kept
            dirty = kept + applied.added
        else:
            try:
                products = rule.produce(match, self.externals)
            except Exception as exc:  # noqa: BLE001 - context added
                raise ReductionError(
                    f"rule {rule.name!r} failed to produce its products: {exc}"
                ) from exc
            produced_at = perf_counter()
            report.timings["rewrite"] += produced_at - started
            for consumed in match.consumed:
                solution.remove_identical(consumed)
            if rule.one_shot:
                # the rule removes itself once fired (replace-one semantics)
                try:
                    solution.remove_identical(rule)
                except KeyError:
                    solution.discard(rule)
            for atom in products:
                solution.add(atom)
            indexed_at = perf_counter()
            report.timings["index"] += indexed_at - produced_at
            if self.trace is not None:
                self.trace.span(
                    "reduction.rewrite",
                    self.trace_track,
                    started,
                    produced_at,
                    rule=rule.name,
                    depth=depth,
                    index_seconds=indexed_at - produced_at,
                )
            removed = list(match.consumed)
            dirty = products
            kept = []
        report.reactions += 1
        report.rule_fires[rule.name] = report.rule_fires.get(rule.name, 0) + 1
        report.history.append(
            ReactionRecord(
                rule=rule.name, depth=depth, consumed=len(match.consumed), produced=len(dirty)
            )
        )
        rule.fire_effect(match)
        if self.observer is not None:
            self.observer(rule, match, depth)
        return removed, dirty, kept


def reduce_solution(
    solution: Multiset,
    externals: ExternalRegistry | None = None,
    max_steps: int = 100_000,
) -> ReductionReport:
    """Convenience wrapper: reduce ``solution`` with a fresh engine."""
    return ReductionEngine(externals=externals, max_steps=max_steps).reduce(solution)


def is_inert(solution: Multiset, externals: ExternalRegistry | None = None) -> bool:
    """Convenience wrapper: whether ``solution`` is inert."""
    return ReductionEngine(externals=externals).is_inert(solution)
