"""The multiset (chemical solution) container.

A :class:`Multiset` is an unordered bag of :class:`~repro.hocl.atoms.Atom`
instances that may contain duplicates.  It is the single data structure the
HOCL reduction engine rewrites: rules consume atoms from it and inject new
atoms into it.

The implementation keeps an insertion-ordered list internally (which makes
reduction deterministic for a given engine policy and greatly simplifies
testing) but none of the public semantics depend on that order.

Incrementality support
----------------------
Reduction dominates the cost of large GinFlow runs, so the multiset carries
three pieces of book-keeping that let the engine work incrementally:

* a **version counter** (:attr:`version`), bumped on every mutation and
  propagated up the chain of enclosing solutions (a sub-solution knows the
  multiset that currently contains it), so any change anywhere in the tree
  invalidates the cached inertness of every ancestor;
* a **candidate index** keyed by the "head shape" of each atom (rule name,
  bare-symbol name, tuple head symbol, or atom kind), from which the matcher
  draws candidates instead of scanning every atom for every pattern — see
  :func:`atom_index_keys`;
* an **inertness marker** (:meth:`note_inert` / :attr:`known_inert`): the
  engine stamps the version at which a solution was proven inert and skips
  re-reducing it while the version is unchanged.

The index stores one *occurrence entry* per stored atom (the same atom
object added twice yields two entries), preserving global insertion order
within every bucket; this is what keeps the indexed matcher's candidate
enumeration — and therefore the reduction trace — identical to a naive scan.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .atoms import (
    Atom,
    BoolAtom,
    FloatAtom,
    IntAtom,
    ListAtom,
    StringAtom,
    Subsolution,
    Symbol,
    TupleAtom,
    to_atom,
)

__all__ = ["Multiset", "atom_index_keys"]

#: Index key of the bucket holding every rule atom.
_KIND_RULE = ("kind", "rule")

#: Shared empty bucket returned for absent keys (never mutated).
_EMPTY_BUCKET: list = []


def _nested_solutions_of(atom: Atom) -> "list[Multiset]":
    """The solutions directly nested in ``atom``, in reduction order.

    Mirrors the engine's depth-first descent: a sub-solution atom contributes
    its own solution, and a tuple contributes the solutions of its
    sub-solution elements (this is how task fields are encoded).  Solutions
    inside list atoms are *not* reduced by the engine and are excluded.
    """
    if isinstance(atom, Subsolution):
        return [atom.solution]
    if isinstance(atom, TupleAtom):
        return [
            element.solution for element in atom.elements if isinstance(element, Subsolution)
        ]
    return []


def atom_index_keys(atom: Atom) -> tuple[Any, ...]:
    """The index buckets ``atom`` belongs to, most specific first.

    Every atom lands in its *kind* bucket ``("kind", atom.kind)``; atoms with
    a distinguishing head additionally land in a specific bucket:

    * rules → ``("rule", name)``,
    * bare symbols → ``("symbol", name)``,
    * tuples with a symbol head → ``("tuple", head_name)``.

    Structurally equal atoms always share the same buckets, so the specific
    bucket named by a pattern's :meth:`~repro.hocl.patterns.Pattern.index_key`
    is guaranteed to contain every atom that pattern could match.

    Keys are immutable per atom (a tuple's head never changes), so they are
    computed once and cached — per instance for symbols/tuples/rules, as a
    class-level constant for the single-bucket kinds.
    """
    cached = atom._index_keys
    if cached is not None:
        return cached
    kind_key = ("kind", atom.kind)
    if isinstance(atom, Symbol):
        keys: tuple[Any, ...] = (("symbol", atom.name), kind_key)
    elif isinstance(atom, TupleAtom):
        head = atom.head_symbol()
        keys = (("tuple", head), kind_key) if head is not None else (kind_key,)
    elif atom.kind == "rule":
        keys = (("rule", atom.name), kind_key)  # type: ignore[attr-defined]
    else:
        keys = (kind_key,)
    try:
        atom._index_keys = keys
    except AttributeError:
        pass  # class without a cache slot (covered by the constants below)
    return keys


# Single-bucket kinds: every instance shares the same keys — store them as
# class-level constants so `atom_index_keys` returns without any allocation.
for _atom_class in (IntAtom, FloatAtom, BoolAtom, StringAtom, ListAtom, Subsolution):
    _atom_class._index_keys = (("kind", _atom_class.kind),)
del _atom_class


class _Entry:
    """One stored occurrence of an atom (duplicates get distinct entries)."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_Entry({self.atom!r})"


class Multiset:
    """An unordered bag of atoms with duplicates, the HOCL *solution*.

    Parameters
    ----------
    contents:
        Optional iterable of atoms or plain Python values (coerced with
        :func:`~repro.hocl.atoms.to_atom`).
    """

    __slots__ = (
        "_entries",
        "_index",
        "_version",
        "_parents",
        "_inert_version",
        "_rules_cache",
        "_rules_dirty",
        "_nested",
        "_content_hash",
        "_hash_version",
        "_reject_cache",
    )

    def __init__(self, contents: Iterable[Any] = ()):  # noqa: B008
        self._entries: list[_Entry] = []
        self._index: dict[Any, list[_Entry]] = {}
        self._version = 0
        #: every multiset currently containing this one (via a Subsolution
        #: atom), used to propagate invalidation upwards.  One entry per
        #: containment, so aliasing a sub-solution into several solutions —
        #: or twice into the same one — keeps all of them invalidated.
        self._parents: list[Multiset] = []
        self._inert_version = -1
        self._rules_cache: list[Atom] = []
        self._rules_dirty = True
        #: directly nested solutions in reduction order (sub-solution atoms,
        #: plus sub-solutions stored inside tuple elements) — maintained on
        #: every add/remove so the engine's depth-first descent does not
        #: rescan every atom after every reaction.  Each occurrence is tagged
        #: with its owning entry so removal is positional even when the same
        #: solution object is aliased into several entries.
        self._nested: list[tuple[_Entry, Multiset]] = []
        self._content_hash = 0
        self._hash_version = -1
        #: pattern -> version at which the pattern's quick check proved the
        #: solution unmatchable; valid while the version is unchanged (see
        #: SolutionPattern.quick_reject).  Keyed by the pattern object itself
        #: (identity hash) so a recycled id can never alias a stale entry.
        self._reject_cache: dict[Any, int] = {}
        for value in contents:
            self.add(value)

    # ------------------------------------------------------------ versioning
    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (here or below)."""
        return self._version

    @property
    def known_inert(self) -> bool:
        """Whether the solution was proven inert at its current version."""
        return self._inert_version == self._version

    def note_inert(self) -> None:
        """Record that the solution (including nested ones) is inert *now*.

        Called by the reduction engine once no rule can fire anywhere in the
        solution tree; any later mutation invalidates the marker by bumping
        the version.
        """
        self._inert_version = self._version

    def _touch(self) -> None:
        """Bump this solution's version and every enclosing solution's.

        Walks the whole parent graph (a solution may be contained several
        times) with a visited guard, so even pathological aliasing cycles
        terminate.
        """
        self._version += 1
        if not self._parents:
            return
        seen = {id(self)}
        stack: list[Multiset] = list(self._parents)
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node._version += 1
            stack.extend(node._parents)

    def _adopt(self, atom: Atom) -> None:
        """Register this multiset as a parent of solutions nested in ``atom``."""
        if isinstance(atom, Subsolution):
            atom.solution._parents.append(self)
        elif isinstance(atom, TupleAtom):
            for element in atom.elements:
                if element._mutable:
                    self._adopt(element)
        elif isinstance(atom, ListAtom):
            for item in atom.items:
                if item._mutable:
                    self._adopt(item)

    def _disown(self, atom: Atom) -> None:
        """Drop one parent registration per solution nested in ``atom``."""
        if isinstance(atom, Subsolution):
            parents = atom.solution._parents
            for index, parent in enumerate(parents):
                if parent is self:
                    del parents[index]
                    break
        elif isinstance(atom, TupleAtom):
            for element in atom.elements:
                if element._mutable:
                    self._disown(element)
        elif isinstance(atom, ListAtom):
            for item in atom.items:
                if item._mutable:
                    self._disown(item)

    # ------------------------------------------------------------------ core
    def add(self, value: Any) -> Atom:
        """Add a single atom (coercing plain values) and return it."""
        atom = to_atom(value)
        entry = _Entry(atom)
        self._entries.append(entry)
        index = self._index
        for key in atom_index_keys(atom):
            bucket = index.get(key)
            if bucket is None:
                index[key] = [entry]
            else:
                bucket.append(entry)
        if atom.kind == "rule":
            self._rules_dirty = True
        if atom._mutable:
            # only atoms holding a sub-solution somewhere need parent wiring
            # and nested-solution tracking
            for solution in _nested_solutions_of(atom):
                self._nested.append((entry, solution))
            self._adopt(atom)
        self._touch()
        return atom

    def add_all(self, values: Iterable[Any]) -> list[Atom]:
        """Add every value from ``values``; returns the added atoms."""
        return [self.add(v) for v in values]

    def remove(self, atom: Any) -> None:
        """Remove one occurrence of ``atom`` (structural equality).

        Raises
        ------
        KeyError
            If no equal atom is present.
        """
        target = to_atom(atom)
        for index, entry in enumerate(self._entries):
            if entry.atom == target:
                self._remove_at(index)
                return
        raise KeyError(f"atom not in multiset: {target!r}")

    def discard(self, atom: Any) -> bool:
        """Remove one occurrence of ``atom`` if present; return whether it was."""
        try:
            self.remove(atom)
            return True
        except KeyError:
            return False

    def remove_identical(self, atom: Atom) -> None:
        """Remove the exact object ``atom`` (identity, not equality).

        The matcher records the identity of the atoms it consumed so the
        engine can delete precisely those occurrences even when duplicates
        exist.
        """
        for index, entry in enumerate(self._entries):
            if entry.atom is atom:
                self._remove_at(index)
                return
        raise KeyError(f"atom object not in multiset: {atom!r}")

    def _remove_at(self, index: int) -> None:
        entry = self._entries.pop(index)
        atom = entry.atom
        for key in atom_index_keys(atom):
            bucket = self._index.get(key)
            if bucket is None:
                continue
            for position, candidate in enumerate(bucket):
                if candidate is entry:
                    del bucket[position]
                    break
            if not bucket:
                del self._index[key]
        if atom.kind == "rule":
            self._rules_dirty = True
        if atom._mutable:
            # drop exactly this entry's occurrences (identity on the entry,
            # not the solution: the same solution may be aliased elsewhere)
            self._nested = [pair for pair in self._nested if pair[0] is not entry]
            self._disown(atom)
        self._touch()

    def clear(self) -> None:
        """Remove every atom."""
        for entry in self._entries:
            if entry.atom._mutable:
                self._disown(entry.atom)
        self._entries.clear()
        self._index.clear()
        self._nested.clear()
        self._rules_dirty = True
        self._touch()

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Atom]:
        return iter([entry.atom for entry in self._entries])

    def __contains__(self, value: Any) -> bool:
        target = to_atom(value)
        return any(entry.atom == target for entry in self._entries)

    def count(self, value: Any) -> int:
        """Number of occurrences equal to ``value``."""
        target = to_atom(value)
        return sum(1 for entry in self._entries if entry.atom == target)

    def atoms(self) -> list[Atom]:
        """A snapshot list of the current atoms (safe to iterate while mutating)."""
        return [entry.atom for entry in self._entries]

    def find(self, predicate: Callable[[Atom], bool]) -> Atom | None:
        """Return the first atom satisfying ``predicate``, or ``None``."""
        for entry in self._entries:
            if predicate(entry.atom):
                return entry.atom
        return None

    def find_all(self, predicate: Callable[[Atom], bool]) -> list[Atom]:
        """Return every atom satisfying ``predicate``."""
        return [entry.atom for entry in self._entries if predicate(entry.atom)]

    # ------------------------------------------------------- index interface
    def candidate_entries(self, key: Any) -> list[_Entry]:
        """Occurrence entries a pattern with index key ``key`` should try.

        ``None`` means the pattern is unconstrained: every occurrence is a
        candidate.  Entries come back in insertion order (a subsequence of
        the full enumeration order), which is what keeps indexed matching
        trace-identical to a naive scan.  The returned list is a snapshot,
        safe to iterate across mutations.
        """
        if key is None:
            return list(self._entries)
        return list(self._index.get(key, ()))

    def live_entries(self, key: Any = None) -> list[_Entry]:
        """Like :meth:`candidate_entries` but returning the *live* internal
        list (no copy) — the matcher's inner loops use this on sub-solutions,
        where a snapshot per candidate would dominate the match cost.  Callers
        must not mutate the result nor hold it across solution mutations.
        """
        if key is None:
            return self._entries
        return self._index.get(key, _EMPTY_BUCKET)

    def candidates(self, key: Any) -> list[Atom]:
        """The atoms a pattern with index key ``key`` could match (in order)."""
        return [entry.atom for entry in self.candidate_entries(key)]

    def has_candidates(self, key: Any) -> bool:
        """Whether at least one atom lives in bucket ``key`` (``None``: any)."""
        if key is None:
            return bool(self._entries)
        return key in self._index

    def rules_by_priority(self) -> list[Atom]:
        """Rules ordered by the engine policy: priority desc, insertion order.

        The ordering is cached and only recomputed when a rule is added or
        removed — data mutations (the common case) leave it untouched.
        """
        if self._rules_dirty:
            bucket = self._index.get(_KIND_RULE, ())
            # stable sort: priority descending, insertion order among equals
            self._rules_cache = sorted(
                (entry.atom for entry in bucket),
                key=lambda rule: -rule.priority,  # type: ignore[attr-defined]
            )
            self._rules_dirty = False
        return self._rules_cache

    # ------------------------------------------------ HOCLflow-style helpers
    def find_tuple(self, head: str) -> TupleAtom | None:
        """Return the first tuple atom whose head symbol is ``head``.

        This is the idiomatic way to address the ``SRC``/``DST``/``SRV``/
        ``IN``/``PAR``/``RES`` fields of a task sub-solution.
        """
        bucket = self._index.get(("tuple", head))
        if bucket:
            atom = bucket[0].atom
            assert isinstance(atom, TupleAtom)
            return atom
        return None

    def find_tuples(self, head: str) -> list[TupleAtom]:
        """Return every tuple atom whose head symbol is ``head``."""
        return [entry.atom for entry in self._index.get(("tuple", head), ())]  # type: ignore[misc]

    def replace_tuple(self, head: str, new_tuple: TupleAtom) -> None:
        """Replace the (single) tuple with head ``head`` by ``new_tuple``.

        Adds ``new_tuple`` if no such tuple exists.
        """
        existing = self.find_tuple(head)
        if existing is not None:
            self.remove_identical(existing)
        self.add(new_tuple)

    def has_symbol(self, name: str) -> bool:
        """Whether a bare :class:`~repro.hocl.atoms.Symbol` ``name`` is present."""
        return ("symbol", name) in self._index

    def remove_symbol(self, name: str) -> bool:
        """Remove one occurrence of symbol ``name`` if present."""
        return self.discard(Symbol(name))

    def subsolutions(self) -> list[Subsolution]:
        """Every top-level sub-solution atom."""
        return [entry.atom for entry in self._index.get(("kind", "solution"), ())]  # type: ignore[misc]

    def nested_solutions(self) -> list["Multiset"]:
        """Directly nested solutions in reduction order (maintained, not scanned).

        The list contains the solutions of every top-level sub-solution atom
        and of every sub-solution stored inside a tuple element, in entry
        order — exactly the depth-first descent order of the reduction
        engine.  Returns a snapshot safe to iterate across mutations.
        """
        return [solution for _entry, solution in self._nested]

    def nested_solution_items(self) -> list[tuple[Atom, "Multiset"]]:
        """Like :meth:`nested_solutions`, paired with the atom holding each.

        The batched engine uses the owning atom to mark the right top-level
        candidate dirty when a nested reduction changed something below it.
        Returns a snapshot safe to iterate across mutations.
        """
        return [(entry.atom, solution) for entry, solution in self._nested]

    def rules(self) -> list[Atom]:
        """Every top-level rule atom (higher-order content of the solution)."""
        return [entry.atom for entry in self._index.get(_KIND_RULE, ())]

    def non_rule_atoms(self) -> list[Atom]:
        """Every top-level atom that is not a rule (the 'data' of the solution)."""
        return [entry.atom for entry in self._entries if entry.atom.kind != "rule"]

    # ------------------------------------------------------------- structure
    def copy(self) -> "Multiset":
        """Deep copy of the multiset (sub-solutions are copied recursively)."""
        clone = Multiset()
        for entry in self._entries:
            clone.add(entry.atom.copy())
        return clone

    def union(self, other: "Multiset") -> "Multiset":
        """A new multiset with the contents of both operands."""
        result = self.copy()
        for item in other:
            result.add(item.copy())
        return result

    def size_recursive(self) -> int:
        """Total number of atoms including the contents of nested solutions.

        The paper notes that the cost of the pattern-matching process grows
        with the size of the solution; the simulation cost model uses this
        measure.
        """
        total = 0
        for entry in self._entries:
            item = entry.atom
            total += 1
            if isinstance(item, Subsolution):
                total += item.solution.size_recursive()
            elif isinstance(item, TupleAtom):
                total += sum(
                    element.solution.size_recursive()
                    for element in item.elements
                    if isinstance(element, Subsolution)
                )
        return total

    def content_hash(self) -> int:
        """Order-insensitive structural hash of the contents, cached per version."""
        if self._hash_version != self._version:
            self._content_hash = hash(tuple(sorted(hash(entry.atom) for entry in self._entries)))
            self._hash_version = self._version
        return self._content_hash

    # -------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        if self is other:
            return True
        if len(self._entries) != len(other._entries):
            return False
        if (
            self._hash_version == self._version
            and other._hash_version == other._version
            and self._content_hash != other._content_hash
        ):
            # both hashes are fresh and differ: contents cannot be equal
            return False
        remaining = [entry.atom for entry in other._entries]
        for entry in self._entries:
            item = entry.atom
            for index, candidate in enumerate(remaining):
                if candidate == item:
                    del remaining[index]
                    break
            else:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Multiset({self.atoms()!r})"

    def __str__(self) -> str:
        return "<" + ", ".join(str(entry.atom) for entry in self._entries) + ">"
