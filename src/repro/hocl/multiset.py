"""The multiset (chemical solution) container.

A :class:`Multiset` is an unordered bag of :class:`~repro.hocl.atoms.Atom`
instances that may contain duplicates.  It is the single data structure the
HOCL reduction engine rewrites: rules consume atoms from it and inject new
atoms into it.

The implementation keeps an insertion-ordered list internally (which makes
reduction deterministic for a given engine policy and greatly simplifies
testing) but none of the public semantics depend on that order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .atoms import Atom, Subsolution, Symbol, TupleAtom, to_atom

__all__ = ["Multiset"]


class Multiset:
    """An unordered bag of atoms with duplicates, the HOCL *solution*.

    Parameters
    ----------
    contents:
        Optional iterable of atoms or plain Python values (coerced with
        :func:`~repro.hocl.atoms.to_atom`).
    """

    __slots__ = ("_items",)

    def __init__(self, contents: Iterable[Any] = ()):  # noqa: B008
        self._items: list[Atom] = [to_atom(value) for value in contents]

    # ------------------------------------------------------------------ core
    def add(self, value: Any) -> Atom:
        """Add a single atom (coercing plain values) and return it."""
        atom = to_atom(value)
        self._items.append(atom)
        return atom

    def add_all(self, values: Iterable[Any]) -> list[Atom]:
        """Add every value from ``values``; returns the added atoms."""
        return [self.add(v) for v in values]

    def remove(self, atom: Any) -> None:
        """Remove one occurrence of ``atom`` (structural equality).

        Raises
        ------
        KeyError
            If no equal atom is present.
        """
        target = to_atom(atom)
        for index, item in enumerate(self._items):
            if item == target:
                del self._items[index]
                return
        raise KeyError(f"atom not in multiset: {target!r}")

    def discard(self, atom: Any) -> bool:
        """Remove one occurrence of ``atom`` if present; return whether it was."""
        try:
            self.remove(atom)
            return True
        except KeyError:
            return False

    def remove_identical(self, atom: Atom) -> None:
        """Remove the exact object ``atom`` (identity, not equality).

        The matcher records the identity of the atoms it consumed so the
        engine can delete precisely those occurrences even when duplicates
        exist.
        """
        for index, item in enumerate(self._items):
            if item is atom:
                del self._items[index]
                return
        raise KeyError(f"atom object not in multiset: {atom!r}")

    def clear(self) -> None:
        """Remove every atom."""
        self._items.clear()

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Atom]:
        return iter(list(self._items))

    def __contains__(self, value: Any) -> bool:
        target = to_atom(value)
        return any(item == target for item in self._items)

    def count(self, value: Any) -> int:
        """Number of occurrences equal to ``value``."""
        target = to_atom(value)
        return sum(1 for item in self._items if item == target)

    def atoms(self) -> list[Atom]:
        """A snapshot list of the current atoms (safe to iterate while mutating)."""
        return list(self._items)

    def find(self, predicate: Callable[[Atom], bool]) -> Atom | None:
        """Return the first atom satisfying ``predicate``, or ``None``."""
        for item in self._items:
            if predicate(item):
                return item
        return None

    def find_all(self, predicate: Callable[[Atom], bool]) -> list[Atom]:
        """Return every atom satisfying ``predicate``."""
        return [item for item in self._items if predicate(item)]

    # ------------------------------------------------ HOCLflow-style helpers
    def find_tuple(self, head: str) -> TupleAtom | None:
        """Return the first tuple atom whose head symbol is ``head``.

        This is the idiomatic way to address the ``SRC``/``DST``/``SRV``/
        ``IN``/``PAR``/``RES`` fields of a task sub-solution.
        """
        for item in self._items:
            if isinstance(item, TupleAtom) and item.head_symbol() == head:
                return item
        return None

    def find_tuples(self, head: str) -> list[TupleAtom]:
        """Return every tuple atom whose head symbol is ``head``."""
        return [
            item
            for item in self._items
            if isinstance(item, TupleAtom) and item.head_symbol() == head
        ]

    def replace_tuple(self, head: str, new_tuple: TupleAtom) -> None:
        """Replace the (single) tuple with head ``head`` by ``new_tuple``.

        Adds ``new_tuple`` if no such tuple exists.
        """
        existing = self.find_tuple(head)
        if existing is not None:
            self.remove_identical(existing)
        self.add(new_tuple)

    def has_symbol(self, name: str) -> bool:
        """Whether a bare :class:`~repro.hocl.atoms.Symbol` ``name`` is present."""
        return any(isinstance(item, Symbol) and item.name == name for item in self._items)

    def remove_symbol(self, name: str) -> bool:
        """Remove one occurrence of symbol ``name`` if present."""
        return self.discard(Symbol(name))

    def subsolutions(self) -> list[Subsolution]:
        """Every top-level sub-solution atom."""
        return [item for item in self._items if isinstance(item, Subsolution)]

    def rules(self) -> list[Atom]:
        """Every top-level rule atom (higher-order content of the solution)."""
        from .rules import Rule  # local import to avoid a cycle

        return [item for item in self._items if isinstance(item, Rule)]

    def non_rule_atoms(self) -> list[Atom]:
        """Every top-level atom that is not a rule (the 'data' of the solution)."""
        from .rules import Rule

        return [item for item in self._items if not isinstance(item, Rule)]

    # ------------------------------------------------------------- structure
    def copy(self) -> "Multiset":
        """Deep copy of the multiset (sub-solutions are copied recursively)."""
        clone = Multiset()
        clone._items = [item.copy() for item in self._items]
        return clone

    def union(self, other: "Multiset") -> "Multiset":
        """A new multiset with the contents of both operands."""
        result = self.copy()
        for item in other:
            result.add(item.copy())
        return result

    def size_recursive(self) -> int:
        """Total number of atoms including the contents of nested solutions.

        The paper notes that the cost of the pattern-matching process grows
        with the size of the solution; the simulation cost model uses this
        measure.
        """
        total = 0
        for item in self._items:
            total += 1
            if isinstance(item, Subsolution):
                total += item.solution.size_recursive()
            elif isinstance(item, TupleAtom):
                total += sum(
                    element.solution.size_recursive()
                    for element in item.elements
                    if isinstance(element, Subsolution)
                )
        return total

    # -------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        if len(self._items) != len(other._items):
            return False
        remaining = list(other._items)
        for item in self._items:
            for index, candidate in enumerate(remaining):
                if candidate == item:
                    del remaining[index]
                    break
            else:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Multiset({self._items!r})"

    def __str__(self) -> str:
        return "<" + ", ".join(str(item) for item in self._items) + ">"
