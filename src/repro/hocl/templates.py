"""Right-hand-side templates of HOCL rules.

The product (``by`` part) of a rule is described by *templates*.  When a rule
fires, every template is expanded under the match bindings to produce the
atoms injected back into the solution.

Template nodes
--------------
``Ref(name)``
    Insert the atom bound to variable ``name``.
``Splice(name)``
    Splice the list bound to omega variable ``name`` (zero or more atoms)
    into the enclosing solution / tuple / argument list.
``TupleTemplate(*elements)``
    Build a :class:`~repro.hocl.atoms.TupleAtom`.
``SolutionTemplate(*elements)``
    Build a :class:`~repro.hocl.atoms.Subsolution`.
``ListTemplate(*elements)``
    Build a :class:`~repro.hocl.atoms.ListAtom`.
``Call(function, *arguments)``
    Invoke an external function (see :mod:`repro.hocl.externals`) on the
    expanded arguments; the returned value(s) are coerced to atoms.  This is
    how ``gw_call`` invokes the service (``invoke(s, par)``) and how
    ``gw_setup`` builds the parameter list (``list(w)``).
``Compute(callable)``
    Escape hatch: call a Python function ``callable(bindings)`` and coerce
    its result.  Used by the GinFlow middleware for rules whose effect is a
    message send rather than a pure rewrite.

Any plain value (or :class:`~repro.hocl.atoms.Atom`) used as a template is a
literal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from .atoms import Atom, ListAtom, Subsolution, TupleAtom, to_atom
from .errors import ExternalFunctionError, PatternError
from .patterns import Bindings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .externals import ExternalRegistry

__all__ = [
    "Template",
    "Ref",
    "Splice",
    "TupleTemplate",
    "SolutionTemplate",
    "ListTemplate",
    "Call",
    "Compute",
    "expand_template",
    "expand_templates",
    "template_referenced_names",
]


class Template:
    """Abstract base class for product templates."""

    __slots__ = ()

    def expand(self, bindings: Bindings, externals: "ExternalRegistry | None") -> list[Atom]:
        """Return the atoms this template produces under ``bindings``."""
        raise NotImplementedError

    def referenced_names(self) -> set[str]:
        """Variable names :meth:`expand` reads from the bindings.

        The static-analysis entry point: :mod:`repro.analysis` compares this
        set against the pattern's bound names without expanding anything.
        Opaque templates (:class:`Compute`) return the empty set — they must
        be treated as unanalysable by callers, not as reference-free.
        """
        return set()


class Ref(Template):
    """Insert the single atom bound to variable ``name``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        if self.name not in bindings:
            raise PatternError(f"product references unbound variable {self.name!r}")
        value = bindings[self.name]
        if isinstance(value, list):
            raise PatternError(
                f"variable {self.name!r} is an omega binding; use Splice({self.name!r})"
            )
        return [to_atom(value)]

    def referenced_names(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Ref({self.name!r})"


class Splice(Template):
    """Splice the atoms captured by omega variable ``name`` (possibly none)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        if self.name not in bindings:
            raise PatternError(f"product references unbound omega {self.name!r}")
        value = bindings[self.name]
        if not isinstance(value, list):
            return [to_atom(value)]
        return [to_atom(item) for item in value]

    def referenced_names(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Splice({self.name!r})"


class TupleTemplate(Template):
    """Build a tuple atom from element templates (splices are flattened)."""

    __slots__ = ("elements",)

    def __init__(self, *elements: Any) -> None:
        self.elements = tuple(elements)

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        produced: list[Atom] = []
        for element in self.elements:
            produced.extend(expand_template(element, bindings, externals))
        return [TupleAtom(produced)]

    def referenced_names(self) -> set[str]:
        return _referenced_in_all(self.elements)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TupleTemplate({', '.join(repr(e) for e in self.elements)})"


class SolutionTemplate(Template):
    """Build a sub-solution atom from element templates."""

    __slots__ = ("elements",)

    def __init__(self, *elements: Any) -> None:
        self.elements = tuple(elements)

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        produced: list[Atom] = []
        for element in self.elements:
            produced.extend(expand_template(element, bindings, externals))
        return [Subsolution(produced)]

    def referenced_names(self) -> set[str]:
        return _referenced_in_all(self.elements)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SolutionTemplate({', '.join(repr(e) for e in self.elements)})"


class ListTemplate(Template):
    """Build an HOCLflow list atom from element templates."""

    __slots__ = ("elements",)

    def __init__(self, *elements: Any) -> None:
        self.elements = tuple(elements)

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        produced: list[Atom] = []
        for element in self.elements:
            produced.extend(expand_template(element, bindings, externals))
        return [ListAtom(produced)]

    def referenced_names(self) -> set[str]:
        return _referenced_in_all(self.elements)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ListTemplate({', '.join(repr(e) for e in self.elements)})"


class Call(Template):
    """Invoke an external function on the expanded arguments.

    The function is looked up in the :class:`~repro.hocl.externals.ExternalRegistry`
    supplied by the engine; its return value is coerced to one or more atoms
    (a returned list/tuple of atoms is spliced, any other value becomes a
    single atom).
    """

    __slots__ = ("function", "arguments")

    def __init__(self, function: str, *arguments: Any):
        self.function = function
        self.arguments = tuple(arguments)

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        if externals is None:
            raise ExternalFunctionError(
                f"rule product calls {self.function!r} but no external registry is available"
            )
        args: list[Atom] = []
        for argument in self.arguments:
            args.extend(expand_template(argument, bindings, externals))
        result = externals.invoke(self.function, args, bindings)
        return _coerce_result(result)

    def referenced_names(self) -> set[str]:
        return _referenced_in_all(self.arguments)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Call({self.function!r}, {', '.join(repr(a) for a in self.arguments)})"


class Compute(Template):
    """Call ``function(bindings)`` and coerce the result to atoms.

    The callable receives the raw bindings dictionary (atom-valued).  It may
    return ``None`` (producing no atom), a single value, or a list/tuple of
    values.  GinFlow uses this for rules whose products depend on the agent
    context (e.g. the decentralised ``gw_pass`` which sends messages).
    """

    __slots__ = ("function",)

    def __init__(self, function: Callable[[Bindings], Any]):
        self.function = function

    def expand(self, bindings: Bindings, externals: Any = None) -> list[Atom]:
        return _coerce_result(self.function(bindings))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.function!r})"


def _coerce_result(result: Any) -> list[Atom]:
    """Coerce the return value of a Call/Compute into a list of atoms."""
    if result is None:
        return []
    if isinstance(result, Atom):
        return [result]
    if isinstance(result, (list, tuple)) and all(isinstance(item, Atom) for item in result):
        return [item for item in result]
    return [to_atom(result)]


def template_referenced_names(template: Any) -> set[str]:
    """Variable names a template (or literal product value) reads when expanded."""
    if isinstance(template, Template):
        return template.referenced_names()
    return set()


def _referenced_in_all(templates: Sequence[Any]) -> set[str]:
    names: set[str] = set()
    for template in templates:
        names |= template_referenced_names(template)
    return names


def expand_template(template: Any, bindings: Bindings, externals: Any = None) -> list[Atom]:
    """Expand a single template (or literal value) into a list of atoms."""
    if isinstance(template, Template):
        return template.expand(bindings, externals)
    return [to_atom(template)]


def expand_templates(
    templates: Sequence[Any], bindings: Bindings, externals: Any = None
) -> list[Atom]:
    """Expand a sequence of templates into the flat list of produced atoms."""
    produced: list[Atom] = []
    for template in templates:
        produced.extend(expand_template(template, bindings, externals))
    return produced
