"""Reaction rules — the higher-order citizens of HOCL.

A :class:`Rule` pairs a left-hand side (a sequence of patterns plus an
optional reaction condition) with a right-hand side (a sequence of product
templates).  Rules are themselves atoms, so they live inside the solution
they rewrite, can be matched by other rules (higher order), and can be
injected or removed at run time — which is exactly the mechanism GinFlow uses
for on-the-fly workflow adaptation.

Two firing disciplines exist, mirroring the paper's syntax:

* ``replace`` (``one_shot=False``) — the rule stays in the solution after it
  fires and may fire again (n-shot), like ``gw_pass``.
* ``replace-one`` (``one_shot=True``) — the rule disappears from the solution
  once it has fired, like ``gw_setup`` and ``gw_call``.  The paper relies on
  this to make duplicate message deliveries harmless after an agent recovery.

The ``with X inject M`` sugar of HOCLflow is provided by
:func:`Rule.with_inject`: it keeps the matched atoms and adds the injected
ones (it is defined in the paper as ``replace-one X by X, M``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from .atoms import Atom, from_atom
from .deltas import RewriteDelta
from .errors import RuleError
from .matching import Match, find_first_match, find_matches, find_matches_pinned
from .multiset import Multiset
from .patterns import Bindings, as_pattern
from .templates import Compute, expand_templates, template_referenced_names

__all__ = ["BindingView", "Rule", "replace", "replace_one", "with_inject"]


class BindingView(dict):
    """A bindings dictionary with convenience accessors.

    The raw mapping stores atom objects (or lists of atoms for omegas); the
    :meth:`value` helper unwraps them into plain Python values, which is what
    reaction conditions usually want (``lambda b: b.value("x") >= b.value("y")``).
    """

    def value(self, name: str) -> Any:
        """Unwrapped Python value of variable ``name``."""
        bound = self[name]
        if isinstance(bound, list):
            return [from_atom(item) for item in bound]
        return from_atom(bound)

    def atom(self, name: str) -> Any:
        """Raw atom (or list of atoms) bound to ``name``."""
        return self[name]


#: Type of reaction conditions: a predicate over the binding environment.
Condition = Callable[[BindingView], bool]

#: Type of side-effect hooks invoked when a rule fires (used by the
#: decentralised engine to emit messages).
EffectHook = Callable[[BindingView], None]


class Rule(Atom):
    """A reaction rule, itself an atom of the solution.

    Parameters
    ----------
    name:
        Rule name (``gw_setup``, ``trigger_adapt``...).  Names are what
        higher-order patterns match on, and what diagnostics print.
    patterns:
        Left-hand-side patterns; each must match a distinct atom.
    products:
        Right-hand-side templates (see :mod:`repro.hocl.templates`); plain
        values are literals.
    condition:
        Optional reaction condition on the binding environment.
    one_shot:
        ``True`` for ``replace-one`` rules, removed after firing.
    keep_matched:
        ``True`` for ``with ... inject`` rules: the matched atoms are put
        back in addition to the products.
    effect:
        Optional side-effect hook called (with the bindings) every time the
        rule fires — after the products have been computed.  The
        decentralised engine uses this to send messages to other agents.
    priority:
        Rules with a higher priority are tried first by the engine; used by
        GinFlow to favour adaptation rules over regular progress when both
        are enabled.
    delta:
        Optional :class:`~repro.hocl.deltas.RewriteDelta`: the in-place,
        copy-on-write form of the same reaction.  When present, the engine's
        default delta path applies it instead of expanding ``products`` —
        matched atoms stay in the solution (minus ``delta.consume``) and the
        delta's patches edit their nested solutions directly.  ``products``
        must still describe the equivalent full rebuild; it remains the
        reference semantics (``ReductionEngine(delta=False)``) and what the
        parity harness checks the delta against.
    """

    __slots__ = (
        "name",
        "patterns",
        "products",
        "condition",
        "one_shot",
        "keep_matched",
        "effect",
        "priority",
        "delta",
        "pattern_index_keys",
        "_index_keys",
    )
    kind = "rule"

    def __init__(
        self,
        name: str,
        patterns: Sequence[Any],
        products: Sequence[Any] = (),
        condition: Condition | None = None,
        one_shot: bool = False,
        keep_matched: bool = False,
        effect: EffectHook | None = None,
        priority: int = 0,
        delta: RewriteDelta | None = None,
    ):
        if not name:
            raise RuleError("rules require a non-empty name")
        if not patterns:
            raise RuleError(f"rule {name!r} has an empty left-hand side")
        if delta is not None:
            if keep_matched:
                raise RuleError(
                    f"rule {name!r} mixes keep_matched with a delta; a delta keeps "
                    "every matched atom not listed in its consume set already"
                )
            for index in set(delta.consume) | {op.at for op in delta.ops}:
                if not 0 <= index < len(patterns):
                    raise RuleError(
                        f"rule {name!r} delta addresses pattern {index}, but the "
                        f"left-hand side has {len(patterns)} patterns"
                    )
        self.name = name
        self.patterns = tuple(as_pattern(p) for p in patterns)
        self.products = tuple(products)
        self.condition = condition
        self.one_shot = bool(one_shot)
        self.keep_matched = bool(keep_matched)
        self.effect = effect
        self.priority = int(priority)
        self.delta = delta
        #: Per-pattern multiset index keys, precomputed once (rules are
        #: immutable).  The engine consults them to skip rules that cannot
        #: possibly match — e.g. after a reaction, only rules whose head
        #: symbols are present in the solution are tried again.
        self.pattern_index_keys = tuple(p.index_key() for p in self.patterns)
        self._index_keys = None  # lazily filled by repro.hocl.multiset.atom_index_keys

    # ----------------------------------------------------------- constructors
    @classmethod
    def with_inject(
        cls,
        name: str,
        patterns: Sequence[Any],
        inject: Sequence[Any],
        condition: Condition | None = None,
        effect: EffectHook | None = None,
        priority: int = 0,
    ) -> "Rule":
        """Build a ``with X inject M`` rule (one-shot, keeps the matched atoms)."""
        return cls(
            name,
            patterns,
            products=inject,
            condition=condition,
            one_shot=True,
            keep_matched=True,
            effect=effect,
            priority=priority,
        )

    # -------------------------------------------------------------- matching
    def _wrapped_condition(self) -> Callable[[Bindings], bool] | None:
        if self.condition is None:
            return None
        condition = self.condition

        def wrapped(bindings: Bindings) -> bool:
            # A condition that cannot even be evaluated on the candidate
            # atoms (e.g. comparing an integer with a rule) simply means the
            # reaction is not possible — mirror HOCL's typed semantics by
            # treating it as a non-match rather than an error.
            try:
                return bool(condition(BindingView(bindings)))
            except (TypeError, KeyError, AttributeError):
                return False

        return wrapped

    def find_match(self, solution: Multiset, initial_bindings: Bindings | None = None) -> Match | None:
        """First match of this rule's left-hand side in ``solution``, or ``None``."""
        return find_first_match(self.patterns, solution, self._wrapped_condition(), initial_bindings)

    def find_all_matches(
        self, solution: Multiset, exclude: "Callable[[Atom], bool] | None" = None
    ) -> Iterator[Match]:
        """Iterate over every current match of the rule in ``solution``.

        ``exclude`` skips top-level candidates by identity before any
        structural matching (see :func:`~repro.hocl.matching.find_matches`);
        the batched engine uses it to prune atoms already claimed by earlier
        reactions of the same batch.
        """
        return find_matches(self.patterns, solution, self._wrapped_condition(), exclude=exclude)

    def find_matches_from(
        self,
        solution: Multiset,
        lead: int,
        lead_entries: Sequence[Any],
        exclude: "Callable[[Atom], bool] | None" = None,
    ) -> Iterator[Match]:
        """Matches in which pattern ``lead`` consumes one of ``lead_entries``.

        The batched engine's frontier search: the patterns run in their
        declaration order with binding-narrowed bucket lookups, except that
        pattern ``lead`` only considers the given occurrence entries (atoms
        dirtied since the last pass).  See
        :func:`~repro.hocl.matching.find_matches_pinned`.
        """
        return find_matches_pinned(
            self.patterns,
            solution,
            self._wrapped_condition(),
            pinned=lead,
            pinned_entries=lead_entries,
            exclude=exclude,
        )

    def is_applicable(self, solution: Multiset) -> bool:
        """Whether the rule can fire on ``solution`` right now."""
        return self.find_match(solution) is not None

    # -------------------------------------------------------------- products
    def produce(self, match: Match, externals: Any = None) -> list[Atom]:
        """Atoms produced by firing the rule on ``match`` (not yet inserted)."""
        view = BindingView(match.bindings)
        produced: list[Atom] = []
        if self.keep_matched:
            produced.extend(match.consumed)
        produced.extend(expand_templates(self.products, view, externals))
        return produced

    def fire_effect(self, match: Match) -> None:
        """Run the side-effect hook, if any."""
        if self.effect is not None:
            self.effect(BindingView(match.bindings))

    # --------------------------------------------------------- introspection
    def bound_variables(self) -> set[str]:
        """Variable names bound by the left-hand side when the rule matches."""
        names: set[str] = set()
        for pattern in self.patterns:
            names |= pattern.bound_names()
        return names

    def omega_variables(self) -> set[str]:
        """Left-hand-side variable names bound to *lists* of atoms (omegas)."""
        names: set[str] = set()
        for pattern in self.patterns:
            names |= pattern.omega_names()
        return names

    def referenced_variables(self) -> set[str]:
        """Variable names the declared products read when the rule fires.

        Covers both product forms: the rebuild templates and, when present,
        the delta's patches and produce templates.
        :class:`~repro.hocl.templates.Compute` products are opaque and
        contribute nothing here; check :meth:`has_opaque_products` before
        treating the result as exhaustive.
        """
        names: set[str] = set()
        for product in self.products:
            names |= template_referenced_names(product)
        if self.delta is not None:
            names |= self.delta.referenced_names()
        return names

    def has_opaque_products(self) -> bool:
        """Whether any product is an unanalysable :class:`Compute` escape hatch."""
        return any(isinstance(product, Compute) for product in self.products)

    # -------------------------------------------------------------- identity
    def copy(self) -> "Rule":
        return self  # rules are immutable; sharing is safe

    def __eq__(self, other: object) -> bool:
        # Rules compare by identity-or-name: two rules built from the same
        # definition (same name) are interchangeable inside a solution.  This
        # matches the paper's usage where e.g. `gw_setup` denotes *the* setup
        # rule regardless of the sub-solution holding it.  The hash below
        # uses the same key, so equal rules hash equal — including the
        # one-shot `with_inject` variants a recovery re-injects.
        if self is other:
            return True
        if not isinstance(other, Rule):
            return NotImplemented
        return other.name == self.name

    def __hash__(self) -> int:
        return hash(("Rule", self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "replace-one" if self.one_shot else "replace"
        return f"Rule({self.name!r}, {mode}, {len(self.patterns)} patterns)"

    def __str__(self) -> str:
        return self.name


def replace(
    name: str,
    patterns: Sequence[Any],
    products: Sequence[Any],
    condition: Condition | None = None,
    **kwargs: Any,
) -> Rule:
    """Convenience constructor for an n-shot ``replace`` rule."""
    return Rule(name, patterns, products, condition=condition, one_shot=False, **kwargs)


def replace_one(
    name: str,
    patterns: Sequence[Any],
    products: Sequence[Any],
    condition: Condition | None = None,
    **kwargs: Any,
) -> Rule:
    """Convenience constructor for a one-shot ``replace-one`` rule."""
    return Rule(name, patterns, products, condition=condition, one_shot=True, **kwargs)


def with_inject(
    name: str,
    patterns: Sequence[Any],
    inject: Sequence[Any],
    condition: Condition | None = None,
    **kwargs: Any,
) -> Rule:
    """Convenience constructor for a ``with X inject M`` rule."""
    return Rule.with_inject(name, patterns, inject, condition=condition, **kwargs)
