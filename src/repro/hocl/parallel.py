"""Concurrent HOCL reduction: pools of engines with deterministic merges.

The decentralised runtimes shard the workflow multiset by task, so each
agent's local reduction is independent by construction; the centralised
executor holds every task sub-solution in one multiset, where the top-level
sub-solutions are independent between any two global (``gw_pass``) firings.
This module exploits both:

* :class:`ParallelReducer` — a thin executor wrapper the threaded/asyncio
  runtimes use to run per-agent reductions on a bounded pool (``run`` /
  ``run_async``), and the centralised executor uses to reduce many shards
  concurrently (:meth:`ParallelReducer.reduce_shards`);
* :func:`reduce_sharded` — the full centralised algorithm: alternate
  *parallel* reduction of every dirty top-level sub-solution with *one*
  top-level reaction pass (batched), until the whole solution is inert.

Determinism
-----------
Reports are merged in **shard index order**, never completion order, so
``rule_fires``/``timings``/``match_attempts`` accounting is reproducible and
``sum(rule_fires.values()) == reactions`` holds for the merged report (the
invariant ``ginflow audit`` checks).  The *content* of the final solution is
the same as the serial engine's for the confluent programs GinFlow runs; the
order of :attr:`~repro.hocl.engine.ReductionReport.history` may differ
(parallel shards interleave), which is why parity is checked on the final
solution hash and the reaction multiset, not the ordered history.

Process pools
-------------
``ParallelReducer(kind="process")`` opts into a process pool for the shard
phase.  Shards must then survive a pickle round-trip — including every rule
condition/effect and every external the shard's rules call.  The real
workflow rules close over runtime callbacks (``invoke``), which do not
pickle; any shard that fails to pickle is transparently reduced on threads
instead and counted in :attr:`ParallelReducer.process_fallbacks`, so the
opt-in can never corrupt a run — it only helps pure-chemistry workloads.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from .engine import ReductionEngine, ReductionReport
from .multiset import Multiset

__all__ = ["ReductionPolicy", "ParallelReducer", "reduce_sharded", "resolve_policy"]

T = TypeVar("T")


@dataclass(frozen=True)
class ReductionPolicy:
    """One named reduction strategy (the ``--reduction`` knob, resolved).

    Attributes
    ----------
    name:
        The public name (``"serial"``, ``"batch"``, ``"parallel"``).
    batch:
        Whether engines built under this policy collect whole batches of
        disjoint matches per level pass (:class:`ReductionEngine`'s
        ``batch=True``).
    parallel:
        Whether the runtimes should reduce independent shards (per-agent
        solutions, centralised top-level sub-solutions) concurrently.
    pool_kind:
        Executor family of the shard pool: ``"thread"`` (default) or the
        opt-in ``"process"`` (see the module docstring for its pickling
        contract).
    delta:
        Whether engines built under this policy apply in-place rewrite
        deltas when a rule carries one (:class:`ReductionEngine`'s
        ``delta``, default ``True``).  ``dataclasses.replace(policy,
        delta=False)`` forces the full-rebuild reference path for parity
        runs.
    """

    name: str
    batch: bool = False
    parallel: bool = False
    pool_kind: str = "thread"
    delta: bool = True

    def engine_options(self) -> dict[str, Any]:
        """Keyword arguments this policy adds to a ``ReductionEngine``."""
        return {"batch": self.batch, "delta": self.delta}

    def make_reducer(self, max_workers: int | None = None) -> "ParallelReducer | None":
        """A shard pool under this policy (``None`` when not parallel)."""
        if not self.parallel:
            return None
        return ParallelReducer(max_workers=max_workers, kind=self.pool_kind)


#: The built-in strategies behind the ``--reduction`` knob.  The runtime
#: backend registry (:mod:`repro.runtime.reduction`) re-exports these as
#: ``"reduction"`` backends; this mapping is the chemistry-level source of
#: truth, usable without importing any runtime module.
BUILTIN_POLICIES: dict[str, ReductionPolicy] = {
    "serial": ReductionPolicy("serial"),
    "batch": ReductionPolicy("batch", batch=True),
    "parallel": ReductionPolicy("parallel", batch=True, parallel=True),
}


def resolve_policy(reduction: "ReductionPolicy | str | None") -> ReductionPolicy:
    """Resolve a ``--reduction`` value (name, policy or ``None``) to a policy."""
    if reduction is None:
        return BUILTIN_POLICIES["serial"]
    if isinstance(reduction, ReductionPolicy):
        return reduction
    policy = BUILTIN_POLICIES.get(reduction)
    if policy is None:
        known = tuple(BUILTIN_POLICIES)
        raise ValueError(f"unknown reduction strategy {reduction!r}; expected one of {known}")
    return policy


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


def _reduce_shard_payload(payload: bytes) -> bytes:
    """Process-pool worker: unpickle one shard, reduce it, pickle it back."""
    shard, batch, delta, max_steps = pickle.loads(payload)
    engine = ReductionEngine(max_steps=max_steps, incremental=True, batch=batch, delta=delta)
    report = engine.reduce(shard)
    return pickle.dumps((shard, report))


class ParallelReducer:
    """A bounded executor for independent reductions, merged deterministically.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to a small CPU-derived bound (reduction is
        CPU-heavy, oversubscription only adds scheduling noise).
    kind:
        ``"thread"`` (default) or ``"process"`` (opt-in; shards that cannot
        pickle fall back to the thread path, see the module docstring).
    """

    def __init__(self, max_workers: int | None = None, kind: str = "thread"):
        if kind not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {kind!r}; expected 'thread' or 'process'")
        self.max_workers = max_workers or _default_workers()
        self.kind = kind
        #: number of shards the process path could not pickle and reduced on
        #: threads instead (diagnostic; deterministic for a fixed workload)
        self.process_fallbacks = 0
        self._threads: ThreadPoolExecutor | None = None
        self._processes: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------- lifecycle
    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="hocl-reduce"
            )
        return self._threads

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._processes is None:
            self._processes = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._processes

    def shutdown(self) -> None:
        """Tear the pools down (idempotent)."""
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None

    def __enter__(self) -> "ParallelReducer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------ primitives
    def submit(self, fn: Callable[..., T], *args: Any) -> "Future[T]":
        """Schedule ``fn(*args)`` on the thread pool."""
        return self._thread_pool().submit(fn, *args)

    def run(self, fn: Callable[..., T], *args: Any) -> T:
        """Run ``fn(*args)`` on the thread pool and wait for its result.

        This is what the threaded runtime wraps around each agent's
        reduction: the calling agent thread blocks (per-agent stimuli stay
        serialized), while the pool bounds how many reductions run at once.
        """
        return self.submit(fn, *args).result()

    async def run_async(self, fn: Callable[..., T], *args: Any) -> T:
        """Awaitable variant of :meth:`run` for the asyncio runtime."""
        import asyncio
        from functools import partial

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._thread_pool(), partial(fn, *args))

    def map(self, thunks: Sequence[Callable[[], T]]) -> list[T]:
        """Run every thunk concurrently; results in submission order."""
        futures = [self.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]

    # ---------------------------------------------------------------- shards
    def reduce_shards(
        self,
        shards: Sequence[Multiset],
        engine_factory: Callable[[], ReductionEngine],
    ) -> ReductionReport:
        """Reduce every shard to inertness concurrently; one merged report.

        Each shard gets its own engine (from ``engine_factory``) so nothing
        is shared across workers but the shards themselves — which are
        disjoint sub-solutions by contract.  Shard reports merge in shard
        index order regardless of completion order.
        """
        if not shards:
            return ReductionReport()
        if self.kind == "process":
            reports = self._reduce_shards_process(shards, engine_factory)
        else:
            futures = [
                self._thread_pool().submit(lambda s=shard: engine_factory().reduce(s))
                for shard in shards
            ]
            reports = [future.result() for future in futures]
        merged = ReductionReport()
        for report in reports:
            merged.merge(report)
        return merged

    def _reduce_shards_process(
        self,
        shards: Sequence[Multiset],
        engine_factory: Callable[[], ReductionEngine],
    ) -> list[ReductionReport]:
        """Process-pool shard phase with a per-shard thread fallback.

        A reduced shard comes back as a *copy*; its atoms are adopted into
        the original shard object in place (the parent solution references
        that object), then the shard is re-stamped inert.
        """
        probe = engine_factory()
        futures: list[tuple[int, "Future[bytes] | None"]] = []
        fallback: list[tuple[int, Multiset]] = []
        for index, shard in enumerate(shards):
            try:
                payload = pickle.dumps((shard, probe.batch, probe.delta, probe.max_steps))
            except Exception:  # noqa: BLE001 - any unpicklable rule/atom/external
                self.process_fallbacks += 1
                fallback.append((index, shard))
                futures.append((index, None))
                continue
            futures.append((index, self._process_pool().submit(_reduce_shard_payload, payload)))

        fallback_futures = {
            index: self._thread_pool().submit(lambda s=shard: engine_factory().reduce(s))
            for index, shard in fallback
        }
        reports: list[ReductionReport] = []
        for index, future in futures:
            if future is None:
                reports.append(fallback_futures[index].result())
                continue
            reduced, report = pickle.loads(future.result())
            original = shards[index]
            original.clear()
            original.add_all(reduced.atoms())
            original.note_inert()
            reports.append(report)
        return reports


def reduce_sharded(
    solution: Multiset,
    engine_factory: Callable[[], ReductionEngine],
    reducer: ParallelReducer,
    max_steps: int = 1_000_000,
) -> ReductionReport:
    """Reduce ``solution`` to inertness by alternating two phases.

    1. **Shard phase** — every *dirty* (not known-inert) top-level
       sub-solution is reduced to inertness concurrently on ``reducer``;
    2. **Surface phase** — one top-level reaction pass (a whole batch when
       the engines are batched) moves data between shards (``gw_pass`` et
       al.), dirtying the destination shards for the next round.

    The alternation repeats until a round neither reduces a shard nor fires
    a top-level reaction — which is exactly the serial engine's inertness
    condition, reached through a different (but confluent) reaction order.
    """
    surface_engine = engine_factory()
    report = ReductionReport()
    if solution.known_inert:
        return report
    while True:
        if report.reactions >= max_steps:
            report.inert = False
            return report
        dirty = [
            (atom, shard)
            for atom, shard in solution.nested_solution_items()
            if not shard.known_inert
        ]
        if dirty:
            report.merge(reducer.reduce_shards([shard for _atom, shard in dirty], engine_factory))
            if not report.inert:  # a shard hit its own step limit
                return report
            # the shard phase mutated the solution behind the surface
            # engine's back: mark the owning atoms so its frontier (when
            # batched) stays valid without a full rescan.
            surface_engine.mark_frontier(solution, [atom for atom, _shard in dirty])
        if not surface_engine.reduce_level_once(solution, report):
            if not dirty:
                solution.note_inert()
                return report
