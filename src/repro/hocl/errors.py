"""Exception hierarchy for the HOCL language core.

Every error raised by :mod:`repro.hocl` derives from :class:`HOCLError`, so
callers embedding the interpreter (the GinFlow runtime, the service agents)
can catch a single exception type at their boundary.
"""

from __future__ import annotations


class HOCLError(Exception):
    """Base class for all HOCL-related errors."""


class AtomError(HOCLError):
    """Raised when a value cannot be represented or coerced as an HOCL atom."""


class PatternError(HOCLError):
    """Raised when a pattern is structurally invalid (e.g. two omegas in one
    sub-solution pattern, or a product referencing an unbound variable)."""


class MatchError(HOCLError):
    """Raised when a match is requested in a context where it cannot be
    computed (internal invariant violations of the matcher)."""


class RuleError(HOCLError):
    """Raised when a rule definition is inconsistent (empty left-hand side,
    missing product builder, ...)."""


class ReductionError(HOCLError):
    """Raised when the reduction engine encounters a non-recoverable problem
    while rewriting a solution (e.g. a product builder raising)."""


class DeltaError(HOCLError):
    """Raised when a rewrite delta is structurally invalid or cannot be
    applied to the matched atoms (e.g. a patch path naming a field tuple the
    anchor's solution does not contain)."""


class ExternalFunctionError(HOCLError):
    """Raised when an external function referenced by a rule is unknown or
    fails during evaluation."""


class ParseError(HOCLError):
    """Raised by the HOCL parser on malformed programs.

    Attributes
    ----------
    line, column:
        Best-effort position of the offending token in the source text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
