"""Pattern language used on the left-hand side of HOCL rules.

A rule such as (Fig. 4 of the paper)::

    gw_setup = replace-one SRC : <>, IN : <w>
               by SRC : <>, PAR : list(w)

is built from *patterns* (its left-hand side) and *templates* (its right-hand
side, see :mod:`repro.hocl.templates`).  Patterns match single atoms and
produce *bindings* — a mapping from variable names to atoms (or, for omega
variables, to lists of atoms).

Pattern classes
---------------
``Var(name, kind=None)``
    Matches any single atom, optionally constrained to an atom ``kind``
    (``"int"``, ``"string"``, ``"solution"``, ...), and binds it.
``Omega(name)``
    The ω of the paper: captures *all remaining* atoms of the enclosing
    solution or tuple pattern.  Only valid as the ``rest`` of a
    :class:`SolutionPattern` / trailing element of a :class:`TuplePattern`.
``Literal(value)``
    Matches an atom structurally equal to ``value``.
``SymbolPattern(name)``
    Shorthand for ``Literal(Symbol(name))``.
``TuplePattern(*elements)``
    Matches a :class:`~repro.hocl.atoms.TupleAtom` element-wise.
``SolutionPattern(*elements, rest=None)``
    Matches a :class:`~repro.hocl.atoms.Subsolution` whose contents contain
    one distinct atom per element pattern; ``rest`` (an :class:`Omega`)
    captures whatever is left (possibly nothing).
``RulePattern(name=None)``
    Matches a rule atom (higher order), optionally by name — this is what
    lets the ``clean`` rule of the getMax example remove ``max``.

Bindings are plain dictionaries mapping variable names to
:class:`~repro.hocl.atoms.Atom` (or ``list[Atom]`` for omegas).  A variable
appearing several times must bind structurally equal atoms.
"""

from __future__ import annotations

from typing import Any, Iterator

from .atoms import Atom, Subsolution, Symbol, TupleAtom, to_atom
from .errors import PatternError
from .multiset import atom_index_keys

__all__ = [
    "Bindings",
    "Pattern",
    "Var",
    "Omega",
    "Literal",
    "SymbolPattern",
    "TuplePattern",
    "SolutionPattern",
    "RulePattern",
    "as_pattern",
]

#: A variable environment produced by matching: variable name -> atom, or
#: variable name -> list of atoms for omega (rest) variables.
Bindings = dict[str, Any]

#: Rejection-memo size at which dead entries are pruned.  Long adaptive runs
#: retire one-shot rules (and their pattern objects) continually; entries
#: stamped at an older version/structure stamp can never hit again, so
#: dropping them bounds both the dict and the strong references it holds.
_MEMO_PRUNE_SIZE = 64


def _prune_memo(memo: dict, current_stamp: int) -> None:
    """Bound a rejection memo: drop stale entries, clear if still over-full.

    Entries stamped at an older version can never hit again and go first.
    When every entry carries the current stamp (e.g. an immutable tuple,
    whose stamp is always 0), the memo is cleared outright — the entries are
    valid but recomputing them is cheap, and an unbounded dict would pin
    every retired rule's pattern objects forever.
    """
    for key in [key for key, stamp in memo.items() if stamp != current_stamp]:
        del memo[key]
    if len(memo) >= _MEMO_PRUNE_SIZE:
        memo.clear()


def _bind(bindings: Bindings, name: str, value: Any) -> Bindings | None:
    """Extend ``bindings`` with ``name=value`` if consistent, else ``None``."""
    if name in bindings:
        existing = bindings[name]
        if isinstance(existing, list) or isinstance(value, list):
            if not isinstance(existing, list) or not isinstance(value, list):
                return None
            if len(existing) != len(value) or any(a != b for a, b in zip(existing, value)):
                return None
        elif existing != value:
            return None
        return bindings
    extended = dict(bindings)
    extended[name] = value
    return extended


class Pattern:
    """Abstract base class of all patterns."""

    __slots__ = ()

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        """Yield every extension of ``bindings`` under which ``atom`` matches."""
        raise NotImplementedError

    def quick_reject(self, atom: Atom) -> bool:
        """Cheap, binding-free pre-check used by the matcher's candidate loops.

        Returns ``True`` only when :meth:`match` provably yields nothing for
        ``atom`` under *any* binding environment — the check must be
        conservative, since it cannot see variable constraints.  The default
        rejects nothing.  This is the matcher's main early exit: a failing
        candidate costs a few attribute reads instead of a generator cascade.
        """
        return False

    def variables(self) -> set[str]:
        """Names of all variables (including omegas) referenced by the pattern."""
        return set()

    def bound_names(self) -> set[str]:
        """Variable names a successful match of this pattern binds.

        Every variable referenced by a pattern is a binder (HOCL patterns
        have no free variables), so this equals :meth:`variables`; the
        method exists as the static-analysis entry point — product and
        condition variables are checked against this set by
        :mod:`repro.analysis` without running a reduction.
        """
        return self.variables()

    def omega_names(self) -> set[str]:
        """Subset of :meth:`bound_names` bound to *lists* of atoms (omegas).

        Products must splice these (``Splice``) rather than reference them
        (``Ref``); :mod:`repro.analysis` uses the distinction for its
        template-arity check.
        """
        return set()

    def index_key(self) -> Any | None:
        """The multiset index bucket this pattern draws candidates from.

        ``None`` means the pattern is unconstrained (any atom could match).
        A non-``None`` key is a *guarantee*: every atom the pattern can
        match carries that key (see
        :func:`~repro.hocl.multiset.atom_index_keys`), so restricting the
        search to the bucket never loses a match — and, because buckets
        preserve insertion order, never reorders the matches found.
        """
        return None

    def index_key_with(self, bindings: Bindings) -> Any | None:
        """Like :meth:`index_key`, but sharpened by an existing environment.

        During a multi-pattern search, variables bound by earlier patterns
        can make a later pattern far more selective — e.g. a ``Tj : <...>``
        tuple pattern whose head variable is already bound to a symbol can
        only match tuples in that symbol's bucket, turning an O(solution)
        scan into a single-bucket lookup.  The same guarantee as
        :meth:`index_key` holds relative to ``bindings``: every atom the
        pattern can match *under this environment* carries the returned key,
        and bucket order keeps the narrowed enumeration trace-identical.
        """
        return self.index_key()


class Var(Pattern):
    """Match any single atom and bind it to ``name``.

    Parameters
    ----------
    name:
        Variable name to bind.
    kind:
        Optional atom-kind constraint, compared against ``Atom.kind``
        (``"int"``, ``"float"``, ``"string"``, ``"symbol"``, ``"tuple"``,
        ``"list"``, ``"solution"``, ``"rule"``).  ``"number"`` accepts both
        ints and floats.
    """

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: str | None = None):
        if not name:
            raise PatternError("Var requires a non-empty name")
        self.name = name
        self.kind = kind

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        if self.kind is not None:
            if self.kind == "number":
                if atom.kind not in ("int", "float"):
                    return
            elif atom.kind != self.kind:
                return
        extended = _bind(bindings, self.name, atom)
        if extended is not None:
            yield extended

    def quick_reject(self, atom: Atom) -> bool:
        kind = self.kind
        if kind is None:
            return False
        if kind == "number":
            return atom.kind not in ("int", "float")
        return atom.kind != kind

    def variables(self) -> set[str]:
        return {self.name}

    def index_key(self) -> Any | None:
        # "number" spans the int and float buckets; fall back to a full scan.
        if self.kind is None or self.kind == "number":
            return None
        return ("kind", self.kind)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Var({self.name!r}{', ' + repr(self.kind) if self.kind else ''})"


class Omega(Pattern):
    """The ω rest-capture variable.

    An omega does not match a single atom; it is consumed structurally by the
    enclosing :class:`SolutionPattern` or :class:`TuplePattern`, which binds
    it to the list of atoms not matched by the other element patterns.
    """

    __slots__ = ("name",)

    def __init__(self, name: str = "omega"):
        if not name:
            raise PatternError("Omega requires a non-empty name")
        self.name = name

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:  # pragma: no cover
        raise PatternError(
            "Omega patterns capture the remainder of a solution; they cannot "
            "match a single atom directly"
        )

    def variables(self) -> set[str]:
        return {self.name}

    def omega_names(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Omega({self.name!r})"


class Literal(Pattern):
    """Match an atom structurally equal to a fixed value."""

    __slots__ = ("atom",)

    def __init__(self, value: Any):
        self.atom = to_atom(value)

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        if atom == self.atom:
            yield bindings

    def quick_reject(self, atom: Atom) -> bool:
        return atom != self.atom

    def index_key(self) -> Any | None:
        # Structural equality implies identical index keys, so the literal's
        # own most-specific bucket contains every atom it can match.
        return atom_index_keys(self.atom)[0]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Literal({self.atom!r})"


class SymbolPattern(Literal):
    """Match the bare symbol ``name`` (e.g. the ``ADAPT`` marker atom)."""

    __slots__ = ()

    def __init__(self, name: str):
        super().__init__(Symbol(name))


class TuplePattern(Pattern):
    """Match a :class:`~repro.hocl.atoms.TupleAtom` element by element.

    Element patterns are matched positionally.  A trailing :class:`Omega`
    captures any remaining elements (as a list), allowing tuples of unknown
    arity such as ``MVSRC : t : old : new`` to be matched partially.
    """

    __slots__ = ("elements", "rest")

    def __init__(self, *elements: Any, rest: Omega | None = None):
        if not elements and rest is None:
            raise PatternError("TuplePattern requires at least one element pattern")
        self.elements = tuple(as_pattern(e) for e in elements)
        if any(isinstance(e, Omega) for e in self.elements):
            raise PatternError("use the rest= parameter for omega capture in tuples")
        self.rest = rest

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        if not isinstance(atom, TupleAtom):
            return
        if self.rest is None:
            if len(atom.elements) != len(self.elements):
                return
        elif len(atom.elements) < len(self.elements):
            return

        def recurse(index: int, env: Bindings) -> Iterator[Bindings]:
            if index == len(self.elements):
                if self.rest is None:
                    yield env
                else:
                    extended = _bind(env, self.rest.name, list(atom.elements[index:]))
                    if extended is not None:
                        yield extended
                return
            for extended in self.elements[index].match(atom.elements[index], env):
                yield from recurse(index + 1, extended)

        yield from recurse(0, bindings)

    def quick_reject(self, atom: Atom) -> bool:
        if not isinstance(atom, TupleAtom):
            return True
        # Per-atom memo: a rejection is permanent for immutable tuples and
        # valid while the structure version (sum of nested solution
        # versions, monotonic) is unchanged for mutable ones.  The candidate
        # scans of the engine revisit mostly-unchanged tuples after every
        # reaction, so this is a single dict lookup in the common case.
        stamp = 0
        for solution in atom._nested_sols:
            stamp += solution._version
        memo = atom._reject_memo
        if memo is not None and memo.get(self) == stamp:
            return True
        size = len(atom.elements)
        own = self.elements
        if (size != len(own)) if self.rest is None else (size < len(own)):
            rejected = True
        else:
            rejected = False
            for pattern, element in zip(own, atom.elements):
                if pattern.quick_reject(element):
                    rejected = True
                    break
        if rejected:
            if memo is None:
                memo = atom._reject_memo = {}
            elif len(memo) >= _MEMO_PRUNE_SIZE:
                _prune_memo(memo, stamp)
            memo[self] = stamp
        return rejected

    def variables(self) -> set[str]:
        names: set[str] = set()
        for element in self.elements:
            names |= element.variables()
        if self.rest is not None:
            names |= self.rest.variables()
        return names

    def omega_names(self) -> set[str]:
        names: set[str] = set()
        for element in self.elements:
            names |= element.omega_names()
        if self.rest is not None:
            names |= self.rest.omega_names()
        return names

    def index_key(self) -> Any | None:
        # ``HEAD : ...`` patterns (the HOCLflow idiom) restrict the search to
        # the bucket of tuples with that head symbol.
        if self.elements:
            first = self.elements[0]
            if isinstance(first, Literal) and isinstance(first.atom, Symbol):
                return ("tuple", first.atom.name)
        return ("kind", "tuple")

    def index_key_with(self, bindings: Bindings) -> Any | None:
        # A variable head already bound to a symbol (``gw_pass`` binds Tj
        # inside Ti's DST before trying Tj's own tuple) pins the search to
        # that symbol's tuple bucket.
        if self.elements:
            first = self.elements[0]
            if isinstance(first, Var):
                bound = bindings.get(first.name)
                if isinstance(bound, Symbol):
                    return ("tuple", bound.name)
        return self.index_key()

    def __repr__(self) -> str:  # pragma: no cover
        return f"TuplePattern({', '.join(repr(e) for e in self.elements)}, rest={self.rest!r})"


class SolutionPattern(Pattern):
    """Match a :class:`~repro.hocl.atoms.Subsolution`.

    Each element pattern must match a *distinct* atom of the sub-solution.
    ``rest`` (an :class:`Omega`) binds the list of unmatched atoms; when
    ``rest`` is ``None`` the sub-solution must contain exactly one atom per
    element pattern (so ``SolutionPattern()`` matches only the empty
    solution ``<>``).
    """

    __slots__ = ("elements", "rest", "_element_keys")

    def __init__(self, *elements: Any, rest: Omega | None = None):
        patterns = []
        rest_from_elements: Omega | None = None
        for element in elements:
            converted = as_pattern(element)
            if isinstance(converted, Omega):
                if rest_from_elements is not None:
                    raise PatternError("a solution pattern may contain at most one omega")
                rest_from_elements = converted
            else:
                patterns.append(converted)
        if rest_from_elements is not None and rest is not None:
            raise PatternError("omega supplied both positionally and via rest=")
        self.elements = tuple(patterns)
        self.rest = rest if rest is not None else rest_from_elements
        #: element index keys, precomputed once: consulted per candidate in
        #: the match/quick-reject hot loops
        self._element_keys = tuple(e.index_key() for e in self.elements)

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        if not isinstance(atom, Subsolution):
            return
        solution = atom.solution
        size = len(solution)
        if self.rest is None and size != len(self.elements):
            return
        if size < len(self.elements):
            return
        # Draw each element pattern's candidates from the sub-solution's own
        # head-symbol index (same subsequence-of-insertion-order guarantee as
        # the top-level matcher, so enumeration order is unchanged).  Live
        # bucket views: nothing mutates the solution during one match search.
        candidate_lists = []
        for key in self._element_keys:
            entries = solution.live_entries(key)
            if not entries:
                return
            candidate_lists.append(entries)

        def recurse(index: int, used: list, env: Bindings) -> Iterator[Bindings]:
            if index == len(self.elements):
                if self.rest is None:
                    yield env
                else:
                    # `used` holds _Entry objects (no __eq__), so `in` is an
                    # identity test at C speed
                    remainder = [
                        entry.atom for entry in solution.live_entries() if entry not in used
                    ]
                    extended = _bind(env, self.rest.name, remainder)
                    if extended is not None:
                        yield extended
                return
            pattern = self.elements[index]
            for entry in candidate_lists[index]:
                if entry in used:
                    continue
                if pattern.quick_reject(entry.atom):
                    continue
                for extended in pattern.match(entry.atom, env):
                    yield from recurse(index + 1, used + [entry], extended)

        yield from recurse(0, [], bindings)

    def quick_reject(self, atom: Atom) -> bool:
        if not isinstance(atom, Subsolution):
            return True
        solution = atom.solution
        # Version-stamped memo: a rejection proven at the solution's current
        # version holds until the solution mutates.  Task sub-solutions are
        # scanned by the same patterns after every reaction while changing
        # rarely, so this collapses the repeated scans to one dict lookup.
        version = solution._version
        cache = solution._reject_cache
        if cache.get(self) == version:
            return True
        if len(cache) >= _MEMO_PRUNE_SIZE:
            _prune_memo(cache, version)
        size = len(solution._entries)
        own = self.elements
        if self.rest is None:
            if size != len(own):
                cache[self] = version
                return True
        elif size < len(own):
            cache[self] = version
            return True
        for pattern, key in zip(own, self._element_keys):
            entries = solution.live_entries(key)
            if not entries:
                cache[self] = version
                return True
            # a single candidate in the bucket must itself survive the check
            if len(entries) == 1 and pattern.quick_reject(entries[0].atom):
                cache[self] = version
                return True
        return False

    def variables(self) -> set[str]:
        names: set[str] = set()
        for element in self.elements:
            names |= element.variables()
        if self.rest is not None:
            names |= self.rest.variables()
        return names

    def omega_names(self) -> set[str]:
        names: set[str] = set()
        for element in self.elements:
            names |= element.omega_names()
        if self.rest is not None:
            names |= self.rest.omega_names()
        return names

    def index_key(self) -> Any | None:
        return ("kind", "solution")

    def __repr__(self) -> str:  # pragma: no cover
        return f"SolutionPattern({', '.join(repr(e) for e in self.elements)}, rest={self.rest!r})"


class RulePattern(Pattern):
    """Match a rule atom, optionally by rule name, and bind it.

    This provides the higher-order feature of HOCL: the ``clean`` rule of the
    getMax example removes the ``max`` rule by matching it.
    """

    __slots__ = ("name", "bind_as")

    def __init__(self, name: str | None = None, bind_as: str | None = None):
        self.name = name
        self.bind_as = bind_as

    def match(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        from .rules import Rule  # local import to avoid a cycle

        if not isinstance(atom, Rule):
            return
        if self.name is not None and atom.name != self.name:
            return
        if self.bind_as is None:
            yield bindings
            return
        extended = _bind(bindings, self.bind_as, atom)
        if extended is not None:
            yield extended

    def quick_reject(self, atom: Atom) -> bool:
        if atom.kind != "rule":
            return True
        return self.name is not None and atom.name != self.name  # type: ignore[attr-defined]

    def variables(self) -> set[str]:
        return {self.bind_as} if self.bind_as else set()

    def index_key(self) -> Any | None:
        if self.name is not None:
            return ("rule", self.name)
        return ("kind", "rule")

    def __repr__(self) -> str:  # pragma: no cover
        return f"RulePattern(name={self.name!r}, bind_as={self.bind_as!r})"


def as_pattern(value: Any) -> Pattern:
    """Coerce ``value`` into a :class:`Pattern`.

    Existing patterns pass through; any other value becomes a
    :class:`Literal` matching that exact atom.  Strings are treated as
    literal string atoms — use :class:`Var`/:class:`SymbolPattern`
    explicitly when a variable or symbol is intended.
    """
    if isinstance(value, Pattern):
        return value
    return Literal(value)
