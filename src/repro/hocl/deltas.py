"""In-place rewrite deltas — copy-on-write rule application.

The classic right-hand side of a rule *rebuilds*: the engine removes every
matched atom and expands fresh product templates, even when most of the
product is structurally identical to what was just consumed.  For the
workflow rules this is quadratic in the data size — ``gw_pass`` re-creates
two whole task tuples (re-inserting and re-indexing every ``IN``/``SRC``
entry) to move one result across one edge.

A :class:`RewriteDelta` describes the same reaction as *patches against the
matched atoms*:

* the matched atoms stay in the solution (same objects, same index entries)
  unless explicitly listed in :attr:`RewriteDelta.consume`;
* :class:`PatchAdd` / :class:`PatchRemove` operations edit the *nested
  solutions* of kept atoms in place — adds and removes proportional to the
  change, not to the field size;
* :attr:`RewriteDelta.produce` templates expand new top-level atoms exactly
  like classic products.

Copy-on-write semantics: a delta never deep-copies a payload.  Atoms added
by a patch are shared by reference (exactly as ``Ref``/``Splice`` expansion
shares them), and the atoms *around* the patch — the tuple spine, the other
fields, the untouched inputs — are not rebuilt: they keep their cached
hashes and their rejection memos.  Invalidation rides the existing version
machinery: mutating a nested :class:`~repro.hocl.multiset.Multiset` bumps
its version through every enclosing solution (``Multiset._touch``), which is
precisely the set of caches the patch can have stale — nothing else is
re-hashed or re-expanded.

Kept anchors are *repositioned*: after the patches, every kept matched atom
is removed and re-appended at the end of the level (an O(index keys)
operation on the anchor alone — the payload below it is untouched), exactly
where the rebuild path would insert its replacement product.  This makes the
two paths leave the level in the same order, so enumeration — and therefore
the reaction history, ``match_attempts`` and batch composition — is
*identical* between ``ReductionEngine(delta=True)`` and ``delta=False``,
provided the rule's rebuild products list the kept fields first, in pattern
order (all the workflow rules do).

Addressing
----------
A patch names its target as ``(at, path)``:

* ``at`` is the index of the left-hand-side pattern whose matched atom
  anchors the patch (``match.consumed[at]``);
* ``path`` is a sequence of field heads walked *into* the anchor: the anchor
  resolves to its directly nested solution (a sub-solution atom resolves to
  itself, a tuple to its sub-solution element), then every head selects the
  ``head : <...>`` field tuple of the current solution and descends into its
  body.  ``gw_pass`` patches ``(0, ("DST",))`` — the ``DST`` body of the
  source task — and ``(1, ("IN",))`` — the ``IN`` body of the destination.

Every delta rule keeps its classic product templates as the *rebuild form*;
``ReductionEngine(delta=False)`` applies those instead, which is what the
delta-vs-rebuild parity harness runs against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from .atoms import Atom, Subsolution, TupleAtom
from .errors import DeltaError
from .matching import Match
from .multiset import Multiset
from .templates import expand_template, expand_templates, template_referenced_names

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .externals import ExternalRegistry

__all__ = ["DeltaOp", "PatchAdd", "PatchRemove", "RewriteDelta", "AppliedDelta"]


def _anchor_solution(anchor: Atom) -> Multiset:
    """The solution directly nested in ``anchor`` (its patchable body)."""
    if isinstance(anchor, Subsolution):
        return anchor.solution
    if isinstance(anchor, TupleAtom):
        for element in anchor.elements:
            if isinstance(element, Subsolution):
                return element.solution
        raise DeltaError(f"matched tuple {anchor} carries no sub-solution to patch")
    raise DeltaError(f"matched atom {anchor!r} has no nested solution to patch")


def _resolve_target(anchor: Atom, path: tuple[str, ...]) -> Multiset:
    """Walk ``path`` (field heads) from ``anchor`` down to the target solution."""
    solution = _anchor_solution(anchor)
    for head in path:
        field = solution.find_tuple(head)
        if field is None:
            raise DeltaError(f"patch path names field {head!r}, absent from {anchor}")
        solution = _anchor_solution(field)
    return solution


class DeltaOp:
    """One in-place edit of a nested solution of a kept matched atom."""

    __slots__ = ("at", "path")

    def __init__(self, at: int, path: Sequence[str] = ()):
        self.at = int(at)
        self.path = tuple(path)

    def target(self, match: Match) -> Multiset:
        """The solution this op edits, resolved against the match."""
        if not 0 <= self.at < len(match.consumed):
            raise DeltaError(f"patch anchor {self.at} is out of range for the match")
        return _resolve_target(match.consumed[self.at], self.path)

    def apply(
        self, match: Match, externals: "ExternalRegistry | None"
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def referenced_names(self) -> set[str]:
        """Variable names the op reads from the bindings when applied."""
        return set()


class PatchAdd(DeltaOp):
    """Add the expansion of ``templates`` to the target solution."""

    __slots__ = ("templates",)

    def __init__(self, at: int, path: Sequence[str] = (), templates: Sequence[Any] = ()):
        super().__init__(at, path)
        self.templates = tuple(templates)

    def apply(self, match: Match, externals: "ExternalRegistry | None") -> None:
        target = self.target(match)
        for atom in expand_templates(self.templates, match.bindings, externals):
            target.add(atom)

    def referenced_names(self) -> set[str]:
        names: set[str] = set()
        for template in self.templates:
            names |= template_referenced_names(template)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PatchAdd(at={self.at}, path={self.path!r}, templates={self.templates!r})"


class PatchRemove(DeltaOp):
    """Remove one occurrence of each expanded item from the target solution.

    Items are templates (usually ``Ref``/literals); each expanded atom is
    removed by structural equality — the counterpart of matching it with a
    pattern and not re-emitting it in the rebuild form.
    """

    __slots__ = ("items",)

    def __init__(self, at: int, path: Sequence[str] = (), items: Sequence[Any] = ()):
        super().__init__(at, path)
        self.items = tuple(items)

    def apply(self, match: Match, externals: "ExternalRegistry | None") -> None:
        target = self.target(match)
        for item in self.items:
            for atom in expand_template(item, match.bindings, externals):
                try:
                    target.remove(atom)
                except KeyError as exc:
                    raise DeltaError(
                        f"patch removes {atom}, absent from the target solution"
                    ) from exc

    def referenced_names(self) -> set[str]:
        names: set[str] = set()
        for item in self.items:
            names |= template_referenced_names(item)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PatchRemove(at={self.at}, path={self.path!r}, items={self.items!r})"


class AppliedDelta:
    """What one delta application did — the engine's accounting view.

    Attributes
    ----------
    removed:
        Top-level atoms taken out of the solution (the consumed patterns).
    added:
        New top-level atoms inserted (the expanded ``produce`` templates).
    kept:
        Matched atoms still in the solution — patched or not — repositioned
        at the end of the level.  The batched engine treats them exactly as
        it would rebuilt replacement products: released from the pass's
        claim set, excluded from the pass's remaining frontier leads, and
        marked dirty for the next frontier.
    """

    __slots__ = ("removed", "added", "kept")

    def __init__(self, removed: list[Atom], added: list[Atom], kept: list[Atom]):
        self.removed = removed
        self.added = added
        self.kept = kept


class RewriteDelta:
    """The delta-producing product form of a :class:`~repro.hocl.rules.Rule`.

    Parameters
    ----------
    ops:
        In-place edits against kept matched atoms, applied in order.
    consume:
        Indices of left-hand-side patterns whose matched atoms *are* removed
        from the solution (everything not listed is kept in place).
    produce:
        Templates for new top-level atoms, expanded like classic products.
    """

    __slots__ = ("ops", "consume", "produce")

    def __init__(
        self,
        ops: Sequence[DeltaOp] = (),
        consume: Sequence[int] = (),
        produce: Sequence[Any] = (),
    ):
        self.ops = tuple(ops)
        self.consume = tuple(int(index) for index in consume)
        self.produce = tuple(produce)
        consumed = set(self.consume)
        for op in self.ops:
            if op.at in consumed:
                raise DeltaError(
                    f"delta patches pattern {op.at}, which it also consumes"
                )

    def apply(
        self,
        match: Match,
        solution: Multiset,
        externals: "ExternalRegistry | None",
    ) -> AppliedDelta:
        """Apply the delta in place on ``solution``; returns the accounting.

        Mirrors the rebuild path's mutation order: matched atoms leave the
        level in pattern order, then the kept ones re-enter at the end
        (payloads untouched — only the anchors' own index entries move),
        then the ``produce`` expansions follow.
        """
        for op in self.ops:
            op.apply(match, externals)
        consumed_indices = set(self.consume)
        removed: list[Atom] = []
        kept: list[Atom] = []
        for index, atom in enumerate(match.consumed):
            solution.remove_identical(atom)
            if index in consumed_indices:
                removed.append(atom)
            else:
                kept.append(atom)
        for atom in kept:
            solution.add(atom)
        added = expand_templates(self.produce, match.bindings, externals)
        for atom in added:
            solution.add(atom)
        return AppliedDelta(removed=removed, added=added, kept=kept)

    def referenced_names(self) -> set[str]:
        """Variable names the delta reads when applied (for static analysis)."""
        names: set[str] = set()
        for op in self.ops:
            names |= op.referenced_names()
        for template in self.produce:
            names |= template_referenced_names(template)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RewriteDelta(ops={self.ops!r}, consume={self.consume!r}, "
            f"produce={self.produce!r})"
        )
