"""HOCL — the Higher-Order Chemical Language core used by GinFlow.

This package is a self-contained multiset-rewriting engine reproducing the
semantics the paper relies on (Section III-A):

* a :class:`~repro.hocl.multiset.Multiset` of :mod:`atoms <repro.hocl.atoms>`
  (scalars, symbols, tuples, lists, sub-solutions and rules),
* :mod:`patterns <repro.hocl.patterns>` with ω rest-capture and higher-order
  rule matching,
* :mod:`rules <repro.hocl.rules>` with ``replace`` / ``replace-one`` /
  ``with … inject`` disciplines, reaction conditions, and side-effect hooks,
* a :mod:`reduction engine <repro.hocl.engine>` that rewrites solutions to
  inertness, reducing nested solutions first,
* an :mod:`external function registry <repro.hocl.externals>` so products can
  call host (Python) functions such as ``invoke`` and ``list``,
* an ASCII :mod:`parser <repro.hocl.parser>` for textual HOCL programs.
"""

from .atoms import (
    Atom,
    BoolAtom,
    FloatAtom,
    IntAtom,
    ListAtom,
    ScalarAtom,
    StringAtom,
    Subsolution,
    Symbol,
    TupleAtom,
    atoms_equal,
    from_atom,
    to_atom,
)
from .deltas import AppliedDelta, DeltaOp, PatchAdd, PatchRemove, RewriteDelta
from .engine import ReductionEngine, ReductionReport, is_inert, reduce_solution
from .parallel import ParallelReducer, ReductionPolicy, reduce_sharded, resolve_policy
from .errors import (
    AtomError,
    DeltaError,
    ExternalFunctionError,
    HOCLError,
    MatchError,
    ParseError,
    PatternError,
    ReductionError,
    RuleError,
)
from .externals import ExternalRegistry, default_registry
from .matching import Match, count_matches, find_first_match, find_matches
from .multiset import Multiset
from .parser import Program, parse_program, parse_solution
from .patterns import (
    Literal,
    Omega,
    Pattern,
    RulePattern,
    SolutionPattern,
    SymbolPattern,
    TuplePattern,
    Var,
)
from .rules import BindingView, Rule, replace, replace_one, with_inject
from .templates import (
    Call,
    Compute,
    ListTemplate,
    Ref,
    SolutionTemplate,
    Splice,
    Template,
    TupleTemplate,
    expand_template,
    expand_templates,
)

__all__ = [
    # atoms
    "Atom",
    "ScalarAtom",
    "IntAtom",
    "FloatAtom",
    "BoolAtom",
    "StringAtom",
    "Symbol",
    "TupleAtom",
    "ListAtom",
    "Subsolution",
    "to_atom",
    "from_atom",
    "atoms_equal",
    # multiset
    "Multiset",
    # patterns
    "Pattern",
    "Var",
    "Omega",
    "Literal",
    "SymbolPattern",
    "TuplePattern",
    "SolutionPattern",
    "RulePattern",
    # templates
    "Template",
    "Ref",
    "Splice",
    "TupleTemplate",
    "SolutionTemplate",
    "ListTemplate",
    "Call",
    "Compute",
    "expand_template",
    "expand_templates",
    # rules
    "Rule",
    "BindingView",
    "replace",
    "replace_one",
    "with_inject",
    # rewrite deltas
    "RewriteDelta",
    "DeltaOp",
    "PatchAdd",
    "PatchRemove",
    "AppliedDelta",
    # matching / engine
    "Match",
    "find_matches",
    "find_first_match",
    "count_matches",
    "ParallelReducer",
    "ReductionPolicy",
    "reduce_sharded",
    "resolve_policy",
    "ReductionEngine",
    "ReductionReport",
    "reduce_solution",
    "is_inert",
    # externals
    "ExternalRegistry",
    "default_registry",
    # parser
    "Program",
    "parse_program",
    "parse_solution",
    # errors
    "HOCLError",
    "AtomError",
    "PatternError",
    "MatchError",
    "RuleError",
    "ReductionError",
    "DeltaError",
    "ExternalFunctionError",
    "ParseError",
]
