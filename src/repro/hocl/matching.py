"""Multiset-level pattern matching.

A rule's left-hand side is a sequence of patterns that must match *distinct*
atoms of the solution simultaneously, under a single consistent binding
environment, and subject to the rule's reaction condition.  This module
implements that search.

The matcher is a backtracking search that draws its candidates from the
multiset's head-symbol index (:meth:`~repro.hocl.multiset.Multiset.candidate_entries`)
instead of scanning every atom for every pattern: a pattern such as
``RES : <...>`` only ever sees the tuples whose head is ``RES``.  Because
every bucket preserves insertion order and is a guaranteed superset of the
atoms its patterns can match, the sequence of matches produced — and hence
the engine's reduction trace — is identical to a naive full scan.

Distinctness is tracked per *occurrence* (the index hands out one entry per
stored occurrence), so a solution holding the same atom object twice — e.g.
two ``ADAPT`` markers injected by repeated messages — still offers both
occurrences to multi-pattern rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from .atoms import Atom
from .multiset import Multiset
from .patterns import Bindings, Pattern

__all__ = ["Match", "find_matches", "find_matches_pinned", "find_first_match", "count_matches"]


@dataclass
class Match:
    """The result of matching a rule's left-hand side against a solution.

    Attributes
    ----------
    bindings:
        Variable environment produced by the match.
    consumed:
        The exact atom objects (by identity) matched by the left-hand side;
        the engine removes these when the rule fires.
    """

    bindings: Bindings
    consumed: list[Atom] = field(default_factory=list)


def find_matches(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    initial_bindings: Bindings | None = None,
    exclude: Callable[[Atom], bool] | None = None,
) -> Iterator[Match]:
    """Yield every match of ``patterns`` against distinct atoms of ``solution``.

    Parameters
    ----------
    patterns:
        The rule's left-hand-side patterns, each of which must match a
        different atom occurrence.
    solution:
        The multiset to search.
    condition:
        Optional reaction condition evaluated on the bindings; matches for
        which it returns ``False`` are discarded.
    initial_bindings:
        Optional starting environment (used by the engine to pre-bind
        context variables such as the owning task name).
    exclude:
        Optional identity predicate over top-level candidates; atoms for
        which it returns ``True`` are skipped *before* any structural
        matching.  The batched engine passes its claimed-atom check here, so
        candidates consumed earlier in the same batch cost one call instead
        of a full pattern descent.
    """
    base: Bindings = dict(initial_bindings) if initial_bindings else {}
    # Cheap structural refutation first: every pattern needs at least one
    # candidate in its static bucket for a match to exist at all.
    for pattern in patterns:
        if not solution.has_candidates(pattern.index_key()):
            return
    # Candidate lists are snapshots (candidate_entries copies), fetched
    # lazily per recursion step so patterns after the first can narrow their
    # bucket with the bindings accumulated so far (index_key_with) — e.g.
    # ``gw_pass`` looks up its destination tuple directly instead of
    # scanning every task.  Fetches are cached per (position, key) so a
    # backtracking search copies each bucket at most once.
    fetched: dict[tuple[int, Any], list] = {}

    def candidates_at(index: int, env: Bindings) -> list:
        pattern = patterns[index]
        key = pattern.index_key_with(env) if env else pattern.index_key()
        cached = fetched.get((index, key))
        if cached is None:
            cached = fetched[(index, key)] = solution.candidate_entries(key)
        return cached

    def recurse(index: int, used: list, env: Bindings) -> Iterator[Match]:
        if index == len(patterns):
            if condition is None or condition(env):
                yield Match(bindings=env, consumed=[entry.atom for entry in used])
            return
        pattern = patterns[index]
        for entry in candidates_at(index, env):
            # `used` is at most len(patterns) long, and entries have no
            # __eq__, so `in` is a C-speed identity scan.
            if entry in used:
                continue
            if exclude is not None and exclude(entry.atom):
                continue
            # binding-free pre-check: skip the generator cascade for the
            # (overwhelmingly common) structurally impossible candidates
            if pattern.quick_reject(entry.atom):
                continue
            for extended in pattern.match(entry.atom, env):
                yield from recurse(index + 1, used + [entry], extended)

    yield from recurse(0, [], base)


def find_matches_pinned(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    *,
    pinned: int,
    pinned_entries: Sequence[Any],
    exclude: Callable[[Atom], bool] | None = None,
) -> Iterator[Match]:
    """Yield matches with pattern ``pinned`` restricted to a fixed entry set.

    The batched engine's *frontier* enumeration: pattern ``pinned`` draws its
    candidates from ``pinned_entries`` — the occurrence entries of atoms that
    changed since the last pass — while every other pattern runs over its
    (binding-narrowed) bucket as usual.  Every match in which the pinned
    pattern consumes one of the given occurrences is produced; matches
    touching none of them are the previous passes' responsibility.

    The patterns are tried in **declaration order** even when the pinned one
    comes late.  This preserves the selectivity rule authors encode in their
    pattern order (the serial engine relies on the same order): when the
    frontier atom sits in a *late* pattern — e.g. a fan-in hub rewritten by
    every ``gw_pass`` firing — the earlier, cheaper-to-refute patterns bind
    the join variables first, so the hub's internal nondeterminism (which
    source to pull) is explored with those variables already fixed instead of
    once per remaining source.
    """
    total = len(patterns)
    fetched: dict[tuple[int, Any], list] = {}

    def candidates_at(index: int, env: Bindings) -> list:
        key = patterns[index].index_key_with(env)
        cached = fetched.get((index, key))
        if cached is None:
            cached = fetched[(index, key)] = solution.candidate_entries(key)
        return cached

    def recurse(index: int, used: list, env: Bindings) -> Iterator[Match]:
        if index == total:
            if condition is None or condition(env):
                yield Match(bindings=env, consumed=[entry.atom for entry in used])
            return
        pattern = patterns[index]
        entries = pinned_entries if index == pinned else candidates_at(index, env)
        for entry in entries:
            if entry in used:
                continue
            if exclude is not None and exclude(entry.atom):
                continue
            if pattern.quick_reject(entry.atom):
                continue
            for extended in pattern.match(entry.atom, env):
                yield from recurse(index + 1, used + [entry], extended)

    yield from recurse(0, [], {})


def find_first_match(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    initial_bindings: Bindings | None = None,
) -> Match | None:
    """Return the first match of ``patterns`` against ``solution`` or ``None``."""
    for match in find_matches(patterns, solution, condition, initial_bindings):
        return match
    return None


def count_matches(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
) -> int:
    """Count the matches of ``patterns`` against ``solution`` (diagnostics)."""
    return sum(1 for _ in find_matches(patterns, solution, condition))
