"""Multiset-level pattern matching.

A rule's left-hand side is a sequence of patterns that must match *distinct*
atoms of the solution simultaneously, under a single consistent binding
environment, and subject to the rule's reaction condition.  This module
implements that search.

The matcher is a backtracking search that draws its candidates from the
multiset's head-symbol index (:meth:`~repro.hocl.multiset.Multiset.candidate_entries`)
instead of scanning every atom for every pattern: a pattern such as
``RES : <...>`` only ever sees the tuples whose head is ``RES``.  Because
every bucket preserves insertion order and is a guaranteed superset of the
atoms its patterns can match, the sequence of matches produced — and hence
the engine's reduction trace — is identical to a naive full scan.

Distinctness is tracked per *occurrence* (the index hands out one entry per
stored occurrence), so a solution holding the same atom object twice — e.g.
two ``ADAPT`` markers injected by repeated messages — still offers both
occurrences to multi-pattern rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from .atoms import Atom
from .multiset import Multiset
from .patterns import Bindings, Pattern

__all__ = ["Match", "find_matches", "find_first_match", "count_matches"]


@dataclass
class Match:
    """The result of matching a rule's left-hand side against a solution.

    Attributes
    ----------
    bindings:
        Variable environment produced by the match.
    consumed:
        The exact atom objects (by identity) matched by the left-hand side;
        the engine removes these when the rule fires.
    """

    bindings: Bindings
    consumed: list[Atom] = field(default_factory=list)


def find_matches(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    initial_bindings: Bindings | None = None,
) -> Iterator[Match]:
    """Yield every match of ``patterns`` against distinct atoms of ``solution``.

    Parameters
    ----------
    patterns:
        The rule's left-hand-side patterns, each of which must match a
        different atom occurrence.
    solution:
        The multiset to search.
    condition:
        Optional reaction condition evaluated on the bindings; matches for
        which it returns ``False`` are discarded.
    initial_bindings:
        Optional starting environment (used by the engine to pre-bind
        context variables such as the owning task name).
    """
    base: Bindings = dict(initial_bindings) if initial_bindings else {}
    # Snapshot the top-level candidate lists so this level of the search is
    # stable across mutations between yielded matches.  Sub-solution
    # patterns iterate live bucket views for speed: consume at most one
    # match per search (as the engine does) before mutating the solution.
    candidate_lists = []
    for pattern in patterns:
        entries = solution.candidate_entries(pattern.index_key())
        if not entries:
            return
        candidate_lists.append(entries)

    def recurse(index: int, used: list, env: Bindings) -> Iterator[Match]:
        if index == len(patterns):
            if condition is None or condition(env):
                yield Match(bindings=env, consumed=[entry.atom for entry in used])
            return
        pattern = patterns[index]
        for entry in candidate_lists[index]:
            # `used` is at most len(patterns) long, and entries have no
            # __eq__, so `in` is a C-speed identity scan.
            if entry in used:
                continue
            # binding-free pre-check: skip the generator cascade for the
            # (overwhelmingly common) structurally impossible candidates
            if pattern.quick_reject(entry.atom):
                continue
            for extended in pattern.match(entry.atom, env):
                yield from recurse(index + 1, used + [entry], extended)

    yield from recurse(0, [], base)


def find_first_match(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    initial_bindings: Bindings | None = None,
) -> Match | None:
    """Return the first match of ``patterns`` against ``solution`` or ``None``."""
    for match in find_matches(patterns, solution, condition, initial_bindings):
        return match
    return None


def count_matches(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
) -> int:
    """Count the matches of ``patterns`` against ``solution`` (diagnostics)."""
    return sum(1 for _ in find_matches(patterns, solution, condition))
