"""Multiset-level pattern matching.

A rule's left-hand side is a sequence of patterns that must match *distinct*
atoms of the solution simultaneously, under a single consistent binding
environment, and subject to the rule's reaction condition.  This module
implements that search.

The matcher is a straightforward backtracking search.  Solutions handled by
the distributed GinFlow engine are small (a handful of atoms per service
agent), so clarity wins over cleverness here; the centralised engine indexes
candidate atoms per pattern to keep large solutions tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from .atoms import Atom
from .multiset import Multiset
from .patterns import Bindings, Pattern

__all__ = ["Match", "find_matches", "find_first_match", "count_matches"]


@dataclass
class Match:
    """The result of matching a rule's left-hand side against a solution.

    Attributes
    ----------
    bindings:
        Variable environment produced by the match.
    consumed:
        The exact atom objects (by identity) matched by the left-hand side;
        the engine removes these when the rule fires.
    """

    bindings: Bindings
    consumed: list[Atom] = field(default_factory=list)


def find_matches(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    initial_bindings: Bindings | None = None,
) -> Iterator[Match]:
    """Yield every match of ``patterns`` against distinct atoms of ``solution``.

    Parameters
    ----------
    patterns:
        The rule's left-hand-side patterns, each of which must match a
        different atom.
    solution:
        The multiset to search.
    condition:
        Optional reaction condition evaluated on the bindings; matches for
        which it returns ``False`` are discarded.
    initial_bindings:
        Optional starting environment (used by the engine to pre-bind
        context variables such as the owning task name).
    """
    atoms = solution.atoms()
    base: Bindings = dict(initial_bindings) if initial_bindings else {}

    def recurse(index: int, used: list[int], env: Bindings) -> Iterator[Match]:
        if index == len(patterns):
            if condition is None or condition(env):
                yield Match(bindings=env, consumed=[atoms[position] for position in used])
            return
        pattern = patterns[index]
        for position, candidate in enumerate(atoms):
            if position in used:
                continue
            for extended in pattern.match(candidate, env):
                yield from recurse(index + 1, used + [position], extended)

    yield from recurse(0, [], base)


def find_first_match(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
    initial_bindings: Bindings | None = None,
) -> Match | None:
    """Return the first match of ``patterns`` against ``solution`` or ``None``."""
    for match in find_matches(patterns, solution, condition, initial_bindings):
        return match
    return None


def count_matches(
    patterns: Sequence[Pattern],
    solution: Multiset,
    condition: Callable[[Bindings], bool] | None = None,
) -> int:
    """Count the matches of ``patterns`` against ``solution`` (diagnostics)."""
    return sum(1 for _ in find_matches(patterns, solution, condition))
