"""Registry of external functions callable from rule products.

HOCL rules may call host-language functions — the paper's interpreter calls
Java methods; ours calls Python callables.  The two functions the generic
workflow rules rely on are registered by default:

``list``
    Builds an HOCLflow list from its arguments (used by ``gw_setup`` to turn
    the collected inputs into the parameter list ``PAR``).
``invoke``
    Invokes a service.  The default implementation looks the service up in a
    :class:`~repro.services.registry.ServiceRegistry` attached to the
    registry; the GinFlow agents override it with their own invoker so that
    failures, retries and timing are accounted for.

Additional helpers (``concat``, ``first``, ``flatten``) are provided because
user workflows frequently need them when post-processing results.
"""

from __future__ import annotations

from typing import Any, Callable

from .atoms import Atom, ListAtom, from_atom
from .errors import ExternalFunctionError
from .patterns import Bindings

__all__ = ["ExternalRegistry", "default_registry"]

#: Signature of an external function: it receives the already-expanded atom
#: arguments and the full binding environment, and returns a value coerced
#: back to atoms by the calling template.
ExternalFunction = Callable[[list[Atom], Bindings], Any]


class ExternalRegistry:
    """A named collection of host functions available to rule products."""

    def __init__(self) -> None:
        self._functions: dict[str, ExternalFunction] = {}
        self._register_builtins()

    # ------------------------------------------------------------- built-ins
    def _register_builtins(self) -> None:
        self.register("list", lambda args, _b: ListAtom(args))
        self.register("concat", self._concat)
        self.register("first", self._first)
        self.register("flatten", self._flatten)

    @staticmethod
    def _concat(args: list[Atom], _bindings: Bindings) -> Atom:
        parts: list[Any] = []
        for arg in args:
            value = from_atom(arg)
            if isinstance(value, list):
                parts.extend(value)
            else:
                parts.append(value)
        return ListAtom(parts)

    @staticmethod
    def _first(args: list[Atom], _bindings: Bindings) -> Atom:
        if not args:
            raise ExternalFunctionError("first() requires at least one argument")
        head = args[0]
        if isinstance(head, ListAtom):
            if len(head) == 0:
                raise ExternalFunctionError("first() of an empty list")
            return head[0]
        return head

    @staticmethod
    def _flatten(args: list[Atom], _bindings: Bindings) -> Atom:
        flat: list[Any] = []

        def walk(value: Any) -> None:
            if isinstance(value, list):
                for item in value:
                    walk(item)
            else:
                flat.append(value)

        for arg in args:
            walk(from_atom(arg))
        return ListAtom(flat)

    # --------------------------------------------------------------- public
    def register(self, name: str, function: ExternalFunction) -> None:
        """Register (or replace) the external function ``name``."""
        if not callable(function):
            raise ExternalFunctionError(f"external {name!r} is not callable")
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (no error if absent)."""
        self._functions.pop(name, None)

    def knows(self, name: str) -> bool:
        """Whether ``name`` is registered."""
        return name in self._functions

    def names(self) -> list[str]:
        """Sorted list of registered function names."""
        return sorted(self._functions)

    def invoke(self, name: str, args: list[Atom], bindings: Bindings) -> Any:
        """Invoke ``name`` on ``args``; wraps any error in ExternalFunctionError."""
        try:
            function = self._functions[name]
        except KeyError:
            raise ExternalFunctionError(f"unknown external function {name!r}") from None
        try:
            return function(args, bindings)
        except ExternalFunctionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced with context
            raise ExternalFunctionError(f"external function {name!r} failed: {exc}") from exc

    def copy(self) -> "ExternalRegistry":
        """A shallow copy (shared function objects, independent table)."""
        clone = ExternalRegistry()
        clone._functions = dict(self._functions)
        return clone


def default_registry() -> ExternalRegistry:
    """A fresh registry with only the built-in helpers registered."""
    return ExternalRegistry()
