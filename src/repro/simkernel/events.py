"""Events and processes of the discrete-event simulation kernel.

The kernel is a small, dependency-free engine in the style of SimPy:

* an :class:`Event` is a one-shot occurrence that callbacks can attach to and
  that processes can wait on;
* a :class:`Timeout` is an event scheduled to trigger after a virtual delay;
* a :class:`Process` wraps a Python generator; every value the generator
  yields must be an event, and the process resumes when that event triggers.

The :class:`~repro.simkernel.sim.Simulator` owns the event queue and the
virtual clock.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sim import Simulator

__all__ = ["Event", "Timeout", "Process", "AllOf", "AnyOf", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted (e.g. the agent
    hosting it crashed)."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it,
    runs its callbacks, and stores its value.  Triggering twice is an error —
    this catches double-completion bugs in agent code early.
    """

    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._triggered = False
        self._ok = True

    # ------------------------------------------------------------ properties
    @property
    def triggered(self) -> bool:
        """Whether the event already occurred."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        return self._value

    # -------------------------------------------------------------- triggers
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes receive the exception."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule_triggered(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers (immediately if it already has)."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule_at(sim.now + delay, self, value)


class AllOf(Event):
    """An event that succeeds once every event of ``events`` has succeeded.

    If any member event *fails*, the join fails immediately with the first
    failure's exception — a process waiting on a batch of tasks sees the
    fault instead of a success carrying an exception object among the
    values.  ``AllOf([])`` succeeds immediately with ``[]``.
    """

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        results: list[Any] = [None] * len(events)

        def on_done(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if self.triggered:
                    # a sibling already failed the join: swallow nothing more
                    return
                if not event.ok:
                    # propagate the first failure to every waiter
                    self.fail(event.value)
                    return
                results[index] = event.value
                self._pending -= 1
                if self._pending == 0:
                    self.succeed(results)

            return callback

        for index, event in enumerate(events):
            event.add_callback(on_done(index))


class AnyOf(Event):
    """An event that mirrors the first of ``events`` to trigger.

    The join succeeds with the first *successful* event's value and fails
    with the first *failed* event's exception — it never delivers an
    exception object as a success value.  ``AnyOf([])`` succeeds
    immediately with ``[]`` (matching ``AllOf([])``) instead of leaving the
    waiter deadlocked on an event that can never trigger.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            self.succeed([])
            return

        def callback(event: Event) -> None:
            if self.triggered:
                return
            if event.ok:
                self.succeed(event.value)
            else:
                self.fail(event.value)

        for event in events:
            event.add_callback(callback)


class Process(Event):
    """A generator-driven simulation process.

    The wrapped generator yields :class:`Event` instances; the process
    resumes when the yielded event triggers (receiving the event's value, or
    the exception for failed events).  The process itself is an event that
    triggers with the generator's return value, so processes can wait on one
    another.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupted")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any], name: str = "process"):
        super().__init__(sim)
        self.generator = generator
        self.name = name
        self._waiting_on: Event | None = None
        self._interrupted = False
        # start the process at the current simulation time
        startup = Timeout(sim, 0.0)
        startup.add_callback(lambda _event: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """Whether the process has not finished yet."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait point."""
        if self.triggered or self._interrupted:
            return
        self._interrupted = True
        self.sim._schedule_call(lambda: self._resume(None, Interrupt(cause)))

    # ------------------------------------------------------------ internals
    def _resume(self, value: Any, exception: BaseException | None) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if exception is not None:
                self._interrupted = False
                target = self.generator.throw(exception)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # the process chose not to handle its interruption: terminate it
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise TypeError(f"process {self.name!r} yielded {target!r}, expected an Event")
        self._waiting_on = target

        def callback(event: Event) -> None:
            if event.ok:
                self._resume(event.value, None)
            else:
                self._resume(None, event.value)

        target.add_callback(callback)
