"""The discrete-event simulator: virtual clock plus event queue.

All GinFlow experiments run on virtual time: deploying 1000 service agents on
a 25-node cluster, injecting hundreds of failures, or sweeping a 7×7 grid of
diamond sizes completes in seconds of wall-clock time while preserving the
ordering and queueing behaviour that produce the paper's figures.

The simulator is deterministic: events scheduled at the same virtual time are
processed in scheduling order (a monotonically increasing sequence number
breaks ties), and all randomness used by higher layers flows from seeded
generators (:mod:`repro.simkernel.random`).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable

from .events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Simulator"]


class Simulator:
    """Owner of the virtual clock and the pending-event queue."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event, Any]] = []
        self._sequence = 0
        self._processed_events = 0
        self._wall_seconds = 0.0

    # ------------------------------------------------------------ properties
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (diagnostics)."""
        return self._processed_events

    @property
    def wall_seconds(self) -> float:
        """Real time spent inside :meth:`run` so far (diagnostics).

        Together with :attr:`processed_events` and the per-phase timings of
        :class:`~repro.hocl.engine.ReductionReport` this localises where the
        real cost of a simulated run lives (kernel loop vs chemistry).
        """
        return self._wall_seconds

    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """A new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "process") -> Process:
        """Start a generator-driven process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event triggering when every event in ``events`` has triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event triggering when any event in ``events`` triggers."""
        return AnyOf(self, events)

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = Event(self)
        event.add_callback(lambda _event: callback())
        self._schedule_at(time, event, None)
        return event

    def call_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        return self.call_at(self._now + delay, callback)

    # -------------------------------------------------------------- plumbing
    def _schedule_at(self, time: float, event: Event, value: Any) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, event, value))

    def _schedule_triggered(self, event: Event) -> None:
        """Queue an already-triggered event so its callbacks run in order."""
        # Callbacks of an event triggered "now" run at the same virtual time,
        # after the currently running callback returns.
        self._sequence += 1
        heapq.heappush(self._queue, (self._now, self._sequence, _TriggeredMarker(event), None))

    def _schedule_call(self, callback: Callable[[], None]) -> None:
        event = Event(self)
        event.add_callback(lambda _event: callback())
        self._schedule_at(self._now, event, None)

    # ------------------------------------------------------------------- run
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue is empty (or a bound is reached).

        Parameters
        ----------
        until:
            Stop once the virtual clock would pass this time (the clock is
            left at ``until``).
        max_events:
            Safety bound on the number of processed events.

        Returns
        -------
        float
            The virtual time when the run stopped.
        """
        started = perf_counter()
        try:
            while self._queue:
                if max_events is not None and self._processed_events >= max_events:
                    break
                time, _seq, entry, value = heapq.heappop(self._queue)
                if until is not None and time > until:
                    # push back and stop at the horizon
                    heapq.heappush(self._queue, (time, _seq, entry, value))
                    self._now = until
                    return self._now
                self._now = time
                self._processed_events += 1
                if isinstance(entry, _TriggeredMarker):
                    self._dispatch(entry.event)
                else:
                    event = entry
                    if not event.triggered:
                        event._triggered = True  # noqa: SLF001 - kernel-internal
                        event._ok = True  # noqa: SLF001
                        event._value = value  # noqa: SLF001
                    self._dispatch(event)
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._wall_seconds += perf_counter() - started

    @staticmethod
    def _dispatch(event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)


class _TriggeredMarker:
    """Queue entry used to defer the callbacks of an already-triggered event."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event
