"""A deterministic discrete-event simulation kernel (virtual time)."""

from .events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from .randomness import RandomStreams
from .resources import Resource, SerialQueue, Store
from .sim import Simulator

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Store",
    "Resource",
    "SerialQueue",
    "RandomStreams",
]
