"""Seeded randomness helpers.

Every stochastic choice of a simulation run (failure injection, duration
jitter, broker jitter) must flow from one root seed so that a run is exactly
reproducible.  :class:`RandomStreams` derives independent, stable child
generators from a root seed and a string label, so adding a new consumer of
randomness never perturbs the draws of existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of named, independently-seeded random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, label: str) -> np.random.Generator:
        """The generator associated with ``label`` (created on first use)."""
        if label not in self._streams:
            derived = zlib.crc32(label.encode("utf-8")) ^ (self.seed * 0x9E3779B1 & 0xFFFFFFFF)
            self._streams[label] = np.random.default_rng(derived)
        return self._streams[label]

    def uniform(self, label: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from the named stream."""
        return float(self.stream(label).uniform(low, high))

    def bernoulli(self, label: str, probability: float) -> bool:
        """One biased coin flip from the named stream."""
        return bool(self.stream(label).random() < probability)

    def exponential(self, label: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.stream(label).exponential(mean))

    def spawn(self, label: str) -> "RandomStreams":
        """A child family whose streams are independent of the parent's."""
        derived = zlib.crc32(label.encode("utf-8")) ^ ((self.seed + 1) * 0x85EBCA6B & 0xFFFFFFFF)
        return RandomStreams(derived)
