"""Shared resources for the simulation kernel: FIFO stores and capacity resources.

Two primitives cover what the GinFlow simulation needs:

* :class:`Store` — an unbounded FIFO of items with event-based ``get``;
  message queues and agent inboxes are Stores.
* :class:`Resource` — a counted resource (e.g. the cores of a node, a
  broker's dispatcher threads); ``acquire`` returns an event that triggers
  when a slot is available.
* :class:`SerialQueue` — a convenience wrapper modelling a serially-processed
  queue with a fixed per-item service time (how the brokers account for their
  per-message processing cost).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .events import Event
from .sim import Simulator

__all__ = ["Store", "Resource", "SerialQueue"]


class Store:
    """An unbounded FIFO with event-based retrieval."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting ``get`` if any."""
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that triggers with the next available item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._waiters.append(event)
        return event

    def try_get(self) -> Any | None:
        """Pop an item immediately if one is available, else ``None``."""
        if self._items:
            return self._items.popleft()
        return None

    def items(self) -> list[Any]:
        """Snapshot of the queued items (oldest first)."""
        return list(self._items)


class Resource:
    """A counted resource with FIFO acquisition."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("resource capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """An event that triggers once a slot is held (value: this resource)."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Give back one slot; wakes the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"resource {self.name!r}: release without acquire")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class SerialQueue:
    """A serially-processed queue with a fixed per-item service time.

    ``submit(work_time)`` returns the completion event of a job that must
    wait for every previously submitted job; the queue therefore models the
    head-of-line queueing of a single-threaded dispatcher (the behaviour that
    makes large fully-connected workflows pay for every message they emit).
    """

    def __init__(self, sim: Simulator, name: str = "serial-queue"):
        self.sim = sim
        self.name = name
        self._next_free = 0.0
        self.processed = 0
        self.busy_time = 0.0

    def submit(self, work_time: float) -> Event:
        """Schedule one job of ``work_time`` seconds; returns its completion event."""
        if work_time < 0:
            raise ValueError("work_time must be >= 0")
        start = max(self.sim.now, self._next_free)
        finish = start + work_time
        self._next_free = finish
        self.processed += 1
        self.busy_time += work_time
        return self.sim.timeout(finish - self.sim.now)

    @property
    def backlog(self) -> float:
        """Seconds of work already queued ahead of a job submitted now."""
        return max(0.0, self._next_free - self.sim.now)
