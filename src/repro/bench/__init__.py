"""Experiment harnesses reproducing every figure of the paper's evaluation."""

from .ablation import format_ablation, run_matching_cost_ablation, run_status_update_ablation
from .common import experiment_scale, format_table, mean, std
from .fig12 import format_fig12, run_fig12
from .fig13 import format_fig13, run_fig13
from .fig14 import format_fig14, run_fig14
from .fig15 import format_fig15, run_fig15
from .fig16 import format_fig16, run_fig16, run_fig16_baseline

__all__ = [
    "experiment_scale",
    "format_table",
    "mean",
    "std",
    "run_fig12",
    "format_fig12",
    "run_fig13",
    "format_fig13",
    "run_fig14",
    "format_fig14",
    "run_fig15",
    "format_fig15",
    "run_fig16",
    "run_fig16_baseline",
    "format_fig16",
    "run_matching_cost_ablation",
    "run_status_update_ablation",
    "format_ablation",
]
