"""Shared helpers of the experiment harnesses.

Each ``fig1X`` module reproduces one figure of the paper's evaluation
(Section V).  They share a *scale* convention:

* ``scale="small"`` (default) — a reduced parameter grid that keeps the whole
  benchmark suite under a few minutes of wall-clock time while preserving
  every trend the paper reports;
* ``scale="paper"`` — the full grid of the paper (set the environment
  variable ``GINFLOW_FULL=1``, or pass ``scale="paper"`` explicitly).

Every harness returns plain lists of dictionaries (one per measurement
point) so benchmarks, tests and notebooks can consume them directly, and
provides a ``format_table`` helper that prints the same rows the paper plots.
"""

from __future__ import annotations

import os

from repro.experiments.stats import format_table, mean, std

__all__ = ["experiment_scale", "format_table", "mean", "std"]


def experiment_scale(explicit: str | None = None) -> str:
    """Resolve the experiment scale (``"small"`` or ``"paper"``)."""
    if explicit in ("small", "paper"):
        return explicit
    if os.environ.get("GINFLOW_FULL", "").strip() in ("1", "true", "yes"):
        return "paper"
    return "small"
