"""Shared helpers of the experiment harnesses.

Each ``fig1X`` module reproduces one figure of the paper's evaluation
(Section V).  They share a *scale* convention:

* ``scale="small"`` (default) — a reduced parameter grid that keeps the whole
  benchmark suite under a few minutes of wall-clock time while preserving
  every trend the paper reports;
* ``scale="paper"`` — the full grid of the paper (set the environment
  variable ``GINFLOW_FULL=1``, or pass ``scale="paper"`` explicitly).

Every harness returns plain lists of dictionaries (one per measurement
point) so benchmarks, tests and notebooks can consume them directly, and
provides a ``format_table`` helper that prints the same rows the paper plots.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence

__all__ = ["experiment_scale", "format_table", "mean", "std"]


def experiment_scale(explicit: str | None = None) -> str:
    """Resolve the experiment scale (``"small"`` or ``"paper"``)."""
    if explicit in ("small", "paper"):
        return explicit
    if os.environ.get("GINFLOW_FULL", "").strip() in ("1", "true", "yes"):
        return "paper"
    return "small"


def format_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render measurement rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(column) for column in columns}
    rendered_rows = []
    for row in rows:
        rendered = {}
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Iterable[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return (sum((value - center) ** 2 for value in values) / len(values)) ** 0.5
