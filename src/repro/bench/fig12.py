"""Fig. 12 — Coordination timespan of diamond-shaped workflows.

The paper sweeps the diamond size (``h`` services in parallel × ``v``
services in sequence, Fig. 11) for the simple-connected and fully-connected
flavours and reports the total coordination time (the tasks themselves only
simulate a very short constant execution time).  Expected shape:

* time grows with both ``h`` and ``v``; the vertical dimension has the
  steeper slope (every extra row adds a full coordination round-trip);
* the fully-connected flavour is markedly more expensive (≈ 3× at 31×31,
  54 s vs 178 s in the paper) because every row exchanges ``h²`` messages.

The driver is a :class:`~repro.experiments.ParameterGrid` declaration
(connectivity × h × v) executed through :meth:`GinFlow.sweep`.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import ParameterGrid
from repro.runtime import GinFlow, GinFlowConfig
from repro.workflow import diamond_workflow

from .common import experiment_scale, format_table

__all__ = ["SMALL_SIZES", "PAPER_SIZES", "fig12_grid", "run_fig12", "format_fig12"]

#: Reduced grid used by default (keeps the bench suite fast).
SMALL_SIZES = (1, 6, 11, 16)

#: The paper's grid (Fig. 12 plots 1..31 on both axes).
PAPER_SIZES = (1, 6, 11, 16, 21, 26, 31)

#: Very low constant task execution time, as in the paper.
TASK_DURATION = 0.1


def fig12_grid(scale: str | None = None, connectivities: tuple[str, ...] = ("simple", "full")) -> ParameterGrid:
    """The Fig. 12 parameter grid: connectivity × horizontal × vertical."""
    sizes = PAPER_SIZES if experiment_scale(scale) == "paper" else SMALL_SIZES
    return ParameterGrid(
        {"connectivity": list(connectivities), "horizontal": sizes, "vertical": sizes}
    )


def _fig12_workflow(connectivity: str, horizontal: int, vertical: int):
    return diamond_workflow(horizontal, vertical, connectivity=connectivity, duration=TASK_DURATION)


def _fig12_metrics(report, cell, workflow) -> dict[str, Any]:
    return {
        "services": len(workflow),
        "coordination_time": report.execution_time,
        "messages": report.messages_published,
        "succeeded": report.succeeded,
    }


def run_fig12(
    scale: str | None = None,
    connectivities: tuple[str, ...] = ("simple", "full"),
    nodes: int = 25,
    broker: str = "activemq",
    seed: int = 1,
    workers: int | None = None,
) -> list[dict[str, Any]]:
    """Run the Fig. 12 sweep; returns one row per (connectivity, h, v) point."""
    config = GinFlowConfig(nodes=nodes, executor="ssh", broker=broker, seed=seed, collect_timeline=False)
    report = GinFlow(config).sweep(
        _fig12_workflow,
        fig12_grid(scale, connectivities),
        name="fig12",
        metrics=_fig12_metrics,
        workers=workers,
    )
    return report.rows


def format_fig12(rows: list[dict[str, Any]]) -> str:
    """Text rendering of the Fig. 12 surfaces."""
    return format_table(
        rows,
        columns=["connectivity", "horizontal", "vertical", "services", "coordination_time", "messages"],
        title="Fig. 12 — coordination timespan of diamond-shaped workflows (seconds)",
    )
