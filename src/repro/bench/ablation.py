"""Ablation experiments (not figures of the paper, but design-choice checks).

Two ablations back up discussion points of the paper:

* **HOCL matching cost vs. solution size** (Section V-A: "the complexity of
  the pattern matching process depends on the size of the solution") — reduce
  multisets of increasing size with the getMax rule and measure reactions and
  match attempts per atom.
* **Status-update traffic** (Section IV-A: every agent pushes its status to
  the shared multiset) — run the same diamond with and without status
  updates to isolate their share of the coordination time.

Both are :class:`~repro.experiments.ParameterGrid` declarations executed
through :meth:`GinFlow.sweep` — the first with a custom micro-benchmark
runner, the second as a regular sweep over two cost models.
"""

from __future__ import annotations

import time
from typing import Any

from repro.experiments import ParameterGrid
from repro.hocl import Multiset, Ref, Rule, Var, reduce_solution
from repro.runtime import CostModel, GinFlow, GinFlowConfig
from repro.workflow import diamond_workflow

from .common import format_table

__all__ = ["run_matching_cost_ablation", "run_status_update_ablation", "format_ablation"]


def _measure_matching_cost(workflow, config, cell) -> dict[str, Any]:
    """Custom sweep runner: reduce a getMax multiset and time it."""
    size = cell["solution_size"]
    max_rule = Rule(
        "max",
        [Var("x", kind="int"), Var("y", kind="int")],
        [Ref("x")],
        condition=lambda b: b.value("x") >= b.value("y"),
    )
    solution = Multiset(list(range(size)) + [max_rule])
    started = time.perf_counter()
    report = reduce_solution(solution)
    elapsed = time.perf_counter() - started
    return {
        "reactions": report.reactions,
        "match_attempts": report.match_attempts,
        "wall_time_s": elapsed,
        "final_size": len(solution),
    }


def run_matching_cost_ablation(sizes: tuple[int, ...] = (10, 50, 100, 200)) -> list[dict[str, Any]]:
    """Measure HOCL reduction cost as the multiset grows (getMax workload)."""
    report = GinFlow().sweep(
        None,
        ParameterGrid({"solution_size": list(sizes)}),
        name="ablation-matching-cost",
        runner=_measure_matching_cost,
    )
    return report.rows


def _status_workflow(size: int):
    return diamond_workflow(size, size, connectivity="simple", duration=0.1)


def run_status_update_ablation(size: int = 8, nodes: int = 15) -> list[dict[str, Any]]:
    """Compare coordination time with and without shared-space status updates."""
    grid = ParameterGrid(
        {
            "costs": [
                CostModel(status_update_enabled=True),
                CostModel(status_update_enabled=False),
            ],
            "size": [size],
        }
    )
    config = GinFlowConfig(nodes=nodes, executor="ssh", broker="activemq", collect_timeline=False)
    report = GinFlow(config).sweep(_status_workflow, grid, name="ablation-status-updates")
    return [
        {
            "status_updates": run["costs"].status_update_enabled,
            "execution_time": run["execution_time"],
            "messages": run["messages"],
            "succeeded": run["succeeded"],
        }
        for run in report.rows
    ]


def format_ablation(matching_rows: list[dict[str, Any]], status_rows: list[dict[str, Any]]) -> str:
    """Text rendering of both ablations."""
    return "\n\n".join(
        [
            format_table(
                matching_rows,
                columns=["solution_size", "reactions", "match_attempts", "wall_time_s"],
                title="Ablation A — HOCL pattern-matching cost vs. solution size",
            ),
            format_table(
                status_rows,
                columns=["status_updates", "execution_time", "messages"],
                title="Ablation B — shared-space status-update traffic",
            ),
        ]
    )
