"""Ablation experiments (not figures of the paper, but design-choice checks).

Two ablations back up discussion points of the paper:

* **HOCL matching cost vs. solution size** (Section V-A: "the complexity of
  the pattern matching process depends on the size of the solution") — reduce
  multisets of increasing size with the getMax rule and measure reactions and
  match attempts per atom.
* **Status-update traffic** (Section IV-A: every agent pushes its status to
  the shared multiset) — run the same diamond with and without status
  updates to isolate their share of the coordination time.
"""

from __future__ import annotations

import time
from typing import Any

from repro.hocl import Multiset, Ref, Rule, Var, reduce_solution
from repro.runtime import CostModel, GinFlowConfig, run_simulation
from repro.workflow import diamond_workflow

from .common import format_table

__all__ = ["run_matching_cost_ablation", "run_status_update_ablation", "format_ablation"]


def run_matching_cost_ablation(sizes: tuple[int, ...] = (10, 50, 100, 200)) -> list[dict[str, Any]]:
    """Measure HOCL reduction cost as the multiset grows (getMax workload)."""
    rows: list[dict[str, Any]] = []
    for size in sizes:
        max_rule = Rule(
            "max",
            [Var("x", kind="int"), Var("y", kind="int")],
            [Ref("x")],
            condition=lambda b: b.value("x") >= b.value("y"),
        )
        solution = Multiset(list(range(size)) + [max_rule])
        started = time.perf_counter()
        report = reduce_solution(solution)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "solution_size": size,
                "reactions": report.reactions,
                "match_attempts": report.match_attempts,
                "wall_time_s": elapsed,
                "final_size": len(solution),
            }
        )
    return rows


def run_status_update_ablation(size: int = 8, nodes: int = 15) -> list[dict[str, Any]]:
    """Compare coordination time with and without shared-space status updates."""
    workflow = diamond_workflow(size, size, connectivity="simple", duration=0.1)
    rows: list[dict[str, Any]] = []
    for enabled in (True, False):
        config = GinFlowConfig(
            nodes=nodes,
            executor="ssh",
            broker="activemq",
            costs=CostModel(status_update_enabled=enabled),
            collect_timeline=False,
        )
        report = run_simulation(workflow, config)
        rows.append(
            {
                "status_updates": enabled,
                "execution_time": report.execution_time,
                "messages": report.messages_published,
                "succeeded": report.succeeded,
            }
        )
    return rows


def format_ablation(matching_rows: list[dict[str, Any]], status_rows: list[dict[str, Any]]) -> str:
    """Text rendering of both ablations."""
    return "\n\n".join(
        [
            format_table(
                matching_rows,
                columns=["solution_size", "reactions", "match_attempts", "wall_time_s"],
                title="Ablation A — HOCL pattern-matching cost vs. solution size",
            ),
            format_table(
                status_rows,
                columns=["status_updates", "execution_time", "messages"],
                title="Ablation B — shared-space status-update traffic",
            ),
        ]
    )
