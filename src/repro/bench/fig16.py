"""Fig. 16 — Resilience: execution time under injected agent failures.

The Montage workflow runs over the Mesos executor and the Kafka broker while
every running agent fails with probability ``p`` after ``T`` seconds of
service execution (a restarted agent can fail again).  The paper sweeps
``p ∈ {0.2, 0.5, 0.8}`` and ``T ∈ {0, 15, 100}`` seconds, repeats every point
up to 10 times and compares against the no-failure baseline (484 s average).

Expected shape:

* the overhead grows with ``p`` for every ``T``;
* ``T = 0`` failures are cheap to recover (little work lost) — tens of
  seconds of overhead even for hundreds of failures;
* ``T = 15`` exposes ≈ 95 % of the services and loses 15 s of work per
  failure, with a larger spread;
* ``T = 100`` only hits the long projection tasks but loses 100 s per
  failure, so the overhead dominates at high ``p``.
"""

from __future__ import annotations

from typing import Any

from repro.runtime import GinFlowConfig, run_simulation
from repro.services import FailureModel
from repro.workflow import montage_workflow

from .common import experiment_scale, format_table, mean, std

__all__ = ["PROBABILITIES", "DELAYS", "run_fig16", "run_fig16_baseline", "format_fig16"]

#: Failure probabilities of the paper.
PROBABILITIES = (0.2, 0.5, 0.8)

#: Failure delays (seconds) of the paper.
DELAYS = (0.0, 15.0, 100.0)


def run_fig16_baseline(repetitions: int = 3, seed: int = 1) -> dict[str, Any]:
    """The no-failure reference execution (the dashed line of Fig. 16)."""
    times = []
    for repetition in range(repetitions):
        config = GinFlowConfig(
            nodes=25, executor="mesos", broker="kafka", seed=seed + repetition, collect_timeline=False
        )
        report = run_simulation(montage_workflow(seed=seed), config)
        times.append(report.execution_time)
    return {"mean": mean(times), "std": std(times), "repetitions": repetitions}


def run_fig16(
    scale: str | None = None,
    repetitions: int | None = None,
    probabilities: tuple[float, ...] = PROBABILITIES,
    delays: tuple[float, ...] = DELAYS,
    seed: int = 1,
) -> list[dict[str, Any]]:
    """Run the Fig. 16 failure sweep; one row per (T, p) cell."""
    if repetitions is None:
        repetitions = 10 if experiment_scale(scale) == "paper" else 2
    workflow = montage_workflow(seed=seed)
    rows: list[dict[str, Any]] = []
    for delay in delays:
        for probability in probabilities:
            times: list[float] = []
            failures: list[float] = []
            recoveries: list[float] = []
            for repetition in range(repetitions):
                config = GinFlowConfig(
                    nodes=25,
                    executor="mesos",
                    broker="kafka",
                    seed=seed + 100 * repetition + int(probability * 10) + int(delay),
                    failures=FailureModel(probability=probability, delay=delay),
                    collect_timeline=False,
                )
                report = run_simulation(workflow, config)
                times.append(report.execution_time)
                failures.append(report.failures_injected)
                recoveries.append(report.recoveries)
            rows.append(
                {
                    "T": delay,
                    "p": probability,
                    "execution_time": mean(times),
                    "execution_time_std": std(times),
                    "failures": mean(failures),
                    "recoveries": mean(recoveries),
                    "repetitions": repetitions,
                }
            )
    return rows


def format_fig16(rows: list[dict[str, Any]], baseline: dict[str, Any] | None = None) -> str:
    """Text rendering of the Fig. 16 bars."""
    title = "Fig. 16 — Montage execution time under injected failures (Mesos + Kafka)"
    if baseline:
        title += f"\n  no-failure baseline: {baseline['mean']:.1f} s (std {baseline['std']:.1f})"
    return format_table(
        rows,
        columns=["T", "p", "execution_time", "execution_time_std", "failures", "recoveries"],
        title=title,
    )
