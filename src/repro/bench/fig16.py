"""Fig. 16 — Resilience: execution time under injected agent failures.

The Montage workflow runs over the Mesos executor and the Kafka broker while
every running agent fails with probability ``p`` after ``T`` seconds of
service execution (a restarted agent can fail again).  The paper sweeps
``p ∈ {0.2, 0.5, 0.8}`` and ``T ∈ {0, 15, 100}`` seconds, repeats every point
up to 10 times and compares against the no-failure baseline (484 s average).

Expected shape:

* the overhead grows with ``p`` for every ``T``;
* ``T = 0`` failures are cheap to recover (little work lost) — tens of
  seconds of overhead even for hundreds of failures;
* ``T = 15`` exposes ≈ 95 % of the services and loses 15 s of work per
  failure, with a larger spread;
* ``T = 100`` only hits the long projection tasks but loses 100 s per
  failure, so the overhead dominates at high ``p``.

The driver is a :class:`~repro.experiments.ParameterGrid` declaration
(failure delay × failure probability, with repeats) executed through
:meth:`GinFlow.sweep`; the ``failure_probability`` / ``failure_delay`` cell
keys build the per-cell :class:`~repro.services.FailureModel` automatically.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import ParameterGrid
from repro.runtime import GinFlow, GinFlowConfig
from repro.workflow import montage_workflow

from .common import experiment_scale, format_table

__all__ = ["PROBABILITIES", "DELAYS", "fig16_grid", "run_fig16", "run_fig16_baseline", "format_fig16"]

#: Failure probabilities of the paper.
PROBABILITIES = (0.2, 0.5, 0.8)

#: Failure delays (seconds) of the paper.
DELAYS = (0.0, 15.0, 100.0)


def fig16_grid(
    probabilities: tuple[float, ...] = PROBABILITIES,
    delays: tuple[float, ...] = DELAYS,
) -> ParameterGrid:
    """The Fig. 16 grid: failure delay (outer) × failure probability."""
    return ParameterGrid({"failure_delay": delays, "failure_probability": probabilities})


def _fig16_config(seed: int) -> GinFlowConfig:
    return GinFlowConfig(nodes=25, executor="mesos", broker="kafka", seed=seed, collect_timeline=False)


def run_fig16_baseline(repetitions: int = 3, seed: int = 1, workers: int | None = None) -> dict[str, Any]:
    """The no-failure reference execution (the dashed line of Fig. 16)."""
    report = GinFlow(_fig16_config(seed)).sweep(
        lambda: montage_workflow(seed=seed),
        ParameterGrid({}),
        repeats=repetitions,
        name="fig16-baseline",
        workers=workers,
    )
    cell = report.cells(metrics=("execution_time",))[0]
    return {"mean": cell["execution_time_mean"], "std": cell["execution_time_std"], "repetitions": cell["runs"]}


def run_fig16(
    scale: str | None = None,
    repetitions: int | None = None,
    probabilities: tuple[float, ...] = PROBABILITIES,
    delays: tuple[float, ...] = DELAYS,
    seed: int = 1,
    workers: int | None = None,
) -> list[dict[str, Any]]:
    """Run the Fig. 16 failure sweep; one row per (T, p) cell."""
    if repetitions is None:
        repetitions = 10 if experiment_scale(scale) == "paper" else 2
    report = GinFlow(_fig16_config(seed)).sweep(
        lambda: montage_workflow(seed=seed),
        fig16_grid(probabilities, delays),
        repeats=repetitions,
        name="fig16",
        workers=workers,
    )
    rows: list[dict[str, Any]] = []
    for cell in report.cells(metrics=("execution_time", "failures", "recoveries")):
        rows.append(
            {
                "T": cell["failure_delay"],
                "p": cell["failure_probability"],
                "execution_time": cell["execution_time_mean"],
                "execution_time_std": cell["execution_time_std"],
                "failures": cell["failures_mean"],
                "recoveries": cell["recoveries_mean"],
                "repetitions": cell["runs"],
            }
        )
    return rows


def format_fig16(rows: list[dict[str, Any]], baseline: dict[str, Any] | None = None) -> str:
    """Text rendering of the Fig. 16 bars."""
    title = "Fig. 16 — Montage execution time under injected failures (Mesos + Kafka)"
    if baseline:
        title += f"\n  no-failure baseline: {baseline['mean']:.1f} s (std {baseline['std']:.1f})"
    return format_table(
        rows,
        columns=["T", "p", "execution_time", "execution_time_std", "failures", "recoveries"],
        title=title,
    )
