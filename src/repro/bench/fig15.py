"""Fig. 15 — Shape and task-duration CDF of the Montage workflow.

The resilience experiment uses a 118-task Montage workflow (mosaic of the M45
cluster).  Fig. 15 characterises it: the DAG shape (a very wide parallel
projection stage of 108 tasks feeding a merge chain) and the cumulative
distribution of task durations, annotated with three duration classes
(``T < 20``, ``20 < T < 60``, ``60 < T``).

This harness regenerates both: the per-level width profile of the generated
workflow and its duration CDF / class counts.  Like the other drivers it is
a :class:`~repro.experiments.ParameterGrid` declaration executed through
:meth:`GinFlow.sweep` — with a custom *runner* that characterises the
workload instead of executing it (Fig. 15 measures the workflow, not a run).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.experiments import ParameterGrid
from repro.runtime import GinFlow
from repro.workflow import duration_cdf, duration_classes, montage_workflow

from .common import format_table

__all__ = ["fig15_grid", "run_fig15", "format_fig15"]


def fig15_grid(seed: int = 1) -> ParameterGrid:
    """The (degenerate) Fig. 15 grid: one Montage workload per seed."""
    # "workload_seed" (not "seed") so the value routes to the workflow
    # factory rather than to the run configuration.
    return ParameterGrid({"workload_seed": [seed]})


def _fig15_workflow(workload_seed: int):
    return montage_workflow(seed=workload_seed)


def _characterize(workflow, config, cell) -> dict[str, Any]:
    """Custom sweep runner: measure the workload itself (no execution)."""
    durations, fractions = duration_cdf(workflow)
    classes = duration_classes(workflow)
    levels = workflow.levels()
    cdf_points = [
        {"duration": float(duration), "fraction": float(fraction)}
        for duration, fraction in zip(durations, fractions)
    ]
    return {
        "task_count": len(workflow),
        "level_widths": [len(level) for level in levels],
        "max_parallelism": max(len(level) for level in levels),
        "duration_classes": classes,
        "duration_min": float(np.min(durations)),
        "duration_max": float(np.max(durations)),
        "critical_path": workflow.critical_path_length(),
        "cdf": cdf_points,
    }


def run_fig15(seed: int = 1) -> dict[str, Any]:
    """Build the Montage workload and compute its Fig. 15 characterisation."""
    report = GinFlow().sweep(
        _fig15_workflow, fig15_grid(seed), name="fig15", runner=_characterize
    )
    return report.rows[0]


def format_fig15(data: dict[str, Any]) -> str:
    """Text rendering of the Fig. 15 characterisation."""
    class_rows = [
        {"duration_class": name, "tasks": count, "fraction": count / data["task_count"]}
        for name, count in data["duration_classes"].items()
    ]
    lines = [
        "Fig. 15 — Montage workflow shape and task-duration CDF",
        f"  tasks            : {data['task_count']}",
        f"  level widths     : {data['level_widths']}",
        f"  max parallelism  : {data['max_parallelism']}",
        f"  duration range   : {data['duration_min']:.0f} s .. {data['duration_max']:.0f} s",
        f"  critical path    : {data['critical_path']:.0f} s",
        "",
        format_table(class_rows, columns=["duration_class", "tasks", "fraction"]),
    ]
    return "\n".join(lines)
