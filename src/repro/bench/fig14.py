"""Fig. 14 — Executor and messaging-middleware impact.

A 10×10 simple-connected diamond is executed with every combination of
executor (SSH, Mesos) and messaging middleware (ActiveMQ, Kafka) on 5, 10 and
15 nodes; the reported time is split into deployment time and execution time
(averaged over several runs in the paper).  Expected shape:

* SSH deployment time increases slightly with the node count (more SSH
  channels to manage), while Mesos deployment time decreases roughly linearly
  (each resource offer contains more machines, so more agents start per
  offer round);
* execution time barely depends on the executor but strongly on the broker:
  Kafka runs ≈ 4× slower than ActiveMQ.

The driver is a :class:`~repro.experiments.ParameterGrid` declaration
(executor × broker × nodes, with repeats) executed through
:meth:`GinFlow.sweep` and aggregated per cell.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import ParameterGrid
from repro.runtime import GinFlow, GinFlowConfig
from repro.workflow import diamond_workflow

from .common import experiment_scale, format_table

__all__ = ["NODE_COUNTS", "COMBINATIONS", "fig14_grid", "run_fig14", "format_fig14"]

#: Node counts of the Fig. 14 x-axis.
NODE_COUNTS = (5, 10, 15)

#: Executor / broker combinations of the paper.
COMBINATIONS = (
    ("ssh", "activemq"),
    ("ssh", "kafka"),
    ("mesos", "activemq"),
    ("mesos", "kafka"),
)

DIAMOND_SIZE = 10
TASK_DURATION = 0.1


def fig14_grid() -> ParameterGrid:
    """The Fig. 14 grid: the paper's (executor, broker) pairs × node count."""
    return ParameterGrid(
        [
            {"executor": [executor], "broker": [broker], "nodes": NODE_COUNTS}
            for executor, broker in COMBINATIONS
        ]
    )


def _fig14_workflow():
    return diamond_workflow(DIAMOND_SIZE, DIAMOND_SIZE, connectivity="simple", duration=TASK_DURATION)


def run_fig14(
    scale: str | None = None,
    repetitions: int | None = None,
    seed: int = 1,
    workers: int | None = None,
) -> list[dict[str, Any]]:
    """Run the Fig. 14 grid; one row per (executor, broker, node count)."""
    if repetitions is None:
        repetitions = 10 if experiment_scale(scale) == "paper" else 2
    config = GinFlowConfig(seed=seed, collect_timeline=False)
    report = GinFlow(config).sweep(
        _fig14_workflow, fig14_grid(), repeats=repetitions, name="fig14", workers=workers
    )
    rows: list[dict[str, Any]] = []
    for cell in report.cells(metrics=("deployment_time", "execution_time")):
        rows.append(
            {
                "executor": cell["executor"],
                "broker": cell["broker"],
                "nodes": cell["nodes"],
                "deployment_time": cell["deployment_time_mean"],
                "execution_time": cell["execution_time_mean"],
                "total_time": cell["deployment_time_mean"] + cell["execution_time_mean"],
                "repetitions": cell["runs"],
            }
        )
    return rows


def format_fig14(rows: list[dict[str, Any]]) -> str:
    """Text rendering of the Fig. 14 bars."""
    return format_table(
        rows,
        columns=["executor", "broker", "nodes", "deployment_time", "execution_time", "total_time"],
        title="Fig. 14 — 10x10 diamond: executor / messaging middleware impact (seconds)",
    )
