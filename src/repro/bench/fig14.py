"""Fig. 14 — Executor and messaging-middleware impact.

A 10×10 simple-connected diamond is executed with every combination of
executor (SSH, Mesos) and messaging middleware (ActiveMQ, Kafka) on 5, 10 and
15 nodes; the reported time is split into deployment time and execution time
(averaged over several runs in the paper).  Expected shape:

* SSH deployment time increases slightly with the node count (more SSH
  channels to manage), while Mesos deployment time decreases roughly linearly
  (each resource offer contains more machines, so more agents start per
  offer round);
* execution time barely depends on the executor but strongly on the broker:
  Kafka runs ≈ 4× slower than ActiveMQ.
"""

from __future__ import annotations

from typing import Any

from repro.runtime import GinFlowConfig, run_simulation
from repro.workflow import diamond_workflow

from .common import experiment_scale, format_table, mean

__all__ = ["NODE_COUNTS", "COMBINATIONS", "run_fig14", "format_fig14"]

#: Node counts of the Fig. 14 x-axis.
NODE_COUNTS = (5, 10, 15)

#: Executor / broker combinations of the paper.
COMBINATIONS = (
    ("ssh", "activemq"),
    ("ssh", "kafka"),
    ("mesos", "activemq"),
    ("mesos", "kafka"),
)

DIAMOND_SIZE = 10
TASK_DURATION = 0.1


def run_fig14(
    scale: str | None = None,
    repetitions: int | None = None,
    seed: int = 1,
) -> list[dict[str, Any]]:
    """Run the Fig. 14 grid; one row per (executor, broker, node count)."""
    if repetitions is None:
        repetitions = 10 if experiment_scale(scale) == "paper" else 2
    workflow = diamond_workflow(DIAMOND_SIZE, DIAMOND_SIZE, connectivity="simple", duration=TASK_DURATION)
    rows: list[dict[str, Any]] = []
    for executor, broker in COMBINATIONS:
        for nodes in NODE_COUNTS:
            deployments: list[float] = []
            executions: list[float] = []
            for repetition in range(repetitions):
                config = GinFlowConfig(
                    nodes=nodes,
                    executor=executor,
                    broker=broker,
                    seed=seed + repetition,
                    collect_timeline=False,
                )
                report = run_simulation(workflow, config)
                deployments.append(report.deployment_time)
                executions.append(report.execution_time)
            rows.append(
                {
                    "executor": executor,
                    "broker": broker,
                    "nodes": nodes,
                    "deployment_time": mean(deployments),
                    "execution_time": mean(executions),
                    "total_time": mean(deployments) + mean(executions),
                    "repetitions": repetitions,
                }
            )
    return rows


def format_fig14(rows: list[dict[str, Any]]) -> str:
    """Text rendering of the Fig. 14 bars."""
    return format_table(
        rows,
        columns=["executor", "broker", "nodes", "deployment_time", "execution_time", "total_time"],
        title="Fig. 14 — 10x10 diamond: executor / messaging middleware impact (seconds)",
    )
