"""Fig. 13 — Adaptiveness overhead (with/without-adaptation ratio).

The paper executes square diamond workflows (``h = v``), raises an exception
on the *last* service of the mesh, and replaces the whole diamond body
on-the-fly; the reported metric is the ratio between the adaptive execution
time and a regular (no failure, no adaptation) execution of the same
workflow.  Three scenarios are studied:

* *simple to simple* — replace a simple-connected body by another one;
* *simple to full* — replace a simple-connected body by a fully-connected one;
* *full to simple* — replace a fully-connected body by a simple-connected one.

Expected shape: the ratio stays below ≈ 2 for simple→simple (adapting is
cheaper than re-running the workflow from scratch), between ≈ 2 and 3 for
simple→full, and constant-or-decreasing for full→simple.

The driver is a :class:`~repro.experiments.ParameterGrid` declaration
(scenario × size × variant) executed through :meth:`GinFlow.sweep`; the
baseline/adaptive pairs are then joined into ratio rows.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import ParameterGrid
from repro.runtime import GinFlow, GinFlowConfig
from repro.workflow import adaptive_diamond_workflow, diamond_workflow

from .common import experiment_scale, format_table

__all__ = ["SCENARIOS", "SMALL_CONFIGURATIONS", "PAPER_CONFIGURATIONS", "fig13_grid", "run_fig13", "format_fig13"]

#: The three replacement scenarios of the paper.
SCENARIOS = (
    ("simple-to-simple", "simple", "simple"),
    ("simple-to-full", "simple", "full"),
    ("full-to-simple", "full", "simple"),
)

_SCENARIO_CONNECTIVITY = {name: (body, replacement) for name, body, replacement in SCENARIOS}

#: Reduced set of square configurations.
SMALL_CONFIGURATIONS = (1, 6, 11)

#: The paper's configurations (Fig. 13 x-axis).
PAPER_CONFIGURATIONS = (1, 6, 11, 16, 21)

TASK_DURATION = 0.1


def fig13_grid(scale: str | None = None) -> ParameterGrid:
    """The Fig. 13 grid: scenario × size × (baseline, adaptive) variant."""
    configurations = PAPER_CONFIGURATIONS if experiment_scale(scale) == "paper" else SMALL_CONFIGURATIONS
    return ParameterGrid(
        {
            "scenario": [name for name, _, _ in SCENARIOS],
            "size": configurations,
            "variant": ["baseline", "adaptive"],
        }
    )


def _fig13_workflow(scenario: str, size: int, variant: str):
    body, replacement = _SCENARIO_CONNECTIVITY[scenario]
    if variant == "baseline":
        return diamond_workflow(size, size, connectivity=body, duration=TASK_DURATION)
    return adaptive_diamond_workflow(
        size, size, body_connectivity=body, replacement_connectivity=replacement, duration=TASK_DURATION
    )


def run_fig13(
    scale: str | None = None,
    nodes: int = 25,
    broker: str = "activemq",
    seed: int = 1,
    workers: int | None = None,
) -> list[dict[str, Any]]:
    """Run the Fig. 13 sweep; one row per (scenario, configuration)."""
    config = GinFlowConfig(nodes=nodes, executor="ssh", broker=broker, seed=seed, collect_timeline=False)
    report = GinFlow(config).sweep(
        _fig13_workflow, fig13_grid(scale), name="fig13", workers=workers
    )
    # Join each (scenario, size) baseline/adaptive pair into one ratio row.
    by_point: dict[tuple[str, int], dict[str, Any]] = {}
    for run in report.rows:
        by_point.setdefault((run["scenario"], run["size"]), {})[run["variant"]] = run
    rows: list[dict[str, Any]] = []
    for (scenario, size), pair in by_point.items():
        baseline, adaptive = pair["baseline"], pair["adaptive"]
        ratio = (
            adaptive["execution_time"] / baseline["execution_time"]
            if baseline["execution_time"]
            else float("nan")
        )
        rows.append(
            {
                "scenario": scenario,
                "configuration": f"{size}x{size}",
                "size": size,
                "baseline_time": baseline["execution_time"],
                "adaptive_time": adaptive["execution_time"],
                "ratio": ratio,
                "adaptations_triggered": adaptive["adaptations"],
                "succeeded": adaptive["succeeded"] and baseline["succeeded"],
            }
        )
    return rows


def format_fig13(rows: list[dict[str, Any]]) -> str:
    """Text rendering of the Fig. 13 ratios."""
    return format_table(
        rows,
        columns=["scenario", "configuration", "baseline_time", "adaptive_time", "ratio"],
        title="Fig. 13 — with-adaptiveness over without-adaptiveness execution-time ratio",
    )
