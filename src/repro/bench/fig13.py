"""Fig. 13 — Adaptiveness overhead (with/without-adaptation ratio).

The paper executes square diamond workflows (``h = v``), raises an exception
on the *last* service of the mesh, and replaces the whole diamond body
on-the-fly; the reported metric is the ratio between the adaptive execution
time and a regular (no failure, no adaptation) execution of the same
workflow.  Three scenarios are studied:

* *simple to simple* — replace a simple-connected body by another one;
* *simple to full* — replace a simple-connected body by a fully-connected one;
* *full to simple* — replace a fully-connected body by a simple-connected one.

Expected shape: the ratio stays below ≈ 2 for simple→simple (adapting is
cheaper than re-running the workflow from scratch), between ≈ 2 and 3 for
simple→full, and constant-or-decreasing for full→simple.
"""

from __future__ import annotations

from typing import Any

from repro.runtime import GinFlowConfig, run_simulation
from repro.workflow import adaptive_diamond_workflow, diamond_workflow

from .common import experiment_scale, format_table

__all__ = ["SCENARIOS", "SMALL_CONFIGURATIONS", "PAPER_CONFIGURATIONS", "run_fig13", "format_fig13"]

#: The three replacement scenarios of the paper.
SCENARIOS = (
    ("simple-to-simple", "simple", "simple"),
    ("simple-to-full", "simple", "full"),
    ("full-to-simple", "full", "simple"),
)

#: Reduced set of square configurations.
SMALL_CONFIGURATIONS = (1, 6, 11)

#: The paper's configurations (Fig. 13 x-axis).
PAPER_CONFIGURATIONS = (1, 6, 11, 16, 21)

TASK_DURATION = 0.1


def run_fig13(
    scale: str | None = None,
    nodes: int = 25,
    broker: str = "activemq",
    seed: int = 1,
) -> list[dict[str, Any]]:
    """Run the Fig. 13 sweep; one row per (scenario, configuration)."""
    configurations = PAPER_CONFIGURATIONS if experiment_scale(scale) == "paper" else SMALL_CONFIGURATIONS
    config = GinFlowConfig(nodes=nodes, executor="ssh", broker=broker, seed=seed, collect_timeline=False)
    rows: list[dict[str, Any]] = []
    for scenario, body, replacement in SCENARIOS:
        for size in configurations:
            baseline_workflow = diamond_workflow(size, size, connectivity=body, duration=TASK_DURATION)
            baseline = run_simulation(baseline_workflow, config)
            adaptive_workflow = adaptive_diamond_workflow(
                size, size, body_connectivity=body, replacement_connectivity=replacement, duration=TASK_DURATION
            )
            adaptive = run_simulation(adaptive_workflow, config)
            ratio = adaptive.execution_time / baseline.execution_time if baseline.execution_time else float("nan")
            rows.append(
                {
                    "scenario": scenario,
                    "configuration": f"{size}x{size}",
                    "size": size,
                    "baseline_time": baseline.execution_time,
                    "adaptive_time": adaptive.execution_time,
                    "ratio": ratio,
                    "adaptations_triggered": adaptive.adaptations_triggered,
                    "succeeded": adaptive.succeeded and baseline.succeeded,
                }
            )
    return rows


def format_fig13(rows: list[dict[str, Any]]) -> str:
    """Text rendering of the Fig. 13 ratios."""
    return format_table(
        rows,
        columns=["scenario", "configuration", "baseline_time", "adaptive_time", "ratio"],
        title="Fig. 13 — with-adaptiveness over without-adaptiveness execution-time ratio",
    )
