"""The user-facing workflow model: tasks and their dependency DAG.

A :class:`Workflow` is the "abstract workflow" of the paper (Fig. 2): a set
of named :class:`Task` objects plus data/control dependencies forming a
directed acyclic graph.  Everything else — the HOCL encoding, the generic
enactment rules, the adaptation rules — is derived from this object by
:mod:`repro.hoclflow`.

Tasks carry the name of the *service* that implements them, an optional list
of initial inputs (the ``IN`` atom of the encoding), and free-form metadata.
The most important metadata key is ``duration``, the nominal execution time
of the service in seconds, used by the simulated services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import networkx as nx

from .errors import WorkflowValidationError

__all__ = ["Task", "Workflow"]


@dataclass
class Task:
    """One node of the workflow DAG.

    Attributes
    ----------
    name:
        Unique task identifier (``T1``, ``mProject_17``...).
    service:
        Name of the service implementing the task, resolved against the
        :class:`~repro.services.registry.ServiceRegistry` at run time.
    inputs:
        Initial input values placed in the task's ``IN`` atom before
        execution (only entry tasks normally have any).
    duration:
        Nominal service execution time in seconds (used by simulated
        services; ignored when the service is a real Python callable that
        does its own work).
    metadata:
        Free-form extra information (workload class, level index, ...).
    """

    name: str
    service: str
    inputs: list[Any] = field(default_factory=list)
    duration: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise WorkflowValidationError(f"task name must be a non-empty string, got {self.name!r}")
        if not self.service or not isinstance(self.service, str):
            raise WorkflowValidationError(
                f"task {self.name!r}: service must be a non-empty string, got {self.service!r}"
            )
        if self.duration < 0:
            raise WorkflowValidationError(f"task {self.name!r}: duration must be >= 0")

    def copy(self) -> "Task":
        """An independent copy of the task."""
        return Task(
            name=self.name,
            service=self.service,
            inputs=list(self.inputs),
            duration=self.duration,
            metadata=dict(self.metadata),
        )


class Workflow:
    """A named DAG of tasks.

    The class maintains the invariants the rest of the system relies on:
    unique task names, dependencies referring to known tasks, and acyclicity
    (checked on :meth:`validate`, which every consumer calls before use).

    Adaptation specifications (see :mod:`repro.workflow.adaptive`) attach to
    the workflow through :meth:`add_adaptation`.
    """

    def __init__(self, name: str = "workflow", tasks: Iterable[Task] = ()):  # noqa: B008
        if not name:
            raise WorkflowValidationError("workflow name must be non-empty")
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._successors: dict[str, list[str]] = {}
        self._predecessors: dict[str, list[str]] = {}
        self.adaptations: list[Any] = []  # list[AdaptationSpec]; untyped to avoid an import cycle
        for task in tasks:
            self.add_task(task)

    # ------------------------------------------------------------- mutation
    def add_task(self, task: Task | str, service: str | None = None, **kwargs: Any) -> Task:
        """Add a task.

        Accepts either a ready-made :class:`Task` or a name plus keyword
        arguments forwarded to the :class:`Task` constructor::

            workflow.add_task("T1", service="s1", inputs=["data"], duration=2.0)
        """
        if isinstance(task, str):
            if service is None:
                raise WorkflowValidationError(f"task {task!r}: a service name is required")
            task = Task(name=task, service=service, **kwargs)
        elif service is not None or kwargs:
            raise WorkflowValidationError("pass either a Task object or name + keyword arguments, not both")
        if task.name in self._tasks:
            raise WorkflowValidationError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._successors.setdefault(task.name, [])
        self._predecessors.setdefault(task.name, [])
        return task

    def add_dependency(self, source: str, destination: str) -> None:
        """Declare that ``destination`` consumes the output of ``source``."""
        for endpoint in (source, destination):
            if endpoint not in self._tasks:
                raise WorkflowValidationError(f"dependency references unknown task {endpoint!r}")
        if source == destination:
            raise WorkflowValidationError(f"task {source!r} cannot depend on itself")
        if destination in self._successors[source]:
            return  # idempotent
        self._successors[source].append(destination)
        self._predecessors[destination].append(source)

    def chain(self, *task_names: str) -> None:
        """Add dependencies forming a chain ``task_names[0] -> ... -> [-1]``."""
        for source, destination in zip(task_names, task_names[1:]):
            self.add_dependency(source, destination)

    def remove_task(self, name: str) -> None:
        """Remove a task and every dependency touching it."""
        if name not in self._tasks:
            raise WorkflowValidationError(f"unknown task {name!r}")
        del self._tasks[name]
        self._successors.pop(name, None)
        self._predecessors.pop(name, None)
        for successors in self._successors.values():
            if name in successors:
                successors.remove(name)
        for predecessors in self._predecessors.values():
            if name in predecessors:
                predecessors.remove(name)

    def add_adaptation(self, spec: Any) -> None:
        """Attach an adaptation specification (validated against this workflow)."""
        spec.validate(self)
        for existing in self.adaptations:
            overlap = set(existing.replaced) & set(spec.replaced)
            if overlap:
                raise WorkflowValidationError(
                    "adaptations must concern disjoint sets of tasks; "
                    f"{spec.name!r} overlaps {existing.name!r} on {sorted(overlap)}"
                )
        self.adaptations.append(spec)

    # -------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    @property
    def tasks(self) -> Mapping[str, Task]:
        """Mapping of task name to :class:`Task` (read-only view)."""
        return dict(self._tasks)

    def task(self, name: str) -> Task:
        """The task named ``name`` (raises if unknown)."""
        try:
            return self._tasks[name]
        except KeyError:
            raise WorkflowValidationError(f"unknown task {name!r}") from None

    def task_names(self) -> list[str]:
        """Task names in insertion order."""
        return list(self._tasks)

    def successors(self, name: str) -> list[str]:
        """Names of the tasks consuming the output of ``name``."""
        self.task(name)
        return list(self._successors.get(name, []))

    def predecessors(self, name: str) -> list[str]:
        """Names of the tasks whose output ``name`` consumes."""
        self.task(name)
        return list(self._predecessors.get(name, []))

    def dependencies(self) -> list[tuple[str, str]]:
        """Every dependency as a ``(source, destination)`` pair."""
        return [
            (source, destination)
            for source, successors in self._successors.items()
            for destination in successors
        ]

    def entry_tasks(self) -> list[str]:
        """Tasks with no predecessor (the workflow's inputs)."""
        return [name for name in self._tasks if not self._predecessors.get(name)]

    def exit_tasks(self) -> list[str]:
        """Tasks with no successor (the workflow's outputs)."""
        return [name for name in self._tasks if not self._successors.get(name)]

    def topological_order(self) -> list[str]:
        """Task names in a valid execution order (raises on cycles)."""
        graph = self.to_networkx()
        try:
            return list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise WorkflowValidationError(f"workflow {self.name!r} contains a cycle") from exc

    def levels(self) -> list[list[str]]:
        """Tasks grouped by longest-path depth (level 0 = entry tasks)."""
        order = self.topological_order()
        depth: dict[str, int] = {}
        for name in order:
            predecessors = self._predecessors.get(name, [])
            depth[name] = 0 if not predecessors else 1 + max(depth[p] for p in predecessors)
        grouped: dict[int, list[str]] = {}
        for name, level in depth.items():
            grouped.setdefault(level, []).append(name)
        return [grouped[level] for level in sorted(grouped)]

    def critical_path_length(self) -> float:
        """Length (sum of task durations) of the longest path through the DAG."""
        longest: dict[str, float] = {}
        for name in self.topological_order():
            predecessors = self._predecessors.get(name, [])
            best = max((longest[p] for p in predecessors), default=0.0)
            longest[name] = best + self._tasks[name].duration
        return max(longest.values(), default=0.0)

    def total_work(self) -> float:
        """Sum of every task's duration (the sequential execution time)."""
        return sum(task.duration for task in self._tasks.values())

    def subgraph(self, names: Iterable[str]) -> "Workflow":
        """A new workflow containing only ``names`` and the dependencies among them."""
        selected = set(names)
        for name in selected:
            self.task(name)
        result = Workflow(name=f"{self.name}:subgraph")
        for name in self._tasks:
            if name in selected:
                result.add_task(self._tasks[name].copy())
        for source, destination in self.dependencies():
            if source in selected and destination in selected:
                result.add_dependency(source, destination)
        return result

    def to_networkx(self) -> "nx.DiGraph":
        """The dependency graph as a :class:`networkx.DiGraph` (task names as nodes)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._tasks)
        graph.add_edges_from(self.dependencies())
        return graph

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Check the structural invariants; raise ``WorkflowValidationError`` otherwise."""
        if not self._tasks:
            raise WorkflowValidationError(f"workflow {self.name!r} has no task")
        graph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise WorkflowValidationError(f"workflow {self.name!r} contains a cycle: {cycle}")
        for spec in self.adaptations:
            spec.validate(self)

    def is_valid(self) -> bool:
        """Whether :meth:`validate` passes."""
        try:
            self.validate()
            return True
        except WorkflowValidationError:
            return False

    # -------------------------------------------------------------- utility
    def copy(self) -> "Workflow":
        """Deep copy of the workflow, including adaptations."""
        clone = Workflow(name=self.name)
        for task in self._tasks.values():
            clone.add_task(task.copy())
        for source, destination in self.dependencies():
            clone.add_dependency(source, destination)
        clone.adaptations = [spec.copy() for spec in self.adaptations]
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Workflow({self.name!r}, {len(self._tasks)} tasks, "
            f"{len(self.dependencies())} dependencies, {len(self.adaptations)} adaptations)"
        )
