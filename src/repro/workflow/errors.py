"""Exceptions raised by the workflow model."""

from __future__ import annotations


class WorkflowError(Exception):
    """Base class for workflow-definition errors."""


class WorkflowValidationError(WorkflowError):
    """Raised when a workflow DAG is structurally invalid (cycle, duplicate
    task name, dependency on an unknown task, ...)."""


class AdaptationValidationError(WorkflowError):
    """Raised when an adaptation specification violates the replacement
    hypothesis of the paper (Fig. 9): the replaced region must be connected,
    the replaced region and its replacement must share one single common
    destination, and multiple adaptations must concern disjoint task sets."""


class JSONFormatError(WorkflowError):
    """Raised when a JSON workflow document cannot be interpreted."""
