"""A Montage-like workflow generator.

The resilience experiment of the paper (Section V-D, Fig. 15/16) uses a
118-task workflow built from the Montage astronomy toolbox: a mosaic of the
M45 star cluster assembled from hundreds of input images.  The Montage
binaries are not available offline, so this module generates a workflow with
the *same coordination structure and cost profile*:

* 118 tasks in total,
* a large parallel stage of 108 (re-)projection tasks whose durations are
  heterogeneous, spread between 60 s and 310 s (the paper's reported range),
* a handful of short preparation tasks (duration < 20 s),
* a chain of merge/background-correction tasks of intermediate duration
  (20 s – 60 s) ending in the sensitive final co-addition step,
* a no-failure makespan of ≈ 484 s (the paper's baseline), dominated by the
  longest projection plus the merge chain.

Services are declared *idempotent* (``metadata["idempotent"] = True``) since
the recovery mechanism re-invokes them after an agent failure.
"""

from __future__ import annotations

import numpy as np

from .dag import Task, Workflow

__all__ = ["montage_workflow", "duration_classes", "duration_cdf", "MONTAGE_TASK_COUNT"]

#: Number of tasks in the paper's Montage workflow.
MONTAGE_TASK_COUNT = 118

#: Number of tasks in the wide parallel (projection) stage, as printed on Fig. 15.
MONTAGE_PARALLEL_WIDTH = 108

#: Fixed durations (seconds) of the non-projection tasks, chosen so the
#: critical path ≈ 484 s, matching the paper's no-failure baseline.
_FIXED_DURATIONS: dict[str, float] = {
    "mArchiveList": 5.0,
    "mHdr": 8.0,
    "mImgtbl": 12.0,
    "mDiffFit_1": 25.0,
    "mDiffFit_2": 25.0,
    "mDiffFit_3": 25.0,
    "mBgModel": 20.0,
    "mBgExec": 30.0,
    "mAdd": 65.0,
    "mJPEG": 10.0,
}

#: Duration range of the projection tasks (the paper: "from 60s to 310s").
_PROJECTION_RANGE = (60.0, 310.0)


def _projection_durations(count: int, seed: int) -> np.ndarray:
    """Heterogeneous projection durations, deterministic for a given seed.

    Durations are evenly spread over the published range with a small seeded
    jitter, and the maximum is pinned to the top of the range so that the
    critical path (and therefore the no-failure makespan) is stable across
    seeds — the paper reports a 484 s mean with a 13.5 s standard deviation
    caused by platform noise, which the simulation models separately.
    """
    rng = np.random.default_rng(seed)
    low, high = _PROJECTION_RANGE
    base = np.linspace(low, high, count)
    jitter = rng.uniform(-5.0, 5.0, size=count)
    durations = np.clip(base + jitter, low, high)
    durations[-1] = high  # pin the longest projection
    return rng.permutation(durations)


def montage_workflow(
    projections: int = MONTAGE_PARALLEL_WIDTH,
    seed: int = 1,
    duration_scale: float = 1.0,
    name: str = "montage-m45",
) -> Workflow:
    """Build the Montage-like workflow.

    Parameters
    ----------
    projections:
        Width of the parallel projection stage (108 reproduces the paper).
    seed:
        Seed for the projection-duration jitter (deterministic workflows).
    duration_scale:
        Multiplier applied to every duration — handy for fast tests
        (``duration_scale=0.01`` runs the whole workflow in a few seconds of
        virtual time).
    """
    workflow = Workflow(name=name)

    def add(task_name: str, duration: float, stage: str, **metadata: object) -> Task:
        return workflow.add_task(
            Task(
                name=task_name,
                service="montage",
                duration=duration * duration_scale,
                metadata={"stage": stage, "idempotent": True, **metadata},
            )
        )

    add("mArchiveList", _FIXED_DURATIONS["mArchiveList"], "prepare")
    workflow.task("mArchiveList").inputs.append("m45-archive")
    add("mHdr", _FIXED_DURATIONS["mHdr"], "prepare")
    workflow.add_dependency("mArchiveList", "mHdr")

    projection_durations = _projection_durations(projections, seed)
    for index in range(1, projections + 1):
        task_name = f"mProject_{index}"
        add(task_name, float(projection_durations[index - 1]), "project", index=index)
        workflow.add_dependency("mHdr", task_name)

    add("mImgtbl", _FIXED_DURATIONS["mImgtbl"], "table")
    for index in range(1, projections + 1):
        workflow.add_dependency(f"mProject_{index}", "mImgtbl")

    for diff_index in (1, 2, 3):
        task_name = f"mDiffFit_{diff_index}"
        add(task_name, _FIXED_DURATIONS[task_name], "diff")
        workflow.add_dependency("mImgtbl", task_name)

    add("mBgModel", _FIXED_DURATIONS["mBgModel"], "background")
    for diff_index in (1, 2, 3):
        workflow.add_dependency(f"mDiffFit_{diff_index}", "mBgModel")

    add("mBgExec", _FIXED_DURATIONS["mBgExec"], "background")
    workflow.add_dependency("mBgModel", "mBgExec")

    add("mAdd", _FIXED_DURATIONS["mAdd"], "merge")
    workflow.add_dependency("mBgExec", "mAdd")

    add("mJPEG", _FIXED_DURATIONS["mJPEG"], "publish")
    workflow.add_dependency("mAdd", "mJPEG")

    return workflow


def duration_classes(workflow: Workflow) -> dict[str, int]:
    """Count tasks per duration class as reported on Fig. 15.

    Classes: ``T<20``, ``20<T<60``, ``60<T`` (boundaries in seconds, applied
    to unscaled durations when the workflow carries a ``duration_scale``
    metadata, otherwise to the stored durations).
    """
    counts = {"T<20": 0, "20<T<60": 0, "60<T": 0}
    for task in workflow:
        duration = task.duration
        if duration < 20:
            counts["T<20"] += 1
        elif duration < 60:
            counts["20<T<60"] += 1
        else:
            counts["60<T"] += 1
    return counts


def duration_cdf(workflow: Workflow) -> tuple[np.ndarray, np.ndarray]:
    """The task-duration CDF plotted on Fig. 15.

    Returns ``(durations, fraction)`` where ``fraction[i]`` is the fraction
    of tasks whose duration is ≤ ``durations[i]``.
    """
    durations = np.sort(np.array([task.duration for task in workflow], dtype=float))
    fraction = np.arange(1, len(durations) + 1) / len(durations)
    return durations, fraction
