"""JSON workflow format.

Section IV-D: "the workflow is given in a JSON format which will be
translated into an HOCL workflow prior to execution".  This module defines
that user-facing format and its (de)serialisation.  The schema is:

.. code-block:: json

    {
      "name": "my-workflow",
      "tasks": [
        {"name": "T1", "service": "s1", "inputs": ["input"], "duration": 1.0,
         "depends_on": [], "metadata": {}},
        {"name": "T2", "service": "s2", "depends_on": ["T1"]}
      ],
      "adaptations": [
        {"name": "replace-T2",
         "replaced": ["T2"],
         "trigger_on": ["T2"],
         "entry_sources": {"T2p": ["T1"]},
         "replacement": {"name": "alt", "tasks": [
             {"name": "T2p", "service": "s2-alt", "depends_on": []}]}}
      ]
    }

``workflow_from_json`` accepts a JSON string, a parsed dictionary or a file
path; ``workflow_to_json`` is its inverse (round-trip safe).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .adaptive import AdaptationSpec
from .dag import Task, Workflow
from .errors import JSONFormatError

__all__ = ["workflow_from_json", "workflow_to_json", "workflow_to_dict", "workflow_from_dict"]


def _json_safe(value: Any, context: str) -> Any:
    """Canonical JSON form of a task input / metadata value.

    ``json.dumps`` silently mutates some values (tuples become lists) and
    raises deep inside the encoder on others (numpy integers); scenario
    generators stamp exactly that kind of cost-profile metadata.  Converting
    *before* serialisation makes the round-trip lossless — the canonical form
    is what both the file and the parsed workflow carry — and turns the rest
    into a :class:`JSONFormatError` naming the offending task field.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item, context) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item, context) for item in value]
    # numpy arrays (tolist) and scalars (item) without importing numpy here;
    # tolist first so a 1-element array stays a list instead of collapsing
    # to item()'s scalar
    for attribute in ("tolist", "item"):
        converter = getattr(value, attribute, None)
        if callable(converter):
            try:
                return _json_safe(converter(), context)
            except (TypeError, ValueError):
                continue
    raise JSONFormatError(
        f"{context}: value {value!r} of type {type(value).__name__} is not JSON-serialisable"
    )


def workflow_to_dict(workflow: Workflow) -> dict[str, Any]:
    """Serialise a workflow (and its adaptations) into a JSON-compatible dict.

    Inputs and metadata are normalised to their canonical JSON form
    (tuples/arrays to lists, numpy scalars to Python scalars), so
    ``workflow_from_dict(workflow_to_dict(w))`` reproduces the document
    exactly; values with no JSON form raise :class:`JSONFormatError` here
    instead of deep inside ``json.dumps``.
    """
    document: dict[str, Any] = {
        "name": workflow.name,
        "tasks": [
            {
                "name": task.name,
                "service": task.service,
                "inputs": _json_safe(list(task.inputs), f"task {task.name!r} inputs"),
                "duration": float(task.duration),
                "depends_on": workflow.predecessors(task.name),
                "metadata": _json_safe(dict(task.metadata), f"task {task.name!r} metadata"),
            }
            for task in workflow
        ],
    }
    if workflow.adaptations:
        document["adaptations"] = [
            {
                "name": spec.name,
                "replaced": list(spec.replaced),
                "trigger_on": spec.trigger_tasks(),
                "entry_sources": {key: list(value) for key, value in spec.entry_sources.items()},
                "clear_destination_inputs": spec.clear_destination_inputs,
                "replacement": workflow_to_dict(spec.replacement),
            }
            for spec in workflow.adaptations
        ]
    return document


def workflow_to_json(workflow: Workflow, path: str | Path | None = None, indent: int = 2) -> str:
    """Serialise a workflow to a JSON string, optionally writing it to ``path``."""
    text = json.dumps(workflow_to_dict(workflow), indent=indent)
    if path is not None:
        Path(path).write_text(text + "\n", encoding="utf-8")
    return text


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise JSONFormatError(f"{context}: missing required key {key!r}")
    return mapping[key]


def workflow_from_dict(document: Mapping[str, Any]) -> Workflow:
    """Build a workflow from a parsed JSON document."""
    if not isinstance(document, Mapping):
        raise JSONFormatError(f"workflow document must be an object, got {type(document).__name__}")
    name = document.get("name", "workflow")
    tasks = _require(document, "tasks", f"workflow {name!r}")
    if not isinstance(tasks, list) or not tasks:
        raise JSONFormatError(f"workflow {name!r}: 'tasks' must be a non-empty list")

    workflow = Workflow(name=name)
    dependencies: list[tuple[str, str]] = []
    for entry in tasks:
        if not isinstance(entry, Mapping):
            raise JSONFormatError(f"workflow {name!r}: each task must be an object")
        task_name = _require(entry, "name", f"workflow {name!r} task")
        service = _require(entry, "service", f"task {task_name!r}")
        task = Task(
            name=task_name,
            service=service,
            inputs=list(entry.get("inputs", [])),
            duration=float(entry.get("duration", 0.0)),
            metadata=dict(entry.get("metadata", {})),
        )
        workflow.add_task(task)
        for source in entry.get("depends_on", []):
            dependencies.append((source, task_name))
    for source, destination in dependencies:
        workflow.add_dependency(source, destination)

    for adaptation in document.get("adaptations", []):
        spec_name = _require(adaptation, "name", "adaptation")
        replacement_doc = _require(adaptation, "replacement", f"adaptation {spec_name!r}")
        spec = AdaptationSpec(
            name=spec_name,
            replaced=list(_require(adaptation, "replaced", f"adaptation {spec_name!r}")),
            replacement=workflow_from_dict(replacement_doc),
            entry_sources={
                key: list(value) for key, value in adaptation.get("entry_sources", {}).items()
            },
            trigger_on=list(adaptation["trigger_on"]) if adaptation.get("trigger_on") else None,
            clear_destination_inputs=bool(adaptation.get("clear_destination_inputs", False)),
        )
        workflow.add_adaptation(spec)

    workflow.validate()
    return workflow


def workflow_from_json(source: str | Path | Mapping[str, Any]) -> Workflow:
    """Build a workflow from a JSON string, a file path or a parsed dict."""
    if isinstance(source, Mapping):
        return workflow_from_dict(source)
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and source.endswith(".json")):
        path = Path(source)
        if not path.exists():
            raise JSONFormatError(f"workflow file not found: {path}")
        text = path.read_text(encoding="utf-8")
    else:
        text = str(source)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JSONFormatError(f"invalid JSON workflow document: {exc}") from exc
    return workflow_from_dict(document)
