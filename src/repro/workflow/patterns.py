"""Workflow-pattern generators.

The paper's evaluation (Section V) notes that four patterns — *split*,
*merge*, *sequence* and *parallel* — cover the basic needs of most scientific
pipelines, and builds its synthetic experiments from a *diamond* shape that
combines all four (Fig. 11): one split task, a body of ``h`` parallel columns
by ``v`` sequential rows, and one merge task.  The body comes in a
*simple-connected* flavour (independent columns) and a *fully-connected*
flavour (every task of a row feeds every task of the next row).

This module generates those workflows plus the adaptive variants used by the
Fig. 13 experiment (whole diamond body replaced on-the-fly after an error on
the last body task).
"""

from __future__ import annotations

from typing import Any

from .adaptive import AdaptationSpec
from .dag import Task, Workflow
from .errors import WorkflowValidationError

__all__ = [
    "sequence_workflow",
    "parallel_workflow",
    "split_workflow",
    "merge_workflow",
    "diamond_workflow",
    "adaptive_diamond_workflow",
    "DEFAULT_SERVICE",
]

#: Service name used by every synthetic task; the service registry resolves
#: it to a simulated service that sleeps for the task's ``duration``.
DEFAULT_SERVICE = "synthetic"


def _task(name: str, duration: float, service: str = DEFAULT_SERVICE, **metadata: Any) -> Task:
    return Task(name=name, service=service, duration=duration, metadata=dict(metadata))


def sequence_workflow(length: int, duration: float = 0.1, name: str = "sequence") -> Workflow:
    """A chain of ``length`` tasks: ``S1 -> S2 -> ... -> Sn``."""
    if length < 1:
        raise WorkflowValidationError("sequence length must be >= 1")
    workflow = Workflow(name=name)
    previous: str | None = None
    for index in range(1, length + 1):
        task_name = f"S{index}"
        workflow.add_task(_task(task_name, duration, level=index - 1))
        if index == 1:
            workflow.task(task_name).inputs.append("input")
        if previous is not None:
            workflow.add_dependency(previous, task_name)
        previous = task_name
    return workflow


def parallel_workflow(width: int, duration: float = 0.1, name: str = "parallel") -> Workflow:
    """``width`` independent tasks fed by a split task and joined by a merge task."""
    if width < 1:
        raise WorkflowValidationError("parallel width must be >= 1")
    workflow = Workflow(name=name)
    workflow.add_task(_task("split", duration, level=0))
    workflow.task("split").inputs.append("input")
    workflow.add_task(_task("merge", duration, level=2))
    for index in range(1, width + 1):
        task_name = f"P{index}"
        workflow.add_task(_task(task_name, duration, level=1))
        workflow.add_dependency("split", task_name)
        workflow.add_dependency(task_name, "merge")
    return workflow


def split_workflow(fanout: int, duration: float = 0.1, name: str = "split") -> Workflow:
    """One task whose output fans out to ``fanout`` consumers."""
    if fanout < 1:
        raise WorkflowValidationError("split fanout must be >= 1")
    workflow = Workflow(name=name)
    workflow.add_task(_task("source", duration, level=0))
    workflow.task("source").inputs.append("input")
    for index in range(1, fanout + 1):
        task_name = f"C{index}"
        workflow.add_task(_task(task_name, duration, level=1))
        workflow.add_dependency("source", task_name)
    return workflow


def merge_workflow(fanin: int, duration: float = 0.1, name: str = "merge") -> Workflow:
    """``fanin`` independent producers whose outputs join into one consumer."""
    if fanin < 1:
        raise WorkflowValidationError("merge fanin must be >= 1")
    workflow = Workflow(name=name)
    workflow.add_task(_task("sink", duration, level=1))
    for index in range(1, fanin + 1):
        task_name = f"P{index}"
        workflow.add_task(_task(task_name, duration, level=0))
        workflow.task(task_name).inputs.append(f"input{index}")
        workflow.add_dependency(task_name, "sink")
    return workflow


def _body_task_name(row: int, column: int, prefix: str = "T") -> str:
    return f"{prefix}_{row}_{column}"


def diamond_workflow(
    width: int,
    depth: int,
    connectivity: str = "simple",
    duration: float = 0.1,
    name: str | None = None,
    body_prefix: str = "T",
) -> Workflow:
    """The diamond workflow of Fig. 11.

    Parameters
    ----------
    width:
        ``h`` — number of services in parallel per row.
    depth:
        ``v`` — number of rows (services in sequence per column).
    connectivity:
        ``"simple"`` — each column is an independent chain;
        ``"full"`` — every task of a row feeds every task of the next row.
    duration:
        Nominal duration of every task (the paper uses a very low constant
        execution time so that the measured time is coordination time).
    body_prefix:
        Prefix of body task names (lets a replacement body use distinct names).
    """
    if width < 1 or depth < 1:
        raise WorkflowValidationError("diamond width and depth must be >= 1")
    if connectivity not in ("simple", "full"):
        raise WorkflowValidationError(f"unknown connectivity {connectivity!r} (use 'simple' or 'full')")
    if name is None:
        name = f"diamond-{width}x{depth}-{connectivity}"
    workflow = Workflow(name=name)
    workflow.add_task(_task("split", duration, role="split", level=0))
    workflow.task("split").inputs.append("input")
    workflow.add_task(_task("merge", duration, role="merge", level=depth + 1))

    for row in range(1, depth + 1):
        for column in range(1, width + 1):
            task_name = _body_task_name(row, column, body_prefix)
            workflow.add_task(_task(task_name, duration, role="body", level=row, row=row, column=column))

    for column in range(1, width + 1):
        workflow.add_dependency("split", _body_task_name(1, column, body_prefix))
        workflow.add_dependency(_body_task_name(depth, column, body_prefix), "merge")

    for row in range(1, depth):
        for column in range(1, width + 1):
            source = _body_task_name(row, column, body_prefix)
            if connectivity == "simple":
                workflow.add_dependency(source, _body_task_name(row + 1, column, body_prefix))
            else:
                for next_column in range(1, width + 1):
                    workflow.add_dependency(source, _body_task_name(row + 1, next_column, body_prefix))
    return workflow


def _diamond_body(
    width: int,
    depth: int,
    connectivity: str,
    duration: float,
    prefix: str,
) -> Workflow:
    """A diamond body (no split/merge) used as replacement sub-workflow."""
    body = Workflow(name=f"body-{prefix}-{width}x{depth}-{connectivity}")
    for row in range(1, depth + 1):
        for column in range(1, width + 1):
            body.add_task(_task(_body_task_name(row, column, prefix), duration, role="body", row=row, column=column))
    for row in range(1, depth):
        for column in range(1, width + 1):
            source = _body_task_name(row, column, prefix)
            if connectivity == "simple":
                body.add_dependency(source, _body_task_name(row + 1, column, prefix))
            else:
                for next_column in range(1, width + 1):
                    body.add_dependency(source, _body_task_name(row + 1, next_column, prefix))
    return body


def adaptive_diamond_workflow(
    width: int,
    depth: int,
    body_connectivity: str = "simple",
    replacement_connectivity: str = "simple",
    duration: float = 0.1,
    name: str | None = None,
) -> Workflow:
    """The Fig. 13 adaptive scenario.

    Builds a diamond whose *last body task* (last row, last column) raises an
    error at run time, plus an adaptation replacing the **whole diamond
    body** by an equivalent body of the requested connectivity.  The three
    paper scenarios map to:

    * *simple to simple* — ``body_connectivity="simple"``, ``replacement_connectivity="simple"``
    * *simple to full*   — ``body_connectivity="simple"``, ``replacement_connectivity="full"``
    * *full to simple*   — ``body_connectivity="full"``,   ``replacement_connectivity="simple"``
    """
    if name is None:
        name = f"adaptive-diamond-{width}x{depth}-{body_connectivity}-to-{replacement_connectivity}"
    workflow = diamond_workflow(
        width, depth, connectivity=body_connectivity, duration=duration, name=name, body_prefix="T"
    )
    # the last service of the mesh fails
    failing = _body_task_name(depth, width, "T")
    workflow.task(failing).metadata["force_error"] = True

    replacement = _diamond_body(width, depth, replacement_connectivity, duration, prefix="R")
    replaced = [
        _body_task_name(row, column, "T")
        for row in range(1, depth + 1)
        for column in range(1, width + 1)
    ]
    entry_sources = {
        _body_task_name(1, column, "R"): ["split"] for column in range(1, width + 1)
    }
    spec = AdaptationSpec(
        name=f"{name}:replace-body",
        replaced=replaced,
        replacement=replacement,
        entry_sources=entry_sources,
        trigger_on=[failing],
    )
    workflow.add_adaptation(spec)
    return workflow
