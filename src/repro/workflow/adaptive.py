"""Adaptation specifications — the "alternative scenarios" of Section III-C.

An :class:`AdaptationSpec` describes one on-the-fly rebranching of the
workflow: *if any task of the replaced region reports an error, unplug the
region and plug the replacement sub-workflow in its place*.  At enactment
time the specification is compiled (by :mod:`repro.hoclflow.adaptation`) into
the ``trigger_adapt`` / ``add_dst`` / ``mv_src`` rules of the paper.

The paper restricts which replacements are legal (Fig. 9):

* the replaced region must be a **connected** part of the workflow,
* the replaced region and the replacement must share **one single common
  destination** (otherwise results produced before the failure could keep
  propagating and conflict with the replayed computation),
* the replacement may only communicate with the declared sources of the
  region and with that single destination,
* several adaptations on the same workflow must concern **disjoint** sets of
  tasks.

:meth:`AdaptationSpec.validate` enforces all of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from .errors import AdaptationValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dag import Workflow

__all__ = ["AdaptationSpec"]


@dataclass
class AdaptationSpec:
    """One replacement scenario attached to a workflow.

    Attributes
    ----------
    name:
        Identifier of the adaptation (used in traces and reports).
    replaced:
        Names of the original tasks forming the potentially faulty
        sub-workflow.
    replacement:
        The alternative sub-workflow.  Its task names must not collide with
        the original workflow's.
    entry_sources:
        For each *entry* task of the replacement, the original tasks (outside
        the replaced region) that must re-send their result to it — the
        ``ADDDST`` links of the paper.  Every listed source must be an
        upstream neighbour of the replaced region.
    trigger_on:
        Tasks whose failure triggers the adaptation.  Defaults to every task
        of the replaced region.
    clear_destination_inputs:
        When ``True`` (the paper's exact ``mv_src`` rule) the destination's
        ``IN`` atom is emptied entirely upon adaptation; when ``False`` (the
        default) only the inputs received from replaced tasks are dropped,
        which avoids losing results already delivered by tasks outside the
        region.  See DESIGN.md for the rationale.
    """

    name: str
    replaced: list[str]
    replacement: "Workflow"
    entry_sources: dict[str, list[str]] = field(default_factory=dict)
    trigger_on: list[str] | None = None
    clear_destination_inputs: bool = False

    # ------------------------------------------------------------ derived
    def trigger_tasks(self) -> list[str]:
        """Tasks whose ``ERROR`` result enables the adaptation."""
        return list(self.trigger_on) if self.trigger_on else list(self.replaced)

    def region_sources(self, workflow: "Workflow") -> list[str]:
        """Original tasks outside the region that feed the region.

        These are the tasks that receive an ``add_dst`` rule: upon adaptation
        they must re-send their results to the replacement's entry tasks.
        """
        replaced = set(self.replaced)
        sources: list[str] = []
        for task_name in self.replaced:
            for predecessor in workflow.predecessors(task_name):
                if predecessor not in replaced and predecessor not in sources:
                    sources.append(predecessor)
        return sources

    def destination(self, workflow: "Workflow") -> str:
        """The single task outside the region that consumes the region's output."""
        replaced = set(self.replaced)
        destinations: list[str] = []
        for task_name in self.replaced:
            for successor in workflow.successors(task_name):
                if successor not in replaced and successor not in destinations:
                    destinations.append(successor)
        if len(destinations) != 1:
            raise AdaptationValidationError(
                f"adaptation {self.name!r}: the replaced region must have exactly one "
                f"destination outside it, found {destinations or 'none'}"
            )
        return destinations[0]

    def replacement_entry_tasks(self) -> list[str]:
        """Entry tasks of the replacement sub-workflow."""
        return self.replacement.entry_tasks()

    def replacement_exit_tasks(self) -> list[str]:
        """Exit tasks of the replacement sub-workflow (all feed the destination)."""
        return self.replacement.exit_tasks()

    # ---------------------------------------------------------- validation
    def validate(self, workflow: "Workflow") -> None:
        """Check the replacement hypothesis of the paper against ``workflow``."""
        if not self.replaced:
            raise AdaptationValidationError(f"adaptation {self.name!r}: empty replaced region")
        unknown = [name for name in self.replaced if name not in workflow]
        if unknown:
            raise AdaptationValidationError(
                f"adaptation {self.name!r}: replaced tasks not in workflow: {unknown}"
            )
        duplicates = {name for name in self.replaced if self.replaced.count(name) > 1}
        if duplicates:
            raise AdaptationValidationError(
                f"adaptation {self.name!r}: duplicated replaced tasks {sorted(duplicates)}"
            )

        # replacement task names must not collide with the original workflow
        collisions = [name for name in self.replacement.task_names() if name in workflow]
        if collisions:
            raise AdaptationValidationError(
                f"adaptation {self.name!r}: replacement task names collide with the "
                f"workflow: {collisions}"
            )
        self.replacement.validate()

        # (a) connected replaced region.  Connectivity is evaluated on the
        # region plus its boundary (sources and destination): the paper's own
        # Fig. 13 experiment replaces the whole body of a *simple-connected*
        # diamond, whose columns only connect through the split and merge
        # tasks.
        boundary = set(self.region_sources(workflow))
        region_with_boundary = set(self.replaced) | boundary
        for task_name in self.replaced:
            for successor in workflow.successors(task_name):
                region_with_boundary.add(successor)
        region_graph = workflow.to_networkx().subgraph(region_with_boundary).to_undirected()
        if len(region_with_boundary) > 1 and not nx.is_connected(region_graph):
            raise AdaptationValidationError(
                f"adaptation {self.name!r}: the replaced region (with its boundary) must be connected"
            )

        # (b) single common destination — Fig. 9(c) is the violation
        self.destination(workflow)

        # (c) entry sources must be actual upstream neighbours of the region,
        #     and must reference replacement entry tasks — Fig. 9(d) guards
        #     against the replacement talking to extra services.
        region_sources = set(self.region_sources(workflow))
        entry_tasks = set(self.replacement_entry_tasks())
        for replacement_task, sources in self.entry_sources.items():
            if replacement_task not in self.replacement:
                raise AdaptationValidationError(
                    f"adaptation {self.name!r}: entry_sources references unknown "
                    f"replacement task {replacement_task!r}"
                )
            if replacement_task not in entry_tasks:
                raise AdaptationValidationError(
                    f"adaptation {self.name!r}: {replacement_task!r} is not an entry task "
                    "of the replacement sub-workflow"
                )
            for source in sources:
                if source not in region_sources:
                    raise AdaptationValidationError(
                        f"adaptation {self.name!r}: {source!r} is not a source of the "
                        f"replaced region (sources are {sorted(region_sources)})"
                    )
        # every replacement entry task must receive data from somewhere
        # (either declared entry sources or its own initial inputs)
        for entry in entry_tasks:
            has_sources = bool(self.entry_sources.get(entry))
            has_inputs = bool(self.replacement.task(entry).inputs)
            if not has_sources and not has_inputs:
                raise AdaptationValidationError(
                    f"adaptation {self.name!r}: replacement entry task {entry!r} has neither "
                    "entry sources nor initial inputs"
                )

        # trigger tasks must belong to the replaced region
        for trigger in self.trigger_tasks():
            if trigger not in self.replaced:
                raise AdaptationValidationError(
                    f"adaptation {self.name!r}: trigger task {trigger!r} is not part of the "
                    "replaced region"
                )

    # ------------------------------------------------------------- utility
    def all_task_names(self) -> list[str]:
        """Replaced plus replacement task names (used for disjointness checks)."""
        return list(self.replaced) + self.replacement.task_names()

    def copy(self) -> "AdaptationSpec":
        """Deep copy of the specification."""
        return AdaptationSpec(
            name=self.name,
            replaced=list(self.replaced),
            replacement=self.replacement.copy(),
            entry_sources={key: list(value) for key, value in self.entry_sources.items()},
            trigger_on=list(self.trigger_on) if self.trigger_on else None,
            clear_destination_inputs=self.clear_destination_inputs,
        )
