"""User-facing workflow model: tasks, DAGs, adaptation specs and generators."""

from .adaptive import AdaptationSpec
from .dag import Task, Workflow
from .errors import (
    AdaptationValidationError,
    JSONFormatError,
    WorkflowError,
    WorkflowValidationError,
)
from .json_format import workflow_from_dict, workflow_from_json, workflow_to_dict, workflow_to_json
from .montage import (
    MONTAGE_PARALLEL_WIDTH,
    MONTAGE_TASK_COUNT,
    duration_cdf,
    duration_classes,
    montage_workflow,
)
from .patterns import (
    DEFAULT_SERVICE,
    adaptive_diamond_workflow,
    diamond_workflow,
    merge_workflow,
    parallel_workflow,
    sequence_workflow,
    split_workflow,
)

__all__ = [
    "Task",
    "Workflow",
    "AdaptationSpec",
    "WorkflowError",
    "WorkflowValidationError",
    "AdaptationValidationError",
    "JSONFormatError",
    "workflow_from_json",
    "workflow_to_json",
    "workflow_from_dict",
    "workflow_to_dict",
    "sequence_workflow",
    "parallel_workflow",
    "split_workflow",
    "merge_workflow",
    "diamond_workflow",
    "adaptive_diamond_workflow",
    "DEFAULT_SERVICE",
    "montage_workflow",
    "duration_classes",
    "duration_cdf",
    "MONTAGE_TASK_COUNT",
    "MONTAGE_PARALLEL_WIDTH",
]
