"""Compilation of adaptation specifications into HOCL rules (Section III-C).

An :class:`~repro.workflow.adaptive.AdaptationSpec` is first resolved against
its workflow into an :class:`AdaptationPlan` — the concrete lists of sources,
destination, replacement entry/exit tasks and re-wiring links.  The plan is
then compiled into the three kinds of rules of the paper:

``trigger_adapt`` (one per trigger task, global solution)
    When the trigger task's ``RES`` contains ``ERROR``, inject the ``ADAPT``
    marker into every affected task (sources of the region, the destination,
    and the replacement entry tasks).

``add_dst`` (one per region source, in that task's sub-solution)
    When ``ADAPT`` is present, add the replacement entry tasks to the
    source's ``DST`` so that ``gw_pass`` re-sends its (still stored) result.

``mv_src`` (in the destination's sub-solution)
    When ``ADAPT`` is present, swap the replaced tasks for the replacement
    exit tasks in ``SRC`` and drop the inputs received from replaced tasks
    (or all inputs, with ``clear_destination_inputs=True``, reproducing the
    paper's exact rule).

``activate`` (one per replacement entry task, in its sub-solution)
    When ``ADAPT`` is present, remove the ``TRIGGER`` placeholder from the
    entry task's ``SRC`` so that it can start once its inputs arrive — this
    realises the ``TRIGGER : T2'`` atom of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hocl import (
    Atom,
    BindingView,
    Compute,
    Multiset,
    Omega,
    PatchAdd,
    PatchRemove,
    RewriteDelta,
    Rule,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Subsolution,
    Symbol,
    SymbolPattern,
    TuplePattern,
    TupleTemplate,
)

from . import keywords as kw
from .fields import is_tagged_input, tagged_input_source

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.adaptive import AdaptationSpec
    from repro.workflow.dag import Workflow

__all__ = [
    "AdaptationPlan",
    "build_plan",
    "make_trigger_adapt",
    "make_add_dst",
    "make_mv_src",
    "make_activate",
]


@dataclass
class AdaptationPlan:
    """An adaptation specification resolved against its workflow.

    Attributes
    ----------
    spec:
        The originating specification.
    replaced:
        Tasks of the original workflow being replaced.
    trigger_tasks:
        Tasks whose ``ERROR`` result triggers the adaptation.
    sources:
        Original tasks (outside the region) that feed the region and must
        re-send their results after adaptation.
    destination:
        The single original task consuming the region's output.
    entry_tasks / exit_tasks:
        Entry and exit tasks of the replacement sub-workflow.
    added_destinations:
        For each source, the replacement entry tasks it must now also feed
        (the ``ADDDST`` links).
    new_sources:
        Replacement exit tasks that become sources of the destination (the
        ``MVSRC`` links).
    """

    spec: "AdaptationSpec"
    replaced: list[str]
    trigger_tasks: list[str]
    sources: list[str]
    destination: str
    entry_tasks: list[str]
    exit_tasks: list[str]
    added_destinations: dict[str, list[str]] = field(default_factory=dict)
    new_sources: list[str] = field(default_factory=list)

    def affected_tasks(self) -> list[str]:
        """Every task that receives the ``ADAPT`` marker when the plan triggers."""
        affected = list(self.sources)
        if self.destination not in affected:
            affected.append(self.destination)
        for entry in self.entry_tasks:
            if entry not in affected:
                affected.append(entry)
        return affected

    def adapt_marker_counts(self) -> dict[str, int]:
        """How many ``ADAPT`` markers each affected task must receive.

        A task playing several roles (e.g. both a source and the destination
        of the region) owns one adaptation rule per role, and each rule
        consumes one marker.
        """
        counts: dict[str, int] = {}
        for source in self.sources:
            counts[source] = counts.get(source, 0) + 1
        counts[self.destination] = counts.get(self.destination, 0) + 1
        for entry in self.entry_tasks:
            counts[entry] = counts.get(entry, 0) + 1
        return counts


def build_plan(workflow: "Workflow", spec: "AdaptationSpec") -> AdaptationPlan:
    """Resolve ``spec`` against ``workflow`` into an :class:`AdaptationPlan`."""
    spec.validate(workflow)
    sources = spec.region_sources(workflow)
    destination = spec.destination(workflow)
    entry_tasks = spec.replacement_entry_tasks()
    exit_tasks = spec.replacement_exit_tasks()
    added: dict[str, list[str]] = {source: [] for source in sources}
    for entry, entry_sources in spec.entry_sources.items():
        for source in entry_sources:
            added.setdefault(source, [])
            if entry not in added[source]:
                added[source].append(entry)
    return AdaptationPlan(
        spec=spec,
        replaced=list(spec.replaced),
        trigger_tasks=spec.trigger_tasks(),
        sources=sources,
        destination=destination,
        entry_tasks=entry_tasks,
        exit_tasks=exit_tasks,
        added_destinations=added,
        new_sources=list(exit_tasks),
    )


def make_trigger_adapt(plan: AdaptationPlan, trigger_task: str) -> Rule:
    """The ``trigger_adapt`` rule for one trigger task (global solution).

    Paper (7.07-7.09)::

        trigger_adapt = replace-one T2 : <RES : <ERROR>, w2>, T1 : <w1>, T4 : <w4>
                        by          T2 : <w2>, T1 : <ADAPT, w1>, T4 : <ADAPT, w4>
    """
    affected = plan.affected_tasks()
    marker_counts = plan.adapt_marker_counts()
    patterns = [
        TuplePattern(
            SymbolPattern(trigger_task),
            SolutionPattern(
                TuplePattern(SymbolPattern(kw.RES), SolutionPattern(SymbolPattern(kw.ERROR), rest=Omega("wres"))),
                rest=Omega("wtrigger"),
            ),
        )
    ]
    # The paper's rule drops the ERROR marker from the trigger task; we keep
    # it so the final state still records which task failed (the decentralised
    # variant behaves the same way), which does not affect progress since
    # gw_pass never propagates ERROR and this rule is one-shot.
    products = [
        TupleTemplate(
            Symbol(trigger_task),
            SolutionTemplate(
                TupleTemplate(kw.RES_SYM, SolutionTemplate(kw.ERROR_SYM, Splice("wres"))),
                Splice("wtrigger"),
            ),
        )
    ]
    ops = []
    for index, task_name in enumerate(affected):
        omega_name = f"wadapt{index}"
        patterns.append(TuplePattern(SymbolPattern(task_name), SolutionPattern(rest=Omega(omega_name))))
        markers = [kw.ADAPT_SYM] * marker_counts.get(task_name, 1)
        products.append(
            TupleTemplate(Symbol(task_name), SolutionTemplate(*markers, Splice(omega_name)))
        )
        # Delta form: drop the marker into each affected task's kept
        # sub-solution (pattern 0 is the trigger task, hence index + 1).
        ops.append(PatchAdd(at=index + 1, templates=tuple(markers)))
    return Rule(
        name=f"trigger_adapt:{plan.spec.name}:{trigger_task}",
        patterns=patterns,
        products=products,
        one_shot=True,
        priority=10,
        delta=RewriteDelta(ops=tuple(ops)),
    )


def make_add_dst(plan: AdaptationPlan, source_task: str) -> Rule:
    """The ``add_dst`` rule of one region source (its sub-solution).

    Paper (7.01-7.03)::

        add_dst = replace-one DST : <>, ADAPT by DST : <T2'>

    Generalised to preserve any destinations still pending in ``DST``.
    """
    new_destinations = plan.added_destinations.get(source_task, [])
    return Rule(
        name=f"add_dst:{plan.spec.name}:{source_task}",
        patterns=[
            TuplePattern(SymbolPattern(kw.DST), SolutionPattern(rest=Omega("wdst"))),
            SymbolPattern(kw.ADAPT),
        ],
        products=[
            TupleTemplate(
                kw.DST_SYM,
                SolutionTemplate(*[Symbol(name) for name in new_destinations], Splice("wdst")),
            )
        ],
        one_shot=True,
        priority=5,
        # Delta form: consume the ADAPT marker, extend the kept DST body.
        delta=RewriteDelta(
            consume=(1,),
            ops=(PatchAdd(at=0, templates=tuple(Symbol(name) for name in new_destinations)),),
        ),
    )


def make_mv_src(plan: AdaptationPlan) -> Rule:
    """The ``mv_src`` rule of the destination task (its sub-solution).

    Paper (7.04-7.06)::

        mv_src = replace-one SRC : <wsrc>, IN : <win>, ADAPT
                 by          SRC : <wsrc, T2'>, IN : <>

    Refined to *remove* the replaced tasks from ``SRC`` (the paper's ``MVSRC``
    atom moves the source) and, unless ``clear_destination_inputs`` is set, to
    drop only the inputs received from replaced tasks.

    This rule stays rebuild-only (no delta): its product is an opaque
    :class:`Compute` doing binding-dependent list surgery, and it fires at
    most once per adaptation — nothing to gain from patching in place.
    """
    replaced = set(plan.replaced)
    new_sources = list(plan.new_sources)
    clear_all = plan.spec.clear_destination_inputs

    def rebuild(bindings: BindingView) -> list[Atom]:
        old_sources = bindings.atom("wsrc")
        old_inputs = bindings.atom("win")
        kept_sources = [
            atom for atom in old_sources if not (isinstance(atom, Symbol) and atom.name in replaced)
        ]
        source_atoms = kept_sources + [Symbol(name) for name in new_sources]
        if clear_all:
            kept_inputs: list[Atom] = []
        else:
            kept_inputs = [
                atom
                for atom in old_inputs
                if not (is_tagged_input(atom) and tagged_input_source(atom) in replaced)
            ]
        return [
            TupleTemplate(kw.SRC_SYM, SolutionTemplate(*source_atoms)).expand({}, None)[0],
            TupleTemplate(kw.IN_SYM, SolutionTemplate(*kept_inputs)).expand({}, None)[0],
        ]

    return Rule(
        name=f"mv_src:{plan.spec.name}:{plan.destination}",
        patterns=[
            TuplePattern(SymbolPattern(kw.SRC), SolutionPattern(rest=Omega("wsrc"))),
            TuplePattern(SymbolPattern(kw.IN), SolutionPattern(rest=Omega("win"))),
            SymbolPattern(kw.ADAPT),
        ],
        products=[Compute(rebuild)],
        one_shot=True,
        priority=5,
    )


def make_activate(plan: AdaptationPlan, entry_task: str) -> Rule:
    """The ``activate`` rule of one replacement entry task (its sub-solution).

    Removes the ``TRIGGER`` placeholder from the entry task's ``SRC`` once the
    adaptation has fired, letting the replacement sub-workflow start.
    """
    return Rule(
        name=f"activate:{plan.spec.name}:{entry_task}",
        patterns=[
            TuplePattern(SymbolPattern(kw.SRC), SolutionPattern(SymbolPattern(kw.TRIGGER), rest=Omega("wsrc"))),
            SymbolPattern(kw.ADAPT),
        ],
        products=[TupleTemplate(kw.SRC_SYM, SolutionTemplate(Splice("wsrc")))],
        one_shot=True,
        priority=5,
        # Delta form: consume the ADAPT marker, drop the TRIGGER placeholder
        # from the kept SRC body in place.
        delta=RewriteDelta(
            consume=(1,),
            ops=(PatchRemove(at=0, items=(kw.TRIGGER_SYM,)),),
        ),
    )
