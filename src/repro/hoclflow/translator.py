"""Translation of a user-level workflow into its HOCL encoding.

This is the step the paper performs "in a transparent way before the actual
execution of the workflow starts" (Section IV-D): starting from the abstract
DAG (plus adaptation specifications), produce

* one *task encoding* per task — its ``SRC``/``DST``/``SRV``/``IN``/``RES``
  fields and the rules that live inside its sub-solution (``gw_setup``,
  ``gw_call`` and any adaptation rule assigned to it), and
* the *global* rules — ``gw_pass`` and one ``trigger_adapt`` per (adaptation,
  trigger task) pair.

The same encoding feeds both execution modes: the centralised executor folds
everything into a single multiset (the concrete workflow of Fig. 8), while
the distributed executors hand each task encoding to its service agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hocl import Multiset, Rule, Subsolution, Symbol, TupleAtom
from repro.workflow.dag import Workflow

from . import keywords as kw
from .adaptation import AdaptationPlan, build_plan, make_activate, make_add_dst, make_mv_src, make_trigger_adapt
from .fields import task_solution
from .generic_rules import generic_task_rules, make_gw_pass

__all__ = ["TaskEncoding", "WorkflowEncoding", "encode_workflow"]


@dataclass
class TaskEncoding:
    """Everything needed to instantiate one task, locally or centrally.

    Attributes
    ----------
    name, service, inputs, duration, metadata:
        Copied from the :class:`~repro.workflow.dag.Task` (replacement tasks
        come from their replacement sub-workflow).
    sources:
        Tasks whose results this task waits for (its initial ``SRC``), plus
        the ``TRIGGER`` placeholder for replacement entry tasks.
    destinations:
        Tasks this task sends its result to (its initial ``DST``).
    local_rules:
        Rules living inside the task's sub-solution.
    trigger_plans:
        Adaptation plans triggered by this task's failure (used by the
        decentralised engine, where the trigger is a message rather than a
        global rule).
    is_replacement:
        Whether the task belongs to a replacement sub-workflow (idle until
        its adaptation fires).
    adaptation:
        Name of the adaptation owning this replacement task, if any.
    """

    name: str
    service: str
    inputs: list[Any]
    duration: float
    metadata: dict[str, Any]
    sources: list[str]
    destinations: list[str]
    has_trigger_placeholder: bool = False
    local_rules: list[Rule] = field(default_factory=list)
    trigger_plans: list[AdaptationPlan] = field(default_factory=list)
    is_replacement: bool = False
    adaptation: str | None = None

    def initial_solution(self, include_rules: bool = True) -> Multiset:
        """The task's initial (local) solution."""
        sources: list[str] = list(self.sources)
        extra: list[Any] = []
        solution = task_solution(
            source_tasks=sources + ([kw.TRIGGER] if self.has_trigger_placeholder else []),
            destination_tasks=self.destinations,
            service=self.service,
            inputs=self.inputs,
            extra_atoms=extra,
        )
        if include_rules:
            solution.add_all(self.local_rules)
        return solution

    def as_tuple(self, include_rules: bool = True) -> TupleAtom:
        """The ``Tname : <...>`` tuple used in the centralised multiset."""
        return TupleAtom([Symbol(self.name), Subsolution(self.initial_solution(include_rules))])


@dataclass
class WorkflowEncoding:
    """The complete HOCL encoding of a workflow (tasks + global rules)."""

    workflow: Workflow
    tasks: dict[str, TaskEncoding]
    global_rules: list[Rule]
    plans: list[AdaptationPlan]

    def task_names(self) -> list[str]:
        """Every encoded task (original + replacement), in insertion order."""
        return list(self.tasks)

    def exit_tasks(self) -> list[str]:
        """Tasks whose results mark workflow completion (original exits)."""
        return self.workflow.exit_tasks()

    def replacement_tasks(self) -> list[str]:
        """Names of the replacement tasks (deployed but initially idle)."""
        return [name for name, encoding in self.tasks.items() if encoding.is_replacement]

    def to_multiset(self, include_rules: bool = True) -> Multiset:
        """The centralised concrete workflow (Fig. 8): one global multiset."""
        solution = Multiset()
        if include_rules:
            solution.add_all(self.global_rules)
        for encoding in self.tasks.values():
            solution.add(encoding.as_tuple(include_rules))
        return solution


def encode_workflow(workflow: Workflow) -> WorkflowEncoding:
    """Encode ``workflow`` (and its adaptations) into HOCL building blocks."""
    workflow.validate()
    plans = [build_plan(workflow, spec) for spec in workflow.adaptations]

    encodings: dict[str, TaskEncoding] = {}

    # --- original tasks ----------------------------------------------------
    for task in workflow:
        encodings[task.name] = TaskEncoding(
            name=task.name,
            service=task.service,
            inputs=list(task.inputs),
            duration=task.duration,
            metadata=dict(task.metadata),
            sources=workflow.predecessors(task.name),
            destinations=workflow.successors(task.name),
            local_rules=generic_task_rules(task.name),
        )

    # --- replacement tasks --------------------------------------------------
    for plan in plans:
        replacement = plan.spec.replacement
        entry_tasks = set(plan.entry_tasks)
        exit_tasks = set(plan.exit_tasks)
        for task in replacement:
            sources = replacement.predecessors(task.name)
            destinations = replacement.successors(task.name)
            if task.name in entry_tasks:
                sources = list(plan.spec.entry_sources.get(task.name, [])) + sources
            if task.name in exit_tasks:
                destinations = destinations + [plan.destination]
            encodings[task.name] = TaskEncoding(
                name=task.name,
                service=task.service,
                inputs=list(task.inputs),
                duration=task.duration,
                metadata=dict(task.metadata),
                sources=sources,
                destinations=destinations,
                has_trigger_placeholder=task.name in entry_tasks,
                local_rules=generic_task_rules(task.name),
                is_replacement=True,
                adaptation=plan.spec.name,
            )

    # --- adaptation rules ---------------------------------------------------
    global_rules: list[Rule] = [make_gw_pass()]
    for plan in plans:
        for trigger_task in plan.trigger_tasks:
            global_rules.append(make_trigger_adapt(plan, trigger_task))
            encodings[trigger_task].trigger_plans.append(plan)
        for source in plan.sources:
            encodings[source].local_rules.append(make_add_dst(plan, source))
        encodings[plan.destination].local_rules.append(make_mv_src(plan))
        for entry in plan.entry_tasks:
            encodings[entry].local_rules.append(make_activate(plan, entry))

    return WorkflowEncoding(workflow=workflow, tasks=encodings, global_rules=global_rules, plans=plans)
