"""The generic workflow enactment rules of Fig. 4.

Three rules are enough to execute any (non-adaptive) workflow encoded as in
Fig. 3:

``gw_setup`` (``replace-one``, lives in each task sub-solution)
    Fires when every dependency is satisfied (``SRC : <>``); it turns the
    collected inputs (``IN``) into the ordered parameter list (``PAR``).

``gw_call`` (``replace-one``, lives in each task sub-solution)
    Fires once the parameters are ready; it invokes the service (through the
    ``invoke`` external function) and stores the result — or ``ERROR`` — in
    ``RES``.

``gw_pass`` (``replace``, lives in the global solution)
    Moves a produced result from a source task to one destination task,
    removing the corresponding ``DST``/``SRC`` dependency entries; repeated
    applications cover every edge of the DAG.

The rules here are the *centralised* versions: they assume every task
sub-solution lives in one multiset rewritten by one interpreter, exactly as
in Section III-B.  The decentralised variants (where ``gw_pass`` becomes a
message send) are built by :mod:`repro.agents.local_rules` on top of the same
building blocks.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.hocl import (
    Atom,
    BindingView,
    Call,
    ExternalRegistry,
    ListAtom,
    Omega,
    PatchAdd,
    PatchRemove,
    RewriteDelta,
    Rule,
    SolutionPattern,
    SolutionTemplate,
    Splice,
    Symbol,
    SymbolPattern,
    TuplePattern,
    TupleTemplate,
    Ref,
    Var,
    from_atom,
)

from . import keywords as kw
from .fields import build_parameters

__all__ = [
    "make_gw_setup",
    "make_gw_call",
    "make_gw_pass",
    "generic_task_rules",
    "register_workflow_externals",
]


def make_gw_setup() -> Rule:
    """``gw_setup``: when ``SRC`` is empty, build ``PAR`` from ``IN`` (one-shot).

    Paper (4.01-4.03)::

        gw_setup = replace-one SRC : <>, IN : <w>
                   by SRC : <>, PAR : list(w)

    Delta form: the (empty) ``SRC`` tuple is kept untouched; only the ``IN``
    tuple is consumed and the ``PAR`` tuple produced.
    """
    return Rule(
        name="gw_setup",
        patterns=[
            TuplePattern(SymbolPattern(kw.SRC), SolutionPattern()),
            TuplePattern(SymbolPattern(kw.IN), SolutionPattern(rest=Omega("win"))),
        ],
        products=[
            TupleTemplate(kw.SRC_SYM, SolutionTemplate()),
            TupleTemplate(kw.PAR_SYM, Call("params", Splice("win"))),
        ],
        one_shot=True,
        delta=RewriteDelta(
            consume=(1,),
            produce=(TupleTemplate(kw.PAR_SYM, Call("params", Splice("win"))),),
        ),
    )


def make_gw_call(task_name: str) -> Rule:
    """``gw_call``: invoke the service on the prepared parameters (one-shot).

    Paper (4.04-4.06)::

        gw_call = replace-one SRC : <>, SRV : s, PAR : p, RES : <w>
                  by SRC : <>, SRV : s, RES : <invoke(s, p), w>

    The task name is baked into the ``invoke`` call so the external function
    knows which task's metadata (duration, forced errors, ...) applies — the
    paper's interpreter gets the same information from the enclosing agent.

    Delta form: ``SRC``/``SRV``/``RES`` are kept in place, ``PAR`` is
    consumed, and the invocation result is patched straight into the kept
    ``RES`` body.
    """
    return Rule(
        name="gw_call",
        patterns=[
            TuplePattern(SymbolPattern(kw.SRC), SolutionPattern()),
            TuplePattern(SymbolPattern(kw.SRV), Var("s")),
            TuplePattern(SymbolPattern(kw.PAR), Var("par")),
            TuplePattern(SymbolPattern(kw.RES), SolutionPattern(rest=Omega("wres"))),
        ],
        products=[
            TupleTemplate(kw.SRC_SYM, SolutionTemplate()),
            TupleTemplate(kw.SRV_SYM, Ref("s")),
            TupleTemplate(
                kw.RES_SYM,
                SolutionTemplate(Call("invoke", task_name, Ref("s"), Ref("par")), Splice("wres")),
            ),
        ],
        one_shot=True,
        delta=RewriteDelta(
            consume=(2,),
            ops=(
                PatchAdd(
                    at=3,
                    templates=(Call("invoke", task_name, Ref("s"), Ref("par")),),
                ),
            ),
        ),
    )


def _gw_pass_condition(bindings: BindingView) -> bool:
    """The transferred result must not be the ``ERROR`` marker."""
    result = bindings.atom("res")
    return not (isinstance(result, Symbol) and result.name == kw.ERROR)


def make_gw_pass() -> Rule:
    """``gw_pass``: move one result from a source to one destination (n-shot).

    Paper (4.07-4.11)::

        gw_pass = replace Ti : <RES : <wres>, DST : <Tj, wdst>, wi>,
                          Tj : <SRC : <Ti, wsrc>, IN : <win>, wj>
                  by      Ti : <RES : <wres>, DST : <wdst>, wi>,
                          Tj : <SRC : <wsrc>, IN : <wres, win>, wj>

    Two refinements over the figure (both discussed in DESIGN.md): the rule
    only fires when a non-``ERROR`` result is present, and the transferred
    value is tagged with its producer (``Ti : value``) inside the
    destination's ``IN``.

    Delta form — the motivating case: both task tuples are kept in place and
    three small patches move the result across the edge (drop ``Tj`` from the
    source's ``DST``, drop ``Ti`` from the destination's ``SRC``, add the
    tagged result to the destination's ``IN``), instead of rebuilding two
    whole task tuples and re-indexing every untouched ``IN``/``SRC`` entry.
    """
    return Rule(
        name="gw_pass",
        patterns=[
            TuplePattern(
                Var("ti", kind="symbol"),
                SolutionPattern(
                    TuplePattern(SymbolPattern(kw.RES), SolutionPattern(Var("res"), rest=Omega("wres"))),
                    TuplePattern(SymbolPattern(kw.DST), SolutionPattern(Var("tj", kind="symbol"), rest=Omega("wdst"))),
                    rest=Omega("wi"),
                ),
            ),
            TuplePattern(
                Var("tj", kind="symbol"),
                SolutionPattern(
                    TuplePattern(SymbolPattern(kw.SRC), SolutionPattern(Var("ti", kind="symbol"), rest=Omega("wsrc"))),
                    TuplePattern(SymbolPattern(kw.IN), SolutionPattern(rest=Omega("win"))),
                    rest=Omega("wj"),
                ),
            ),
        ],
        products=[
            TupleTemplate(
                Ref("ti"),
                SolutionTemplate(
                    TupleTemplate(kw.RES_SYM, SolutionTemplate(Ref("res"), Splice("wres"))),
                    TupleTemplate(kw.DST_SYM, SolutionTemplate(Splice("wdst"))),
                    Splice("wi"),
                ),
            ),
            TupleTemplate(
                Ref("tj"),
                SolutionTemplate(
                    TupleTemplate(kw.SRC_SYM, SolutionTemplate(Splice("wsrc"))),
                    TupleTemplate(
                        kw.IN_SYM,
                        SolutionTemplate(TupleTemplate(Ref("ti"), Ref("res")), Splice("win")),
                    ),
                    Splice("wj"),
                ),
            ),
        ],
        condition=_gw_pass_condition,
        one_shot=False,
        delta=RewriteDelta(
            ops=(
                PatchRemove(at=0, path=(kw.DST,), items=(Ref("tj"),)),
                PatchRemove(at=1, path=(kw.SRC,), items=(Ref("ti"),)),
                PatchAdd(at=1, path=(kw.IN,), templates=(TupleTemplate(Ref("ti"), Ref("res")),)),
            ),
        ),
    )


def generic_task_rules(task_name: str) -> list[Rule]:
    """The per-task generic rules (``gw_setup`` and ``gw_call``)."""
    return [make_gw_setup(), make_gw_call(task_name)]


#: Signature of the service-invocation callback plugged into the registry:
#: ``invoke(task_name, service_name, parameters) -> result value`` (return
#: the string ``"ERROR"``/the ERROR symbol, or raise, to signal failure).
InvokeCallback = Callable[[str, str, list[Any]], Any]


def register_workflow_externals(
    registry: ExternalRegistry,
    invoke: InvokeCallback,
) -> ExternalRegistry:
    """Register the ``params`` and ``invoke`` externals used by the generic rules.

    ``invoke`` failures (exceptions) are converted into the ``ERROR`` marker
    atom, which is what enables the adaptation rules downstream.
    """

    def params_external(args: list[Atom], _bindings: Any) -> ListAtom:
        return ListAtom(build_parameters(args))

    def invoke_external(args: list[Atom], _bindings: Any) -> Atom:
        if len(args) != 3:
            raise ValueError(f"invoke expects (task, service, parameters), got {len(args)} arguments")
        task_name = str(from_atom(args[0]))
        service_name = str(from_atom(args[1]))
        parameters = from_atom(args[2])
        if not isinstance(parameters, list):
            parameters = [parameters]
        try:
            result = invoke(task_name, service_name, parameters)
        except Exception:  # noqa: BLE001 - a failed invocation is an ERROR result
            return kw.ERROR_SYM
        if isinstance(result, Symbol) and result.name == kw.ERROR:
            return kw.ERROR_SYM
        if isinstance(result, str) and result == kw.ERROR:
            return kw.ERROR_SYM
        if isinstance(result, Atom):
            return result
        from repro.hocl import to_atom

        return to_atom(result)

    registry.register("params", params_external)
    registry.register("invoke", invoke_external)
    return registry
