"""Reserved keywords of HOCLflow.

The paper extends HOCL with reserved atoms for workflow management
(Section III-A/III-B).  Each keyword is a plain :class:`~repro.hocl.atoms.Symbol`;
this module names them once so the rest of the code never spells raw strings.

========  =====================================================================
Keyword   Meaning
========  =====================================================================
SRC       incoming dependencies of a task (tasks it still waits for)
DST       outgoing dependencies of a task (tasks it must send its result to)
SRV       name of the service implementing the task
IN        input values received so far (initial inputs plus transferred results)
PAR       parameter list passed to the service invocation
RES       result(s) of the service invocation (or ERROR)
ADAPT     marker injected into a task to enable its adaptation rules
TRIGGER   placeholder dependency keeping a replacement task idle until adaptation
ADDDST    user-level atom: "add this destination to that task" (compiled to add_dst)
MVSRC     user-level atom: "move that task's source from X to Y" (compiled to mv_src)
ERROR     result marker reported by a failed service invocation
INVOKING  internal marker set by the decentralised gw_call while a service runs
========  =====================================================================
"""

from __future__ import annotations

from repro.hocl import Symbol

__all__ = [
    "SRC",
    "DST",
    "SRV",
    "IN",
    "PAR",
    "RES",
    "ADAPT",
    "TRIGGER",
    "ADDDST",
    "MVSRC",
    "ERROR",
    "INVOKING",
    "SRC_SYM",
    "DST_SYM",
    "SRV_SYM",
    "IN_SYM",
    "PAR_SYM",
    "RES_SYM",
    "ADAPT_SYM",
    "TRIGGER_SYM",
    "ADDDST_SYM",
    "MVSRC_SYM",
    "ERROR_SYM",
    "INVOKING_SYM",
    "RESERVED_KEYWORDS",
]

SRC = "SRC"
DST = "DST"
SRV = "SRV"
IN = "IN"
PAR = "PAR"
RES = "RES"
ADAPT = "ADAPT"
TRIGGER = "TRIGGER"
ADDDST = "ADDDST"
MVSRC = "MVSRC"
ERROR = "ERROR"
INVOKING = "INVOKING"

#: The reserved keyword strings, as a frozen set (used by validation and by
#: the JSON front-end to reject task names that would clash).
RESERVED_KEYWORDS = frozenset(
    {SRC, DST, SRV, IN, PAR, RES, ADAPT, TRIGGER, ADDDST, MVSRC, ERROR, INVOKING}
)

SRC_SYM = Symbol(SRC)
DST_SYM = Symbol(DST)
SRV_SYM = Symbol(SRV)
IN_SYM = Symbol(IN)
PAR_SYM = Symbol(PAR)
RES_SYM = Symbol(RES)
ADAPT_SYM = Symbol(ADAPT)
TRIGGER_SYM = Symbol(TRIGGER)
ADDDST_SYM = Symbol(ADDDST)
MVSRC_SYM = Symbol(MVSRC)
ERROR_SYM = Symbol(ERROR)
INVOKING_SYM = Symbol(INVOKING)
