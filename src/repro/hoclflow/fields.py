"""Builders and accessors for task-subsolution fields.

A task sub-solution (the ``T1 : <...>`` of Fig. 3) contains one *field tuple*
per reserved keyword: ``SRC : <...>``, ``DST : <...>``, ``SRV : "s1"``,
``IN : <...>``, ``RES : <...>`` and, once set up, ``PAR : [...]``.  This
module centralises how those tuples are built and read, both for the
centralised translation and for the service agents' local solutions.

Transferred results are stored in the destination's ``IN`` solution as
*tagged* pairs ``Ti : value`` (a 2-tuple whose head is the producing task's
symbol).  Tagging keeps the parameter order deterministic and lets the
``mv_src`` adaptation drop exactly the inputs that came from replaced tasks;
see DESIGN.md ("Design notes") for the rationale of this small deviation from
the untagged multiset of the paper.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.hocl import (
    Atom,
    ListAtom,
    Multiset,
    StringAtom,
    Subsolution,
    Symbol,
    TupleAtom,
    from_atom,
    to_atom,
)

from . import keywords as kw

__all__ = [
    "src_field",
    "dst_field",
    "srv_field",
    "in_field",
    "res_field",
    "par_field",
    "tagged_input",
    "is_tagged_input",
    "tagged_input_source",
    "tagged_input_value",
    "get_field",
    "get_task_names",
    "set_task_names",
    "get_src",
    "get_dst",
    "get_service",
    "get_in_atoms",
    "get_res_atoms",
    "get_par_values",
    "has_error",
    "has_result",
    "build_parameters",
    "task_tuple",
    "task_solution",
]


# ----------------------------------------------------------------- builders
def src_field(task_names: Iterable[str] = ()) -> TupleAtom:
    """``SRC : <T...>`` — the tasks this task still waits for."""
    return TupleAtom([kw.SRC_SYM, Subsolution([Symbol(name) for name in task_names])])


def dst_field(task_names: Iterable[str] = ()) -> TupleAtom:
    """``DST : <T...>`` — the tasks this task must send its result to."""
    return TupleAtom([kw.DST_SYM, Subsolution([Symbol(name) for name in task_names])])


def srv_field(service_name: str) -> TupleAtom:
    """``SRV : "service"`` — the service implementing the task."""
    return TupleAtom([kw.SRV_SYM, StringAtom(service_name)])


def in_field(values: Iterable[Any] = ()) -> TupleAtom:
    """``IN : <...>`` — initial inputs and received results."""
    return TupleAtom([kw.IN_SYM, Subsolution([to_atom(value) for value in values])])


def res_field(values: Iterable[Any] = ()) -> TupleAtom:
    """``RES : <...>`` — result(s) of the invocation (empty before it)."""
    return TupleAtom([kw.RES_SYM, Subsolution([to_atom(value) for value in values])])


def par_field(values: Iterable[Any] = ()) -> TupleAtom:
    """``PAR : [...]`` — the parameter list passed to the service."""
    return TupleAtom([kw.PAR_SYM, ListAtom(values)])


def tagged_input(source_task: str, value: Any) -> TupleAtom:
    """A received result tagged with its producer: ``Ti : value``."""
    return TupleAtom([Symbol(source_task), to_atom(value)])


def is_tagged_input(atom: Atom) -> bool:
    """Whether ``atom`` is a tagged result pair (as produced by ``gw_pass``)."""
    return (
        isinstance(atom, TupleAtom)
        and len(atom.elements) == 2
        and isinstance(atom.elements[0], Symbol)
        and atom.elements[0].name not in kw.RESERVED_KEYWORDS
    )


def tagged_input_source(atom: TupleAtom) -> str:
    """Producer task name of a tagged result pair."""
    return atom.elements[0].name  # type: ignore[union-attr]


def tagged_input_value(atom: TupleAtom) -> Atom:
    """Value carried by a tagged result pair."""
    return atom.elements[1]


# ---------------------------------------------------------------- accessors
def get_field(solution: Multiset, keyword: str) -> TupleAtom | None:
    """The field tuple ``keyword : ...`` of a task solution (or ``None``)."""
    return solution.find_tuple(keyword)


def _field_solution(solution: Multiset, keyword: str) -> Multiset | None:
    field = get_field(solution, keyword)
    if field is None or len(field.elements) < 2:
        return None
    body = field.elements[1]
    return body.solution if isinstance(body, Subsolution) else None


def get_task_names(solution: Multiset, keyword: str) -> list[str]:
    """Task names listed in the ``SRC`` or ``DST`` field."""
    body = _field_solution(solution, keyword)
    if body is None:
        return []
    return [atom.name for atom in body if isinstance(atom, Symbol)]


def set_task_names(solution: Multiset, keyword: str, task_names: Iterable[str]) -> None:
    """Replace the ``SRC``/``DST`` field with the given task names."""
    builder = src_field if keyword == kw.SRC else dst_field
    solution.replace_tuple(keyword, builder(task_names))


def get_src(solution: Multiset) -> list[str]:
    """Pending source dependencies of the task."""
    return get_task_names(solution, kw.SRC)


def get_dst(solution: Multiset) -> list[str]:
    """Pending destinations of the task."""
    return get_task_names(solution, kw.DST)


def get_service(solution: Multiset) -> str | None:
    """Service name stored in the ``SRV`` field."""
    field = get_field(solution, kw.SRV)
    if field is None or len(field.elements) < 2:
        return None
    return str(from_atom(field.elements[1]))


def get_in_atoms(solution: Multiset) -> list[Atom]:
    """Raw atoms stored in the ``IN`` field (initial inputs + tagged results)."""
    body = _field_solution(solution, kw.IN)
    return list(body) if body is not None else []


def get_res_atoms(solution: Multiset) -> list[Atom]:
    """Raw atoms stored in the ``RES`` field."""
    body = _field_solution(solution, kw.RES)
    return list(body) if body is not None else []


def get_par_values(solution: Multiset) -> list[Any] | None:
    """Unwrapped parameter list from the ``PAR`` field, or ``None`` if absent."""
    field = get_field(solution, kw.PAR)
    if field is None or len(field.elements) < 2:
        return None
    return from_atom(field.elements[1])  # a ListAtom unwraps to a Python list


def has_error(solution: Multiset) -> bool:
    """Whether the ``RES`` field contains the ``ERROR`` marker."""
    return any(isinstance(atom, Symbol) and atom.name == kw.ERROR for atom in get_res_atoms(solution))


def has_result(solution: Multiset) -> bool:
    """Whether the ``RES`` field contains a (non-error) result."""
    atoms = get_res_atoms(solution)
    return bool(atoms) and not has_error(solution)


# --------------------------------------------------------------- parameters
def build_parameters(in_atoms: Sequence[Atom]) -> list[Any]:
    """Turn the ``IN`` contents into the ordered parameter list.

    Initial (untagged) inputs come first, in insertion order; tagged results
    follow, ordered by producing task name so the parameter order does not
    depend on message arrival order.
    """
    initial: list[Any] = []
    tagged: list[tuple[str, Any]] = []
    for atom in in_atoms:
        if is_tagged_input(atom):
            tagged.append((tagged_input_source(atom), from_atom(tagged_input_value(atom))))
        else:
            initial.append(from_atom(atom))
    tagged.sort(key=lambda pair: pair[0])
    return initial + [value for _source, value in tagged]


# ----------------------------------------------------------- task solutions
def task_solution(
    source_tasks: Iterable[str],
    destination_tasks: Iterable[str],
    service: str,
    inputs: Iterable[Any] = (),
    extra_atoms: Iterable[Any] = (),
) -> Multiset:
    """The initial local solution of one task (its fields, no rules)."""
    solution = Multiset(
        [
            src_field(source_tasks),
            dst_field(destination_tasks),
            srv_field(service),
            in_field(inputs),
            res_field(),
        ]
    )
    solution.add_all(extra_atoms)
    return solution


def task_tuple(
    task_name: str,
    source_tasks: Iterable[str],
    destination_tasks: Iterable[str],
    service: str,
    inputs: Iterable[Any] = (),
    extra_atoms: Iterable[Any] = (),
) -> TupleAtom:
    """The ``Tname : <fields...>`` tuple placed in the global solution."""
    return TupleAtom(
        [Symbol(task_name), Subsolution(task_solution(source_tasks, destination_tasks, service, inputs, extra_atoms))]
    )
