"""Run reports: what a GinFlow execution returns.

A :class:`RunReport` aggregates everything the experiments need: whether the
workflow completed, how long deployment and execution took, per-task results
and states, message / failure / adaptation counters, and (optionally) the
full event timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agents.coordinator import TimelineEvent

__all__ = ["TaskOutcome", "RunReport"]


@dataclass
class TaskOutcome:
    """Final state of one task after the run."""

    task: str
    state: str
    result: Any = None
    error: bool = False
    node: str | None = None
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    failures: int = 0


@dataclass
class RunReport:
    """Outcome of one GinFlow run (any execution mode).

    Attributes
    ----------
    succeeded:
        ``True`` when every exit task produced a (non-error) result.
    timed_out:
        ``True`` when a wall-clock runtime hit its timeout before the
        coordinator reported completion.  A timed-out run never reports
        ``succeeded=True``: the report rows describe an execution that was
        cut off, not one that converged.
    mode / executor / broker / nodes / seed:
        Echo of the configuration actually used.
    deployment_time:
        Time spent provisioning the service agents (0 for centralised and
        threaded runs).
    execution_time:
        Time between the start of the enactment (all agents ready) and the
        completion of the last exit task.
    makespan:
        ``deployment_time + execution_time``.
    tasks:
        Per-task outcomes.
    results:
        Exit-task results (what the workflow "returns").
    messages_published / messages_delivered:
        Broker counters.
    failures_injected / recoveries:
        Failure-injection counters (Fig. 16).
    adaptations_triggered:
        Number of adaptation plans that actually fired.
    duplicate_results_ignored:
        Duplicates discarded by destination agents (recovery replays).
    reduction_reactions / reduction_match_attempts:
        Aggregate chemistry counters across all agents.
    timeline:
        Chronological event list (state changes, failures, recoveries).
    extra:
        Free-form additional measurements filled by the harnesses.
    """

    succeeded: bool = False
    timed_out: bool = False
    mode: str = "simulated"
    executor: str = "ssh"
    broker: str = "activemq"
    nodes: int = 0
    seed: int = 0
    deployment_time: float = 0.0
    execution_time: float = 0.0
    makespan: float = 0.0
    tasks: dict[str, TaskOutcome] = field(default_factory=dict)
    results: dict[str, Any] = field(default_factory=dict)
    messages_published: int = 0
    messages_delivered: int = 0
    failures_injected: int = 0
    recoveries: int = 0
    adaptations_triggered: int = 0
    duplicate_results_ignored: int = 0
    reduction_reactions: int = 0
    reduction_match_attempts: int = 0
    timeline: list[TimelineEvent] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- queries
    def task_outcome(self, name: str) -> TaskOutcome:
        """Outcome of task ``name`` (raises ``KeyError`` if unknown)."""
        return self.tasks[name]

    def result_of(self, name: str) -> Any:
        """Result value of task ``name`` (``None`` if it produced none)."""
        outcome = self.tasks.get(name)
        return outcome.result if outcome else None

    def failed_tasks(self) -> list[str]:
        """Tasks whose final state reports an error."""
        return [name for name, outcome in self.tasks.items() if outcome.error]

    def completed_tasks(self) -> list[str]:
        """Tasks holding a (non-error) result at the end of the run."""
        return [name for name, outcome in self.tasks.items() if outcome.result is not None]

    def summary(self) -> dict[str, Any]:
        """A flat dictionary convenient for tabular reporting."""
        return {
            "succeeded": self.succeeded,
            "timed_out": self.timed_out,
            "mode": self.mode,
            "executor": self.executor,
            "broker": self.broker,
            "nodes": self.nodes,
            "seed": self.seed,
            "deployment_time": round(self.deployment_time, 3),
            "execution_time": round(self.execution_time, 3),
            "makespan": round(self.makespan, 3),
            "tasks": len(self.tasks),
            "completed_tasks": len(self.completed_tasks()),
            "messages_published": self.messages_published,
            "failures_injected": self.failures_injected,
            "recoveries": self.recoveries,
            "adaptations_triggered": self.adaptations_triggered,
        }

    def format_summary(self) -> str:
        """Human-readable multi-line summary (used by the CLI)."""
        lines = [f"GinFlow run ({self.mode}, executor={self.executor}, broker={self.broker})"]
        lines.append(f"  succeeded          : {self.succeeded}")
        if self.timed_out:
            lines.append("  timed out          : True")
        lines.append(f"  deployment time    : {self.deployment_time:.3f} s")
        lines.append(f"  execution time     : {self.execution_time:.3f} s")
        lines.append(f"  makespan           : {self.makespan:.3f} s")
        lines.append(f"  tasks              : {len(self.completed_tasks())}/{len(self.tasks)} completed")
        lines.append(f"  messages published : {self.messages_published}")
        if self.failures_injected or self.recoveries:
            lines.append(f"  failures/recoveries: {self.failures_injected}/{self.recoveries}")
        if self.adaptations_triggered:
            lines.append(f"  adaptations        : {self.adaptations_triggered}")
        if self.results:
            lines.append("  exit results       :")
            for task, value in sorted(self.results.items()):
                lines.append(f"    {task}: {value!r}")
        return "\n".join(lines)
