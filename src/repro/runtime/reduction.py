"""Built-in reduction strategies behind the ``--reduction`` knob.

Each backend resolves a :class:`~repro.hocl.parallel.ReductionPolicy` from a
:class:`~repro.runtime.config.GinFlowConfig`; the runtimes turn the policy
into engine options (``batch``) and, when the policy is parallel, a shared
:class:`~repro.hocl.parallel.ParallelReducer` pool.

The policies themselves live in :mod:`repro.hocl.parallel`
(:data:`~repro.hocl.parallel.BUILTIN_POLICIES`) so the chemistry layer can be
used without any runtime import; this module only *registers* them so
configuration by name, CLI choices (``ginflow backends``) and third-party
extensions all go through the one registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.hocl.parallel import BUILTIN_POLICIES, ReductionPolicy

from .backends import register_reduction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .config import GinFlowConfig

__all__ = ["serial_reduction", "batch_reduction", "parallel_reduction"]


@register_reduction(
    "serial",
    capabilities={"batch": False, "parallel": False, "trace_identical": True},
)
def serial_reduction(config: "GinFlowConfig | None" = None) -> ReductionPolicy:
    """One reaction per pass, first match fires — the reference semantics."""
    return BUILTIN_POLICIES["serial"]


@register_reduction(
    "batch",
    capabilities={"batch": True, "parallel": False, "trace_identical": False},
)
def batch_reduction(config: "GinFlowConfig | None" = None) -> ReductionPolicy:
    """Apply every disjoint applicable match per pass (same final solution)."""
    return BUILTIN_POLICIES["batch"]


@register_reduction(
    "parallel",
    capabilities={"batch": True, "parallel": True, "trace_identical": False},
)
def parallel_reduction(config: "GinFlowConfig | None" = None) -> ReductionPolicy:
    """Batched passes plus concurrent reduction of independent shards."""
    return BUILTIN_POLICIES["parallel"]
