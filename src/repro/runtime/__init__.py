"""GinFlow runtimes: configuration, cost model, reports and execution modes."""

from .config import BROKERS, EXECUTION_MODES, EXECUTORS, GinFlowConfig
from .costs import CostModel
from .ginflow import GinFlow
from .results import RunReport, TaskOutcome
from .simulation import SimulatedRun, run_simulation
from .threaded import ThreadedRun, run_threaded

__all__ = [
    "GinFlow",
    "GinFlowConfig",
    "CostModel",
    "RunReport",
    "TaskOutcome",
    "SimulatedRun",
    "run_simulation",
    "ThreadedRun",
    "run_threaded",
    "EXECUTION_MODES",
    "EXECUTORS",
    "BROKERS",
]
