"""GinFlow runtimes: configuration, cost model, reports, execution modes and
the pluggable backend registry.

This package facade is lazy (module-level ``__getattr__``) for two reasons:

* leaf packages (:mod:`repro.messaging`, :mod:`repro.executors`,
  :mod:`repro.cluster`) import :mod:`repro.runtime.backends` to register
  their backends, and must be able to do so without dragging the whole
  runtime stack in (which would create import cycles);
* ``EXECUTION_MODES`` / ``EXECUTORS`` / ``BROKERS`` are *derived views* of
  the registry — they always reflect every registered backend, including
  third-party ones, instead of being frozen tuples.
"""

from __future__ import annotations

import importlib

from . import backends
from .backends import (
    Backend,
    BackendError,
    BackendRegistry,
    available_brokers,
    available_clusters,
    available_executors,
    available_runtimes,
    get_backend,
    register_broker,
    register_cluster,
    register_executor,
    register_runtime,
)

__all__ = [
    "GinFlow",
    "GinFlowConfig",
    "CostModel",
    "RunReport",
    "TaskOutcome",
    "SimulatedRun",
    "run_simulation",
    "ThreadedRun",
    "run_threaded",
    "AsyncioRun",
    "run_asyncio",
    "EnactmentEngine",
    "AgentHost",
    "ReportAssembler",
    "EXECUTION_MODES",
    "EXECUTORS",
    "BROKERS",
    "backends",
    "Backend",
    "BackendError",
    "BackendRegistry",
    "get_backend",
    "register_runtime",
    "register_executor",
    "register_broker",
    "register_cluster",
    "available_runtimes",
    "available_executors",
    "available_brokers",
    "available_clusters",
]

# Lazily resolved attributes: name -> (module, attribute).
_LAZY = {
    "GinFlow": (".ginflow", "GinFlow"),
    "GinFlowConfig": (".config", "GinFlowConfig"),
    "CostModel": (".costs", "CostModel"),
    "RunReport": (".results", "RunReport"),
    "TaskOutcome": (".results", "TaskOutcome"),
    "SimulatedRun": (".simulation", "SimulatedRun"),
    "run_simulation": (".simulation", "run_simulation"),
    "ThreadedRun": (".threaded", "ThreadedRun"),
    "run_threaded": (".threaded", "run_threaded"),
    "AsyncioRun": (".aio", "AsyncioRun"),
    "run_asyncio": (".aio", "run_asyncio"),
    "EnactmentEngine": (".enactment", "EnactmentEngine"),
    "AgentHost": (".enactment", "AgentHost"),
    "ReportAssembler": (".enactment", "ReportAssembler"),
}

# Registry-derived views (recomputed on every access, never cached).
_DERIVED = backends.DERIVED_VIEWS


def __getattr__(name: str) -> object:
    if name in _DERIVED:
        return _DERIVED[name]()
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(module_name, __name__)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY) | set(_DERIVED))
