"""The simulated distributed runtime.

This is the virtual-time counterpart of a GinFlow deployment: every service
agent runs the *real* decentralised chemistry
(:class:`~repro.agents.core.AgentCore`), messages travel through a
:class:`~repro.messaging.simulated.SimulatedBroker`, agents are provisioned
by an :class:`~repro.executors.ssh.SSHExecutor` or
:class:`~repro.executors.mesos.MesosExecutor` over a simulated cluster, and
failures are injected according to the paper's model (Section V-D).  Only the
*durations* of platform operations are modelled, through the
:class:`~repro.runtime.costs.CostModel`.

The flow of one run:

1. the workflow is encoded (:func:`repro.hoclflow.encode_workflow`);
2. the executor produces a deployment plan on the cluster;
3. once deployment completes, every agent boots and the enactment proceeds
   purely by message exchanges until the exit tasks hold results (or the
   event queue drains);
4. a :class:`~repro.runtime.results.RunReport` is assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agents import (
    AgentCore,
    Coordinator,
    SendAdapt,
    SendResult,
    StartInvocation,
    StatusUpdate,
)
from repro.agents.recovery import rebuild_agent
from repro.hoclflow.translator import TaskEncoding, WorkflowEncoding, encode_workflow
from repro.messaging import Message, MessageKind, SimulatedBroker, STATUS_TOPIC, agent_topic
from repro.services import InvocationContext, InvocationResult
from repro.simkernel import RandomStreams, SerialQueue, Simulator
from repro.workflow.dag import Workflow

from .backends import register_runtime
from .config import GinFlowConfig
from .results import RunReport, TaskOutcome

__all__ = ["SimulatedRun", "run_simulation"]


@dataclass
class _SimAgent:
    """Book-keeping wrapper around one simulated service agent."""

    encoding: TaskEncoding
    core: AgentCore
    node: str = "unknown"
    serial: SerialQueue | None = None
    alive: bool = True
    incarnation: int = 0
    attempt: int = 0
    failures: int = 0
    started_at: float | None = None
    finished_at: float | None = None
    invocation_started_at: float | None = None

    @property
    def name(self) -> str:
        return self.encoding.name


class SimulatedRun:
    """One simulated distributed execution of a workflow."""

    def __init__(self, workflow: Workflow, config: GinFlowConfig | None = None):
        self.workflow = workflow
        self.config = config or GinFlowConfig()
        self.encoding: WorkflowEncoding | None = None
        self.report = RunReport()
        self._sim = Simulator()
        self._randomness = RandomStreams(self.config.seed)
        self._agents: dict[str, _SimAgent] = {}
        self._coordinator: Coordinator | None = None
        self._broker: SimulatedBroker | None = None
        self._registry = self.config.build_registry()
        self._triggered_adaptations: set[str] = set()
        self._enactment_start = 0.0

    # ------------------------------------------------------------------ run
    def run(self) -> RunReport:
        """Execute the workflow and return its report."""
        config = self.config
        costs = config.costs
        encoding = encode_workflow(self.workflow)
        self.encoding = encoding

        cluster = config.build_cluster()
        network = config.build_network()
        profile = config.broker_profile()
        self._broker = SimulatedBroker(
            self._sim,
            profile,
            network=network,
            randomness=self._randomness.spawn("broker"),
            dispatchers=costs.broker_dispatchers,
        )
        self._coordinator = Coordinator(exit_tasks=encoding.exit_tasks())

        executor = config.build_executor()
        agent_names = encoding.task_names()
        plan = executor.plan(cluster, agent_names)

        for name in agent_names:
            agent = _SimAgent(
                encoding=encoding.tasks[name],
                core=AgentCore(encoding.tasks[name]),
                node=plan.placement.get(name, "unknown"),
                serial=SerialQueue(self._sim, name=f"agent-{name}"),
            )
            self._agents[name] = agent
            self._broker.subscribe(agent_topic(name), self._make_message_handler(agent))
        self._broker.subscribe(STATUS_TOPIC, self._on_status_message)

        # Enactment starts once deployment completes (the stacked bars of
        # Fig. 14 split deployment time from execution time).
        self._enactment_start = plan.deployment_time
        for name in agent_names:
            agent = self._agents[name]
            self._sim.call_at(
                plan.deployment_time + costs.agent_boot_time,
                self._make_boot_callback(agent),
            )

        self._sim.run(until=config.max_virtual_time)

        return self._build_report(plan.deployment_time)

    # ------------------------------------------------------------ callbacks
    def _make_boot_callback(self, agent: _SimAgent):
        def boot() -> None:
            agent.started_at = self._sim.now
            self._handle(agent, agent.core.boot)

        return boot

    def _make_message_handler(self, agent: _SimAgent):
        def on_message(message: Message) -> None:
            if not agent.alive:
                # The agent is down: a persistent broker keeps the message in
                # its log, so the recovery replay will deliver it; with a
                # transient broker the message is lost.
                return
            if message.kind == MessageKind.RESULT:
                self._handle(agent, lambda: agent.core.receive_result(message.sender, message.payload))
            elif message.kind == MessageKind.ADAPT:
                count = int(message.payload) if message.payload else 1
                self._handle(agent, lambda: agent.core.receive_adapt(count))

        return on_message

    def _on_status_message(self, message: Message) -> None:
        if self._coordinator is not None and isinstance(message.payload, dict):
            self._coordinator.record_status(message.sender, message.payload, time=self._sim.now)

    # ------------------------------------------------------------- handling
    def _handle(self, agent: _SimAgent, stimulus, extra_cost: float = 0.0) -> None:
        """Run one agent stimulus and dispatch its actions after the modelled cost."""
        if not agent.alive:
            return
        units_before = agent.core.reduction_units
        actions = stimulus()
        units = agent.core.reduction_units - units_before
        cost = self.config.costs.handling_cost(units) + extra_cost
        incarnation = agent.incarnation
        done = agent.serial.submit(cost)
        done.add_callback(lambda _event: self._dispatch(agent, actions, incarnation))

    def _dispatch(self, agent: _SimAgent, actions, incarnation: int) -> None:
        if not agent.alive or agent.incarnation != incarnation:
            return
        costs = self.config.costs
        for action in actions:
            if isinstance(action, SendResult):
                self._publish(
                    Message(
                        topic=agent_topic(action.destination),
                        kind=MessageKind.RESULT,
                        sender=agent.name,
                        recipient=action.destination,
                        payload=action.value,
                        size_bytes=costs.result_message_size,
                    )
                )
            elif isinstance(action, SendAdapt):
                if action.adaptation:
                    self._triggered_adaptations.add(action.adaptation)
                self._publish(
                    Message(
                        topic=agent_topic(action.destination),
                        kind=MessageKind.ADAPT,
                        sender=agent.name,
                        recipient=action.destination,
                        payload=action.count,
                        size_bytes=costs.status_update_size,
                    )
                )
            elif isinstance(action, StartInvocation):
                self._start_invocation(agent, action)
            elif isinstance(action, StatusUpdate):
                if costs.status_update_enabled:
                    self._publish(
                        Message(
                            topic=STATUS_TOPIC,
                            kind=MessageKind.STATUS,
                            sender=agent.name,
                            recipient="coordinator",
                            payload=agent.core.status(),
                            size_bytes=costs.status_update_size,
                        )
                    )
                else:
                    # keep completion detection working without broker load
                    if self._coordinator is not None:
                        self._coordinator.record_status(agent.name, agent.core.status(), time=self._sim.now)

    def _publish(self, message: Message) -> None:
        assert self._broker is not None
        self._broker.publish(message)

    # ----------------------------------------------------------- invocation
    def _start_invocation(self, agent: _SimAgent, action: StartInvocation) -> None:
        agent.attempt += 1
        agent.invocation_started_at = self._sim.now
        service = self._registry.resolve(action.service)
        context = InvocationContext(
            task_name=agent.name,
            duration=agent.encoding.duration,
            metadata=agent.encoding.metadata,
            attempt=agent.attempt,
        )
        outcome = service.invoke(list(action.parameters), context)
        duration = max(0.0, outcome.duration) + self.config.costs.invocation_overhead
        incarnation = agent.incarnation

        crash_after = self.config.failures.crash_time(
            duration, self._randomness, label=f"crash:{agent.name}:{agent.attempt}"
        )
        if crash_after is not None and crash_after < duration:
            self._sim.call_in(crash_after, lambda: self._crash(agent, incarnation))
        else:
            self._sim.call_in(duration, lambda: self._complete_invocation(agent, incarnation, outcome))

    def _complete_invocation(self, agent: _SimAgent, incarnation: int, outcome: InvocationResult) -> None:
        if not agent.alive or agent.incarnation != incarnation:
            return
        agent.finished_at = self._sim.now
        if outcome.failed:
            self._handle(agent, lambda: agent.core.invocation_failed(outcome.error))
        else:
            self._handle(agent, lambda: agent.core.invocation_succeeded(outcome.value))

    # -------------------------------------------------------------- failures
    def _crash(self, agent: _SimAgent, incarnation: int) -> None:
        if not agent.alive or agent.incarnation != incarnation:
            return
        agent.alive = False
        agent.incarnation += 1
        agent.failures += 1
        self.report.failures_injected += 1
        if self._coordinator is not None:
            self._coordinator.record_event(self._sim.now, agent.name, "failure", f"attempt {agent.attempt}")
        self._sim.call_in(self.config.failures.recovery_overhead(), lambda: self._recover(agent))

    def _recover(self, agent: _SimAgent) -> None:
        assert self._broker is not None
        self.report.recoveries += 1
        logged = self._broker.replay(agent_topic(agent.name)) if self._broker.supports_replay else []
        core, actions = rebuild_agent(agent.encoding, logged)
        agent.core = core
        agent.alive = True
        costs = self.config.costs
        replay_cost = costs.agent_boot_time + costs.replay_cost(len(logged))
        incarnation = agent.incarnation
        done = agent.serial.submit(replay_cost + costs.handling_cost(core.reduction_units))
        done.add_callback(lambda _event: self._dispatch(agent, actions, incarnation))
        if self._coordinator is not None:
            self._coordinator.record_event(self._sim.now, agent.name, "recovery", f"replayed {len(logged)} messages")

    # --------------------------------------------------------------- report
    def _build_report(self, deployment_time: float) -> RunReport:
        assert self._coordinator is not None and self._broker is not None
        report = self.report
        config = self.config
        coordinator = self._coordinator

        report.mode = "simulated"
        report.executor = config.executor
        report.broker = config.broker
        report.nodes = len(config.build_cluster()) if config.cluster is None else len(config.cluster)
        report.seed = config.seed
        report.deployment_time = deployment_time
        completion = coordinator.completion_time
        if completion is not None:
            report.execution_time = max(0.0, completion - self._enactment_start)
            report.makespan = completion
        else:
            report.execution_time = max(0.0, self._sim.now - self._enactment_start)
            report.makespan = self._sim.now
        report.succeeded = coordinator.completed
        report.messages_published = self._broker.published_count()
        report.messages_delivered = self._broker.delivered_count()
        report.adaptations_triggered = len(self._triggered_adaptations)

        exit_tasks = set(self.encoding.exit_tasks()) if self.encoding else set()
        for name, agent in self._agents.items():
            core = agent.core
            outcome = TaskOutcome(
                task=name,
                state=core.state,
                result=core.result_value(),
                error=core.has_error(),
                node=agent.node,
                started_at=agent.started_at,
                finished_at=agent.finished_at,
                attempts=agent.attempt,
                failures=agent.failures,
            )
            report.tasks[name] = outcome
            report.duplicate_results_ignored += core.duplicates_ignored
            report.reduction_reactions += core.reactions
            report.reduction_match_attempts += core.match_attempts
            if name in exit_tasks and outcome.result is not None:
                report.results[name] = outcome.result
        if config.collect_timeline:
            report.timeline = list(coordinator.timeline)
        report.extra["status_updates"] = coordinator.status_updates
        report.extra["virtual_events"] = self._sim.processed_events
        return report


def run_simulation(workflow: Workflow, config: GinFlowConfig | None = None) -> RunReport:
    """Convenience wrapper: simulate ``workflow`` under ``config``."""
    return SimulatedRun(workflow, config).run()


@register_runtime(
    "simulated",
    capabilities={
        "distributed": True,
        "virtual_time": True,
        "supports_failures": True,
        "deterministic": True,
    },
    description="virtual-time distributed simulation over the modelled cluster",
)
def _simulated_runtime(workflow: Workflow, config: GinFlowConfig, timeout: float | None = None) -> RunReport:
    """Runtime backend entry point (``timeout`` has no meaning in virtual time)."""
    return SimulatedRun(workflow, config).run()
