"""The simulated distributed runtime.

This is the virtual-time counterpart of a GinFlow deployment: every service
agent runs the *real* decentralised chemistry
(:class:`~repro.agents.core.AgentCore`), messages travel through a
:class:`~repro.messaging.simulated.SimulatedBroker`, agents are provisioned
by an :class:`~repro.executors.ssh.SSHExecutor` or
:class:`~repro.executors.mesos.MesosExecutor` over a simulated cluster, and
failures are injected according to the paper's model (Section V-D).  Only the
*durations* of platform operations are modelled, through the
:class:`~repro.runtime.costs.CostModel`.

The protocol itself (action dispatch, invocation lifecycle, status routing,
report rows) lives in the shared :mod:`repro.runtime.enactment` engine; this
module is the *driver* — it owns only what is specific to virtual time:

* charging every stimulus its modelled handling cost on the agent's serial
  queue before its actions dispatch;
* scheduling invocation completions (and injected crashes) on the virtual
  clock, with the cost model's invocation overhead;
* the crash/recovery choreography (incarnation counting, recovery delay,
  boot-and-replay cost) around the engine's recovery protocol.

The flow of one run:

1. the workflow is encoded (:func:`repro.hoclflow.encode_workflow`);
2. the executor produces a deployment plan on the cluster;
3. once deployment completes, every agent boots and the enactment proceeds
   purely by message exchanges until the exit tasks hold results (or the
   event queue drains);
4. a :class:`~repro.runtime.results.RunReport` is assembled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.agents import AgentCore
from repro.hoclflow.translator import encode_workflow
from repro.messaging import Message, MessageKind, SimulatedBroker, agent_topic
from repro.services import InvocationResult
from repro.simkernel import RandomStreams, SerialQueue, Simulator
from repro.workflow.dag import Workflow

from .backends import register_runtime
from .config import GinFlowConfig
from .enactment import AgentHost, EnactmentEngine, PreparedInvocation, ReportAssembler, VirtualClock
from .results import RunReport

__all__ = ["SimulatedRun", "run_simulation"]


@dataclass
class _SimAgent(AgentHost):
    """One simulated service agent: engine host + its virtual serial queue."""

    serial: SerialQueue | None = None


class SimulatedRun:
    """One simulated distributed execution of a workflow."""

    def __init__(self, workflow: Workflow, config: GinFlowConfig | None = None) -> None:
        self.workflow = workflow
        self.config = config or GinFlowConfig()
        self.report = RunReport()
        self._sim = Simulator()
        self._randomness = RandomStreams(self.config.seed)
        self._engine: EnactmentEngine | None = None
        self._enactment_start = 0.0

    # ------------------------------------------------------------------ run
    def run(self) -> RunReport:
        """Execute the workflow and return its report."""
        config = self.config
        costs = config.costs
        encoding = encode_workflow(self.workflow)

        cluster = config.build_cluster()
        network = config.build_network()
        broker = SimulatedBroker(
            self._sim,
            config.broker_profile(),
            network=network,
            randomness=self._randomness.spawn("broker"),
            dispatchers=costs.broker_dispatchers,
        )
        tracer = config.obs.active_tracer() if config.obs is not None else None
        if tracer is not None:
            # Stamp every record with the virtual instant it happened at.
            tracer.vt_source = lambda: self._sim.now
        broker.attach_observability(config.obs)
        engine = EnactmentEngine(
            config=config,
            encoding=encoding,
            clock=VirtualClock(self._sim),
            transport=broker,
            invoker=self._invoke,
            report=self.report,
        )
        self._engine = engine

        executor = config.build_executor()
        agent_names = encoding.task_names()
        plan = executor.plan(cluster, agent_names)

        # Virtual time is single-threaded by construction, so a parallel
        # policy degrades to its batch component here: same final solutions,
        # no pool.  (Simulated timings model the *platform*, not host CPU.)
        policy = config.reduction_policy()
        for name in agent_names:
            agent = engine.add_host(
                _SimAgent(
                    encoding=encoding.tasks[name],
                    core=AgentCore(encoding.tasks[name], reduction=policy, trace=tracer),
                    node=plan.placement.get(name, "unknown"),
                    serial=SerialQueue(self._sim, name=f"agent-{name}"),
                )
            )
            broker.subscribe(agent_topic(name), self._make_message_handler(agent))
        engine.subscribe_status()

        # Enactment starts once deployment completes (the stacked bars of
        # Fig. 14 split deployment time from execution time).
        self._enactment_start = plan.deployment_time
        for name in agent_names:
            agent = engine.hosts[name]
            self._sim.call_at(
                plan.deployment_time + costs.agent_boot_time,
                self._make_boot_callback(agent),
            )

        self._sim.run(until=config.max_virtual_time)

        return self._build_report(plan.deployment_time)

    # ------------------------------------------------------------ callbacks
    def _make_boot_callback(self, agent: _SimAgent) -> Callable[[], None]:
        def boot() -> None:
            self._handle(agent, lambda: self._engine.boot(agent))

        return boot

    def _make_message_handler(self, agent: _SimAgent) -> Callable[[Message], None]:
        def on_message(message: Message) -> None:
            if not agent.alive:
                # The agent is down: a persistent broker keeps the message in
                # its log, so the recovery replay will deliver it; with a
                # transient broker the message is lost.
                return
            if message.kind in (MessageKind.RESULT, MessageKind.ADAPT):
                self._handle(agent, lambda: self._engine.deliver(agent, message))

        return on_message

    # ------------------------------------------------------------- handling
    def _handle(
        self, agent: _SimAgent, stimulus: Callable[[], Any], extra_cost: float = 0.0
    ) -> None:
        """Run one agent stimulus and dispatch its actions after the modelled cost."""
        if not agent.alive:
            return
        units_before = agent.core.reduction_units
        actions = stimulus()
        units = agent.core.reduction_units - units_before
        cost = self.config.costs.handling_cost(units) + extra_cost
        incarnation = agent.incarnation
        done = agent.serial.submit(cost)
        done.add_callback(lambda _event: self._dispatch(agent, actions, incarnation))

    def _dispatch(self, agent: _SimAgent, actions: Any, incarnation: int) -> None:
        if not agent.alive or agent.incarnation != incarnation:
            return
        self._engine.dispatch(agent, actions)

    # ----------------------------------------------------------- invocation
    def _invoke(self, agent: _SimAgent, prepared: PreparedInvocation) -> None:
        """Engine invoker: schedule the invocation's end on the virtual clock."""
        outcome = prepared.invoke()
        duration = max(0.0, outcome.duration) + self.config.costs.invocation_overhead
        incarnation = agent.incarnation

        crash_after = self.config.failures.crash_time(
            duration, self._randomness, label=f"crash:{agent.name}:{agent.attempts}"
        )
        if crash_after is not None and crash_after < duration:
            self._sim.call_in(crash_after, lambda: self._crash(agent, incarnation))
        else:
            self._sim.call_in(duration, lambda: self._complete_invocation(agent, incarnation, outcome))

    def _complete_invocation(self, agent: _SimAgent, incarnation: int, outcome: InvocationResult) -> None:
        if not agent.alive or agent.incarnation != incarnation:
            return
        self._handle(agent, lambda: self._engine.complete_invocation(agent, outcome))

    # -------------------------------------------------------------- failures
    def _crash(self, agent: _SimAgent, incarnation: int) -> None:
        if not agent.alive or agent.incarnation != incarnation:
            return
        agent.alive = False
        agent.incarnation += 1
        agent.failures += 1
        self.report.failures_injected += 1
        self._engine.coordinator.record_event(self._sim.now, agent.name, "failure", f"attempt {agent.attempts}")
        self._sim.call_in(self.config.failures.recovery_overhead(), lambda: self._recover(agent))

    def _recover(self, agent: _SimAgent) -> None:
        self.report.recoveries += 1
        actions, replayed = self._engine.recover(agent)
        costs = self.config.costs
        replay_cost = costs.agent_boot_time + costs.replay_cost(replayed)
        incarnation = agent.incarnation
        done = agent.serial.submit(replay_cost + costs.handling_cost(agent.core.reduction_units))
        done.add_callback(lambda _event: self._dispatch(agent, actions, incarnation))
        self._engine.coordinator.record_event(
            self._sim.now, agent.name, "recovery", f"replayed {replayed} messages"
        )

    # --------------------------------------------------------------- report
    def _build_report(self, deployment_time: float) -> RunReport:
        engine = self._engine
        assert engine is not None
        config = self.config
        completion = engine.coordinator.completion_time
        end = completion if completion is not None else self._sim.now
        report = ReportAssembler(engine).assemble(
            mode="simulated",
            executor=config.executor,
            broker=config.broker,
            nodes=len(config.build_cluster()) if config.cluster is None else len(config.cluster),
            deployment_time=deployment_time,
            execution_time=max(0.0, end - self._enactment_start),
            makespan=end,
        )
        report.extra["status_updates"] = engine.coordinator.status_updates
        report.extra["virtual_events"] = self._sim.processed_events
        report.extra["sim_wall_seconds"] = round(self._sim.wall_seconds, 6)
        return report


def run_simulation(workflow: Workflow, config: GinFlowConfig | None = None) -> RunReport:
    """Convenience wrapper: simulate ``workflow`` under ``config``."""
    return SimulatedRun(workflow, config).run()


@register_runtime(
    "simulated",
    capabilities={
        "distributed": True,
        "virtual_time": True,
        "supports_failures": True,
        "deterministic": True,
    },
    description="virtual-time distributed simulation over the modelled cluster",
)
def _simulated_runtime(workflow: Workflow, config: GinFlowConfig, timeout: float | None = None) -> RunReport:
    """Runtime backend entry point (``timeout`` has no meaning in virtual time)."""
    return SimulatedRun(workflow, config).run()
