"""The threaded local runtime: real decentralised execution on one machine.

Every service agent runs in its own thread with its own inbox; agents
communicate exclusively through an in-process broker
(:class:`~repro.messaging.activemq.ActiveMQBroker` or
:class:`~repro.messaging.kafka.KafkaBroker`).  No component ever reads
another agent's state directly, so this runtime exercises the actual
decentralised protocol — the same :class:`~repro.agents.core.AgentCore`
chemistry driven by real concurrency instead of virtual time.

It is meant for functional use (examples, integration tests, running real
Python services), not for performance studies: those use the simulated
runtime, which reproduces the paper's platform effects.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.agents import AgentCore, Coordinator, SendAdapt, SendResult, StartInvocation, StatusUpdate
from repro.hoclflow.translator import TaskEncoding, WorkflowEncoding, encode_workflow
from repro.messaging import InProcessBroker, Message, MessageKind, STATUS_TOPIC, agent_topic
from repro.services import InvocationContext, ServiceRegistry
from repro.workflow.dag import Workflow

from .backends import get_backend, register_runtime
from .config import GinFlowConfig
from .results import RunReport, TaskOutcome

__all__ = ["ThreadedRun", "run_threaded"]

_POISON = object()


@dataclass
class _ThreadedAgent:
    """One service-agent thread and its inbox."""

    encoding: TaskEncoding
    core: AgentCore
    inbox: "queue.Queue[Any]" = field(default_factory=queue.Queue)
    thread: threading.Thread | None = None
    attempts: int = 0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def name(self) -> str:
        return self.encoding.name


class ThreadedRun:
    """One threaded execution of a workflow."""

    def __init__(self, workflow: Workflow, config: GinFlowConfig | None = None):
        self.workflow = workflow
        self.config = config or GinFlowConfig(mode="threaded")
        self.encoding: WorkflowEncoding | None = None
        self._registry: ServiceRegistry = self.config.build_registry()
        self._agents: dict[str, _ThreadedAgent] = {}
        self._coordinator: Coordinator | None = None
        self._broker: InProcessBroker | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._triggered_adaptations: set[str] = set()

    # ------------------------------------------------------------------ run
    def run(self, timeout: float = 60.0) -> RunReport:
        """Execute the workflow; ``timeout`` bounds the wall-clock wait."""
        encoding = encode_workflow(self.workflow)
        self.encoding = encoding
        # Any registered broker backend works here: its profile carries the
        # persistence flag, and `broker_class` (optional capability) selects
        # a specialised in-process implementation.
        broker_backend = get_backend("broker", self.config.broker)
        profile = self.config.broker_profile()
        broker_cls = broker_backend.capability("broker_class", InProcessBroker)
        self._broker = broker_cls(profile)
        self._coordinator = Coordinator(
            exit_tasks=encoding.exit_tasks(), on_complete=lambda _time: self._done.set()
        )

        for name, task_encoding in encoding.tasks.items():
            agent = _ThreadedAgent(encoding=task_encoding, core=AgentCore(task_encoding))
            self._agents[name] = agent
            self._broker.subscribe(agent_topic(name), agent.inbox.put)
        self._broker.subscribe(STATUS_TOPIC, self._on_status)

        start = time.monotonic()
        for agent in self._agents.values():
            agent.thread = threading.Thread(target=self._agent_loop, args=(agent,), daemon=True, name=f"sa-{agent.name}")
            agent.thread.start()

        self._done.wait(timeout=timeout)
        completed = self._done.is_set()
        # shut the agent threads down
        for agent in self._agents.values():
            agent.inbox.put(_POISON)
        for agent in self._agents.values():
            if agent.thread is not None:
                agent.thread.join(timeout=2.0)
        elapsed = time.monotonic() - start
        return self._build_report(completed, elapsed)

    # ----------------------------------------------------------- agent loop
    def _agent_loop(self, agent: _ThreadedAgent) -> None:
        agent.started_at = time.monotonic()
        self._execute_actions(agent, agent.core.boot())
        while not self._done.is_set():
            try:
                item = agent.inbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is _POISON:
                return
            message: Message = item
            if message.kind == MessageKind.RESULT:
                actions = agent.core.receive_result(message.sender, message.payload)
            elif message.kind == MessageKind.ADAPT:
                actions = agent.core.receive_adapt(int(message.payload or 1))
            else:
                continue
            self._execute_actions(agent, actions)
        # drain remaining poison pill if the run completed first
        return

    def _execute_actions(self, agent: _ThreadedAgent, actions) -> None:
        assert self._broker is not None
        for action in actions:
            if isinstance(action, StartInvocation):
                self._invoke(agent, action)
            elif isinstance(action, SendResult):
                self._broker.publish(
                    Message(
                        topic=agent_topic(action.destination),
                        kind=MessageKind.RESULT,
                        sender=agent.name,
                        recipient=action.destination,
                        payload=action.value,
                    )
                )
            elif isinstance(action, SendAdapt):
                with self._lock:
                    if action.adaptation:
                        self._triggered_adaptations.add(action.adaptation)
                self._broker.publish(
                    Message(
                        topic=agent_topic(action.destination),
                        kind=MessageKind.ADAPT,
                        sender=agent.name,
                        recipient=action.destination,
                        payload=action.count,
                    )
                )
            elif isinstance(action, StatusUpdate):
                self._broker.publish(
                    Message(
                        topic=STATUS_TOPIC,
                        kind=MessageKind.STATUS,
                        sender=agent.name,
                        recipient="coordinator",
                        payload=agent.core.status(),
                    )
                )

    def _invoke(self, agent: _ThreadedAgent, action: StartInvocation) -> None:
        agent.attempts += 1
        service = self._registry.resolve(action.service)
        context = InvocationContext(
            task_name=agent.name,
            duration=agent.encoding.duration,
            metadata=agent.encoding.metadata,
            attempt=agent.attempts,
        )
        if self.config.threaded_time_scale > 0 and agent.encoding.duration > 0:
            time.sleep(agent.encoding.duration * self.config.threaded_time_scale)
        outcome = service.invoke(list(action.parameters), context)
        agent.finished_at = time.monotonic()
        if outcome.failed:
            actions = agent.core.invocation_failed(outcome.error)
        else:
            actions = agent.core.invocation_succeeded(outcome.value)
        self._execute_actions(agent, actions)

    # --------------------------------------------------------------- status
    def _on_status(self, message: Message) -> None:
        if self._coordinator is not None and isinstance(message.payload, dict):
            with self._lock:
                self._coordinator.record_status(message.sender, message.payload, time=time.monotonic())

    # --------------------------------------------------------------- report
    def _build_report(self, completed: bool, elapsed: float) -> RunReport:
        assert self._broker is not None and self._coordinator is not None
        report = RunReport(
            succeeded=completed,
            mode="threaded",
            executor="local",
            broker=self.config.broker,
            nodes=1,
            seed=self.config.seed,
            deployment_time=0.0,
            execution_time=elapsed,
            makespan=elapsed,
            messages_published=self._broker.published_count(),
            messages_delivered=self._broker.published_count(),
            adaptations_triggered=len(self._triggered_adaptations),
        )
        exit_tasks = set(self.encoding.exit_tasks()) if self.encoding else set()
        for name, agent in self._agents.items():
            core = agent.core
            outcome = TaskOutcome(
                task=name,
                state=core.state,
                result=core.result_value(),
                error=core.has_error(),
                node="localhost",
                started_at=agent.started_at,
                finished_at=agent.finished_at,
                attempts=agent.attempts,
            )
            report.tasks[name] = outcome
            report.duplicate_results_ignored += core.duplicates_ignored
            report.reduction_reactions += core.reactions
            report.reduction_match_attempts += core.match_attempts
            if name in exit_tasks and outcome.result is not None:
                report.results[name] = outcome.result
        if self.config.collect_timeline:
            report.timeline = list(self._coordinator.timeline)
        return report


def run_threaded(workflow: Workflow, config: GinFlowConfig | None = None, timeout: float = 60.0) -> RunReport:
    """Convenience wrapper: run ``workflow`` on the threaded runtime."""
    return ThreadedRun(workflow, config).run(timeout=timeout)


@register_runtime(
    "threaded",
    capabilities={"distributed": False, "wall_clock": True, "supports_failures": False},
    description="real threads and an in-process broker on the local machine",
)
def _threaded_runtime(workflow: Workflow, config: GinFlowConfig, timeout: float | None = None) -> RunReport:
    """Runtime backend entry point (``timeout`` bounds the wall-clock wait)."""
    return ThreadedRun(workflow, config).run(timeout=timeout if timeout is not None else 60.0)
