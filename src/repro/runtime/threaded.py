"""The threaded local runtime: real decentralised execution on one machine.

Every service agent runs in its own thread with its own inbox; agents
communicate exclusively through an in-process broker
(:class:`~repro.messaging.activemq.ActiveMQBroker` or
:class:`~repro.messaging.kafka.KafkaBroker`).  No component ever reads
another agent's state directly, so this runtime exercises the actual
decentralised protocol — the same :class:`~repro.agents.core.AgentCore`
chemistry driven by real concurrency instead of virtual time.

The protocol itself lives in the shared :mod:`repro.runtime.enactment`
engine; this module is the *driver* — it owns only the thread plumbing:
one thread + inbox per agent, a synchronous invoker running the service in
the agent's own thread, and the completion event the coordinator fires.

It is meant for functional use (examples, integration tests, running real
Python services), not for performance studies: those use the simulated
runtime, which reproduces the paper's platform effects.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.agents import AgentCore
from repro.hoclflow.translator import encode_workflow
from repro.messaging import InProcessBroker, Message, agent_topic
from repro.workflow.dag import Workflow

from .backends import get_backend, register_runtime
from .config import GinFlowConfig
from .enactment import AgentHost, EnactmentEngine, MonotonicClock, PreparedInvocation, ReportAssembler
from .results import RunReport

__all__ = ["ThreadedRun", "run_threaded"]

_POISON = object()


@dataclass
class _ThreadedAgent(AgentHost):
    """One threaded service agent: engine host + its thread and inbox."""

    inbox: "queue.Queue[Any]" = field(default_factory=queue.Queue)
    thread: threading.Thread | None = None


class ThreadedRun:
    """One threaded execution of a workflow."""

    def __init__(self, workflow: Workflow, config: GinFlowConfig | None = None) -> None:
        self.workflow = workflow
        self.config = config or GinFlowConfig(mode="threaded")
        self._engine: EnactmentEngine | None = None
        self._done = threading.Event()

    # ------------------------------------------------------------------ run
    def run(self, timeout: float = 60.0) -> RunReport:
        """Execute the workflow; ``timeout`` bounds the wall-clock wait."""
        encoding = encode_workflow(self.workflow)
        # Any registered broker backend works here: its profile carries the
        # persistence flag, and `broker_class` (optional capability) selects
        # a specialised in-process implementation.
        broker_backend = get_backend("broker", self.config.broker)
        broker_cls = broker_backend.capability("broker_class", InProcessBroker)
        broker = broker_cls(self.config.broker_profile())
        broker.attach_observability(self.config.obs)
        tracer = self.config.obs.active_tracer() if self.config.obs is not None else None
        engine = EnactmentEngine(
            config=self.config,
            encoding=encoding,
            clock=MonotonicClock(),
            transport=broker,
            invoker=self._invoke,
            on_complete=lambda _time: self._done.set(),
        )
        self._engine = engine

        # One shared reduction pool for every agent (None when the policy is
        # not parallel).  AgentCore.run blocks the calling agent thread, so
        # per-agent stimuli stay serialized; the pool only bounds how many
        # CPU-heavy reductions run at once across agents.
        policy = self.config.reduction_policy()
        reducer = policy.make_reducer()
        for name, task_encoding in encoding.tasks.items():
            agent = engine.add_host(
                _ThreadedAgent(
                    encoding=task_encoding,
                    core=AgentCore(task_encoding, reduction=policy, reducer=reducer, trace=tracer),
                )
            )
            broker.subscribe(agent_topic(name), agent.inbox.put)
        engine.subscribe_status()

        start = time.monotonic()
        for agent in engine.hosts.values():
            agent.thread = threading.Thread(
                target=self._agent_loop, args=(agent,), daemon=True, name=f"sa-{agent.name}"
            )
            agent.thread.start()

        completed = self._done.wait(timeout=timeout)
        # shut the agent threads down
        for agent in engine.hosts.values():
            agent.inbox.put(_POISON)
        for agent in engine.hosts.values():
            if agent.thread is not None:
                agent.thread.join(timeout=2.0)
        if reducer is not None:
            reducer.shutdown()
        elapsed = time.monotonic() - start
        return self._build_report(elapsed, timed_out=not completed)

    # ----------------------------------------------------------- agent loop
    def _agent_loop(self, agent: _ThreadedAgent) -> None:
        engine = self._engine
        engine.dispatch(agent, engine.boot(agent))
        while not self._done.is_set():
            try:
                item = agent.inbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is _POISON:
                return
            message: Message = item
            engine.dispatch(agent, engine.deliver(agent, message))
        # drain remaining poison pill if the run completed first
        return

    # ----------------------------------------------------------- invocation
    def _invoke(self, agent: _ThreadedAgent, prepared: PreparedInvocation) -> None:
        """Engine invoker: run the service synchronously in the agent's thread."""
        if self.config.threaded_time_scale > 0 and agent.encoding.duration > 0:
            time.sleep(agent.encoding.duration * self.config.threaded_time_scale)
        outcome = prepared.invoke()
        engine = self._engine
        engine.dispatch(agent, engine.complete_invocation(agent, outcome))

    # --------------------------------------------------------------- report
    def _build_report(self, elapsed: float, timed_out: bool = False) -> RunReport:
        engine = self._engine
        assert engine is not None
        report = ReportAssembler(engine).assemble(
            mode="threaded",
            executor="local",
            broker=self.config.broker,
            nodes=1,
            deployment_time=0.0,
            execution_time=elapsed,
            makespan=elapsed,
        )
        if timed_out:
            # the wait elapsed before the coordinator reported completion: a
            # cut-off run must never read like a successful one
            report.timed_out = True
            report.succeeded = False
        return report


def run_threaded(workflow: Workflow, config: GinFlowConfig | None = None, timeout: float = 60.0) -> RunReport:
    """Convenience wrapper: run ``workflow`` on the threaded runtime."""
    return ThreadedRun(workflow, config).run(timeout=timeout)


@register_runtime(
    "threaded",
    capabilities={"distributed": False, "wall_clock": True, "supports_failures": False},
    description="real threads and an in-process broker on the local machine",
)
def _threaded_runtime(workflow: Workflow, config: GinFlowConfig, timeout: float | None = None) -> RunReport:
    """Runtime backend entry point (``timeout`` bounds the wall-clock wait)."""
    return ThreadedRun(workflow, config).run(timeout=timeout if timeout is not None else 60.0)
