"""Pluggable backend registry — the extension seam of the GinFlow engine.

Every choice a :class:`~repro.runtime.config.GinFlowConfig` makes by name
(execution mode, distributed executor, messaging middleware, cluster preset)
resolves through this registry instead of hardcoded tuples and if/elif
chains.  Backends come in four *kinds*:

* ``"runtime"`` — execution modes; factory signature
  ``(workflow, config, timeout=None) -> RunReport``;
* ``"executor"`` — distributed provisioning; factory signature
  ``(config) -> DistributedExecutor``;
* ``"broker"`` — messaging middlewares; factory signature
  ``(config) -> BrokerProfile``;
* ``"cluster"`` — infrastructure presets; factory signature
  ``(config) -> Cluster``;
* ``"reduction"`` — HOCL reduction strategies; factory signature
  ``(config) -> ReductionPolicy``.

Built-in backends register themselves in the modules that define them
(:mod:`repro.executors.ssh`, :mod:`repro.messaging.kafka`, ...); third-party
backends register the same way, through the public decorators, without
touching any engine file::

    from repro import register_broker
    from repro.messaging import BrokerProfile

    @register_broker("inmemory", capabilities={"persistent": True})
    def inmemory_profile(config) -> BrokerProfile:
        return BrokerProfile("inmemory", 0.001, 0.01, persistent=True)

    report = GinFlow().run(workflow, broker="inmemory")

This module deliberately imports nothing from the rest of :mod:`repro`, so
any leaf package can depend on it without creating import cycles; the
built-in implementations are imported lazily by
:func:`ensure_builtin_backends` on first lookup.
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "KINDS",
    "Backend",
    "BackendError",
    "BackendRegistry",
    "registry",
    "register_backend",
    "register_runtime",
    "register_executor",
    "register_broker",
    "register_cluster",
    "register_reduction",
    "get_backend",
    "available_runtimes",
    "available_executors",
    "available_brokers",
    "available_clusters",
    "available_reductions",
    "ensure_builtin_backends",
]

#: The backend kinds the engine dispatches on.
KINDS = ("runtime", "executor", "broker", "cluster", "reduction")


class BackendError(ValueError):
    """Raised on unknown backend names or conflicting registrations."""


@dataclass(frozen=True)
class Backend:
    """One registered backend: a named factory plus advertised capabilities.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    name:
        The public name the configuration refers to (``"kafka"``, ``"ssh"``).
    factory:
        The builder callable; its signature depends on the kind (see the
        module docstring).
    capabilities:
        Free-form feature flags (``persistent``, ``supports_failures``,
        ``virtual_time``, ...) used for validation and discovery — never for
        dispatch, which always goes through :meth:`build`.
    description:
        One-line human description shown by ``ginflow backends``.
    """

    kind: str
    name: str
    factory: Callable[..., Any]
    capabilities: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def build(self, *args: Any, **kwargs: Any) -> Any:
        """Invoke the factory (the only way the engine uses a backend)."""
        return self.factory(*args, **kwargs)

    def capability(self, key: str, default: Any = None) -> Any:
        """The advertised capability ``key`` (``default`` when absent)."""
        return self.capabilities.get(key, default)


class BackendRegistry:
    """A thread-safe registry of :class:`Backend` entries, keyed by kind."""

    def __init__(self) -> None:
        self._backends: dict[str, dict[str, Backend]] = {kind: {} for kind in KINDS}
        self._lock = threading.Lock()

    # --------------------------------------------------------- registration
    def register(
        self,
        kind: str,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        capabilities: Mapping[str, Any] | None = None,
        description: str = "",
        replace: bool = False,
    ) -> Callable[..., Any]:
        """Register ``factory`` as the ``kind`` backend called ``name``.

        Usable directly (``register("broker", "x", build_x)``) or as a
        decorator (``@register("broker", "x")``).  Registering a name twice
        raises :class:`BackendError` unless ``replace=True``.
        """
        self._check_kind(kind)

        def _store(func: Callable[..., Any]) -> Callable[..., Any]:
            if not callable(func):
                raise BackendError(f"backend factory for {kind} {name!r} must be callable")
            about = description or _first_doc_line(func)
            with self._lock:
                if not replace and name in self._backends[kind]:
                    raise BackendError(
                        f"{kind} backend {name!r} is already registered "
                        f"(pass replace=True to override it)"
                    )
                self._backends[kind][name] = Backend(
                    kind=kind,
                    name=name,
                    factory=func,
                    capabilities=dict(capabilities or {}),
                    description=about,
                )
            return func

        if factory is None:
            return _store
        return _store(factory)

    def unregister(self, kind: str, name: str) -> None:
        """Remove a backend (no error if absent) — mostly for tests."""
        self._check_kind(kind)
        with self._lock:
            self._backends[kind].pop(name, None)

    # --------------------------------------------------------------- lookup
    def get(self, kind: str, name: str) -> Backend:
        """The backend called ``name``; raises :class:`BackendError` if unknown."""
        self._check_kind(kind)
        with self._lock:
            backend = self._backends[kind].get(name)
            if backend is None:
                known = tuple(self._backends[kind])
                raise BackendError(f"unknown {kind} {name!r}; expected one of {known}")
            return backend

    def has(self, kind: str, name: str) -> bool:
        """Whether a ``kind`` backend called ``name`` is registered."""
        self._check_kind(kind)
        with self._lock:
            return name in self._backends[kind]

    def names(self, kind: str) -> tuple[str, ...]:
        """Registered names of ``kind``, in registration order."""
        self._check_kind(kind)
        with self._lock:
            return tuple(self._backends[kind])

    def backends(self, kind: str | None = None) -> tuple[Backend, ...]:
        """Every registered backend (of one kind, or all kinds)."""
        with self._lock:
            if kind is not None:
                self._check_kind(kind)
                return tuple(self._backends[kind].values())
            return tuple(
                backend for entries in self._backends.values() for backend in entries.values()
            )

    # -------------------------------------------------------------- helpers
    def _check_kind(self, kind: str) -> None:
        if kind not in self._backends:
            raise BackendError(f"unknown backend kind {kind!r}; expected one of {KINDS}")


def _first_doc_line(func: Callable[..., Any]) -> str:
    doc = getattr(func, "__doc__", None) or ""
    for line in doc.strip().splitlines():
        if line.strip():
            return line.strip()
    return ""


#: The process-wide registry every GinFlow configuration resolves against.
registry = BackendRegistry()


# ------------------------------------------------------- public decorators
_Factory = Callable[..., Any]


def register_backend(
    kind: str, name: str, factory: _Factory | None = None, **kwargs: Any
) -> _Factory:
    """Register a backend of any kind on the global registry."""
    return registry.register(kind, name, factory, **kwargs)


def register_runtime(name: str, factory: _Factory | None = None, **kwargs: Any) -> _Factory:
    """Register an execution mode (``(workflow, config, timeout=None) -> RunReport``)."""
    return registry.register("runtime", name, factory, **kwargs)


def register_executor(name: str, factory: _Factory | None = None, **kwargs: Any) -> _Factory:
    """Register a distributed executor (``(config) -> DistributedExecutor``)."""
    return registry.register("executor", name, factory, **kwargs)


def register_broker(name: str, factory: _Factory | None = None, **kwargs: Any) -> _Factory:
    """Register a messaging middleware (``(config) -> BrokerProfile``)."""
    return registry.register("broker", name, factory, **kwargs)


def register_cluster(name: str, factory: _Factory | None = None, **kwargs: Any) -> _Factory:
    """Register a cluster preset (``(config) -> Cluster``)."""
    return registry.register("cluster", name, factory, **kwargs)


def register_reduction(name: str, factory: _Factory | None = None, **kwargs: Any) -> _Factory:
    """Register a reduction strategy (``(config) -> ReductionPolicy``)."""
    return registry.register("reduction", name, factory, **kwargs)


# ----------------------------------------------------------- derived views
def get_backend(kind: str, name: str) -> Backend:
    """Resolve one backend from the global registry (built-ins loaded first)."""
    ensure_builtin_backends()
    return registry.get(kind, name)


def available_runtimes() -> tuple[str, ...]:
    """Names of every registered execution mode."""
    ensure_builtin_backends()
    return registry.names("runtime")


def available_executors() -> tuple[str, ...]:
    """Names of every registered distributed executor."""
    ensure_builtin_backends()
    return registry.names("executor")


def available_brokers() -> tuple[str, ...]:
    """Names of every registered messaging middleware."""
    ensure_builtin_backends()
    return registry.names("broker")


def available_clusters() -> tuple[str, ...]:
    """Names of every registered cluster preset."""
    ensure_builtin_backends()
    return registry.names("cluster")


def available_reductions() -> tuple[str, ...]:
    """Names of every registered reduction strategy."""
    ensure_builtin_backends()
    return registry.names("reduction")


#: Legacy tuple names resolved as live registry views by the module
#: ``__getattr__`` hooks of :mod:`repro.runtime` and
#: :mod:`repro.runtime.config` (single source of truth for both).
DERIVED_VIEWS: dict[str, Callable[[], tuple[str, ...]]] = {
    "EXECUTION_MODES": available_runtimes,
    "EXECUTORS": available_executors,
    "BROKERS": available_brokers,
    "REDUCTIONS": available_reductions,
}


# ------------------------------------------------------ built-in backends
#: Modules whose import registers the built-in backends (in registration
#: order — this order is what `available_*()` and the CLI choices show).
_BUILTIN_MODULES = (
    "repro.runtime.reduction",
    "repro.runtime.simulation",
    "repro.runtime.threaded",
    "repro.runtime.aio",
    "repro.runtime.ginflow",
    "repro.executors.ssh",
    "repro.executors.mesos",
    "repro.messaging.activemq",
    "repro.messaging.kafka",
    "repro.cluster.grid5000",
    "repro.cluster.presets",
)

_builtins_loaded = False
# Reentrant so that a built-in module triggering a lookup *while it loads*
# (same thread) re-enters harmlessly; other threads block until the load
# finishes instead of seeing a half-populated registry.
_builtins_lock = threading.RLock()


def ensure_builtin_backends() -> None:
    """Import every built-in backend module exactly once (idempotent, thread-safe)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _builtins_lock:
        if _builtins_loaded:
            return
        for module_name in _BUILTIN_MODULES:
            importlib.import_module(module_name)
        _builtins_loaded = True
