"""The GinFlow facade — the library's main entry point.

>>> from repro import GinFlow, diamond_workflow
>>> report = GinFlow().run(diamond_workflow(width=3, depth=2))
>>> report.succeeded
True

A :class:`GinFlow` instance holds a base configuration
(:class:`~repro.runtime.config.GinFlowConfig`); :meth:`run` accepts per-call
overrides (``executor="mesos"``, ``broker="kafka"``, ``mode="threaded"``...)
and dispatches through the runtime backend registry
(:mod:`repro.runtime.backends`).  The four built-in runtimes are:

* ``simulated`` — virtual-time distributed execution over the simulated
  cluster (the default; this is what the benchmarks use);
* ``threaded`` — real threads and in-process brokers on the local machine;
* ``asyncio`` — one event loop, agents as tasks, concurrency without
  threads;
* ``centralized`` — single HOCL interpreter, synchronous service calls.

``simulated``, ``threaded`` and ``asyncio`` are all thin drivers over the
shared enactment engine (:mod:`repro.runtime.enactment`), so they enact the
exact same decentralised protocol.

Third-party runtimes registered with
:func:`~repro.runtime.backends.register_runtime` dispatch the same way.

:meth:`sweep` executes a declarative :class:`~repro.experiments.ParameterGrid`
(nodes × broker × failure probability × ...) and aggregates the runs into a
:class:`~repro.experiments.SweepReport` — the API every benchmark driver of
:mod:`repro.bench` is built on.
"""

from __future__ import annotations

from typing import Any

from repro.executors.centralized import CentralizedExecutor
from repro.services import ServiceRegistry
from repro.workflow.dag import Workflow
from repro.workflow.json_format import workflow_from_json

from .backends import get_backend, register_runtime
from .config import GinFlowConfig
from .results import RunReport, TaskOutcome

__all__ = ["GinFlow"]


class GinFlow:
    """Decentralised adaptive workflow execution manager (paper's Section IV)."""

    def __init__(
        self, config: GinFlowConfig | None = None, registry: ServiceRegistry | None = None
    ) -> None:
        self.config = config or GinFlowConfig()
        # Explicit service-registry slot: the configuration stays immutable
        # and is never silently rewritten when services are registered.
        if registry is not None:
            self._services = registry
        elif self.config.registry is not None:
            self._services = self.config.registry
        else:
            self._services = ServiceRegistry()
        self._base_cache: tuple[GinFlowConfig, GinFlowConfig] | None = None

    # ------------------------------------------------------------- services
    @property
    def registry(self) -> ServiceRegistry:
        """The service registry used to resolve task services."""
        return self._services

    def register_service(self, name: str, function: Any, idempotent: bool = True) -> None:
        """Register a Python callable as the service ``name``."""
        self._services.register_function(name, function, idempotent=idempotent)

    # ------------------------------------------------------------------ run
    def run(self, workflow: Workflow | str | dict, timeout: float = 120.0, **overrides: Any) -> RunReport:
        """Execute ``workflow`` (a :class:`Workflow`, JSON string/dict or path).

        ``overrides`` are applied on top of the instance configuration for
        this run only (e.g. ``broker="kafka"``, ``nodes=10``,
        ``mode="centralized"``).  ``timeout`` only applies to wall-clock
        runtimes (the threaded one, for the built-ins).
        """
        if not isinstance(workflow, Workflow):
            workflow = workflow_from_json(workflow)
        config = self._effective_config(overrides)
        workflow.validate()
        runtime = get_backend("runtime", config.mode)
        return runtime.build(workflow, config, timeout=timeout)

    # ---------------------------------------------------------------- sweep
    def sweep(
        self,
        workflow: Any,
        grid: Any,
        *,
        repeats: int = 1,
        workers: int | None = None,
        parallel: str = "thread",
        name: str = "sweep",
        metrics: Any = None,
        runner: Any = None,
        timeout: float = 120.0,
        **overrides: Any,
    ) -> Any:
        """Execute a parameter ``grid`` and aggregate it into a ``SweepReport``.

        ``workflow`` is either a fixed workflow (object/JSON) or a factory
        called with the grid cell's non-configuration parameters;
        configuration-field cell keys (``nodes``, ``broker``, ``seed``, ...)
        override the instance configuration per cell, and
        ``failure_probability`` / ``failure_delay`` build a
        :class:`~repro.services.FailureModel`.  Each cell runs ``repeats``
        times with derived seeds; ``workers`` enables thread
        (``parallel="thread"``) or process (``parallel="process"``)
        parallelism.  See :class:`repro.experiments.Experiment`.
        """
        from repro.experiments import Experiment

        config = self._effective_config(overrides)
        experiment = Experiment(
            name=name,
            workflow=workflow,
            grid=grid,
            config=config,
            repeats=repeats,
            timeout=timeout,
            metrics=metrics,
            runner=runner,
        )
        return experiment.run(workers=workers, parallel=parallel)

    # ------------------------------------------------------------ internals
    def _effective_config(self, overrides: dict[str, Any]) -> GinFlowConfig:
        # The instance's service slot is authoritative (it is where
        # register_service writes), unless this very call overrides it.
        if "registry" in overrides:
            return self.config.with_overrides(**overrides)
        base = self._base_config()
        return base.with_overrides(**overrides) if overrides else base

    def _base_config(self) -> GinFlowConfig:
        """``self.config`` with the service slot attached (cached — avoids
        re-validating the unchanged configuration on every run)."""
        if self._base_cache is None or self._base_cache[0] is not self.config:
            config = self.config
            if config.registry is not self._services:
                config = config.with_overrides(registry=self._services)
            self._base_cache = (self.config, config)
        return self._base_cache[1]


@register_runtime(
    "centralized",
    capabilities={"distributed": False, "supports_failures": False, "wall_clock": True},
    description="single HOCL interpreter with synchronous service calls",
)
def _centralized_runtime(workflow: Workflow, config: GinFlowConfig, timeout: float | None = None) -> RunReport:
    """Run ``workflow`` on a single centralised HOCL interpreter."""
    executor = CentralizedExecutor(
        registry=config.build_registry(), reduction=config.reduction_policy(), obs=config.obs
    )
    outcome = executor.execute(workflow)
    exit_tasks = set(workflow.exit_tasks())
    report = RunReport(
        mode="centralized",
        executor="centralized",
        broker="none",
        nodes=1,
        seed=config.seed,
        deployment_time=0.0,
        execution_time=0.0,
        makespan=0.0,
        reduction_reactions=outcome.report.reactions,
        reduction_match_attempts=outcome.report.match_attempts,
    )
    all_names = set(workflow.task_names())
    for spec in workflow.adaptations:
        all_names.update(spec.replacement.task_names())
    for name in all_names:
        result = outcome.results.get(name)
        error = name in outcome.errors
        report.tasks[name] = TaskOutcome(
            task=name,
            state="failed" if error else ("completed" if result is not None else "idle"),
            result=result,
            error=error,
            node="localhost",
        )
        if name in exit_tasks and result is not None:
            report.results[name] = result
    report.succeeded = all(
        report.tasks[name].result is not None for name in exit_tasks
    )
    report.adaptations_triggered = sum(
        1 for spec in workflow.adaptations
        if any(report.tasks.get(t) is not None and report.tasks[t].result is not None
               for t in spec.replacement.task_names())
    )
    report.extra["invocations"] = outcome.invocations
    report.extra["rule_fires"] = dict(outcome.report.rule_fires)
    report.extra["reduction"] = config.reduction
    report.extra["batches"] = outcome.report.batches
    report.extra["reduction_timings"] = dict(outcome.report.timings)
    if config.obs is not None and config.obs.metrics is not None:
        report.extra["metrics"] = config.obs.metrics.snapshot()
    return report
