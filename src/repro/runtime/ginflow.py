"""The GinFlow facade — the library's main entry point.

>>> from repro import GinFlow, diamond_workflow
>>> report = GinFlow().run(diamond_workflow(width=3, depth=2))
>>> report.succeeded
True

A :class:`GinFlow` instance holds a base configuration
(:class:`~repro.runtime.config.GinFlowConfig`); :meth:`run` accepts per-call
overrides (``executor="mesos"``, ``broker="kafka"``, ``mode="threaded"``...)
and dispatches to one of the three runtimes:

* ``simulated`` — virtual-time distributed execution over the simulated
  cluster (the default; this is what the benchmarks use);
* ``threaded`` — real threads and in-process brokers on the local machine;
* ``centralized`` — single HOCL interpreter, synchronous service calls.
"""

from __future__ import annotations

from typing import Any

from repro.executors import CentralizedExecutor
from repro.services import ServiceRegistry
from repro.workflow.dag import Workflow
from repro.workflow.json_format import workflow_from_json

from .config import GinFlowConfig
from .results import RunReport, TaskOutcome
from .simulation import SimulatedRun
from .threaded import ThreadedRun

__all__ = ["GinFlow"]


class GinFlow:
    """Decentralised adaptive workflow execution manager (paper's Section IV)."""

    def __init__(self, config: GinFlowConfig | None = None, registry: ServiceRegistry | None = None):
        self.config = config or GinFlowConfig()
        if registry is not None:
            self.config = self.config.with_overrides(registry=registry)

    # ------------------------------------------------------------- services
    @property
    def registry(self) -> ServiceRegistry:
        """The service registry used to resolve task services."""
        if self.config.registry is None:
            self.config = self.config.with_overrides(registry=ServiceRegistry())
        return self.config.registry  # type: ignore[return-value]

    def register_service(self, name: str, function, idempotent: bool = True) -> None:
        """Register a Python callable as the service ``name``."""
        self.registry.register_function(name, function, idempotent=idempotent)

    # ------------------------------------------------------------------ run
    def run(self, workflow: Workflow | str | dict, timeout: float = 120.0, **overrides: Any) -> RunReport:
        """Execute ``workflow`` (a :class:`Workflow`, JSON string/dict or path).

        ``overrides`` are applied on top of the instance configuration for
        this run only (e.g. ``broker="kafka"``, ``nodes=10``,
        ``mode="centralized"``).  ``timeout`` only applies to the threaded
        runtime (wall-clock bound).
        """
        if not isinstance(workflow, Workflow):
            workflow = workflow_from_json(workflow)
        config = self.config.with_overrides(**overrides) if overrides else self.config
        workflow.validate()
        if config.mode == "simulated":
            return SimulatedRun(workflow, config).run()
        if config.mode == "threaded":
            return ThreadedRun(workflow, config).run(timeout=timeout)
        return self._run_centralized(workflow, config)

    # ------------------------------------------------------------ internals
    def _run_centralized(self, workflow: Workflow, config: GinFlowConfig) -> RunReport:
        executor = CentralizedExecutor(registry=config.build_registry())
        outcome = executor.execute(workflow)
        exit_tasks = set(workflow.exit_tasks())
        report = RunReport(
            mode="centralized",
            executor="centralized",
            broker="none",
            nodes=1,
            seed=config.seed,
            deployment_time=0.0,
            execution_time=0.0,
            makespan=0.0,
            reduction_reactions=outcome.report.reactions,
            reduction_match_attempts=outcome.report.match_attempts,
        )
        all_names = set(workflow.task_names())
        for spec in workflow.adaptations:
            all_names.update(spec.replacement.task_names())
        for name in all_names:
            result = outcome.results.get(name)
            error = name in outcome.errors
            report.tasks[name] = TaskOutcome(
                task=name,
                state="failed" if error else ("completed" if result is not None else "idle"),
                result=result,
                error=error,
                node="localhost",
            )
            if name in exit_tasks and result is not None:
                report.results[name] = result
        report.succeeded = all(
            report.tasks[name].result is not None for name in exit_tasks
        )
        report.adaptations_triggered = sum(
            1 for spec in workflow.adaptations
            if any(report.tasks.get(t) is not None and report.tasks[t].result is not None
                   for t in spec.replacement.task_names())
        )
        report.extra["invocations"] = outcome.invocations
        return report
