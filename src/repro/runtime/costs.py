"""Cost model of the simulated distributed execution.

The simulation executes the *real* chemistry (every agent runs the actual
HOCL rules); what it models are the *durations* of the platform operations.
This module gathers every such constant in one place so that experiments are
reproducible and the calibration is explicit.

The constants were calibrated so that the reproduced figures have the same
shape (and roughly the same magnitudes) as the paper's:

* per-message broker costs make message-heavy workflows (fully-connected
  diamonds, Kafka runs) pay proportionally — Fig. 12(b), Fig. 14;
* per-reduction costs grow with the size of the local solution, reproducing
  the "pattern matching depends on the size of the solution" effect the
  paper discusses in Section V-A;
* executor constants reproduce the deployment-time trends of Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.messaging.broker import ACTIVEMQ_PROFILE, KAFKA_PROFILE, BrokerProfile

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Durations charged to the virtual clock by the simulated runtime.

    Attributes
    ----------
    agent_boot_time:
        Time for a freshly deployed SA to read its sub-solution from the
        shared space and become ready.
    handling_base:
        Fixed cost of handling one stimulus (message receipt, invocation
        completion): deserialisation, cache read/write.
    reduction_unit_cost:
        Cost per "reduction unit" (one match attempt over one atom of the
        local solution, see
        :meth:`repro.hocl.engine.ReductionReport.reduction_units`) — the
        knob that makes coordination time grow with the number and
        connectivity of services.  Under the incremental engine a match
        attempt is only charged when a rule's search actually runs:
        index-refuted rules and already-inert sub-solutions are free, so
        the simulated interpreter cost tracks the real one.
    invocation_overhead:
        Fixed overhead added to every service invocation (fork/exec of the
        wrapped executable, input staging).
    status_update_enabled:
        Whether agents push STATUS messages to the shared space (they do in
        GinFlow; disabling isolates the coordination cost in ablations).
    status_update_size:
        Serialised size of a STATUS message (bytes).
    result_message_size:
        Serialised size of a RESULT message (bytes).
    activemq / kafka:
        Broker profiles (per-message processing, delivery overhead,
        persistence).
    broker_dispatchers:
        Number of parallel dispatcher threads of the broker.
    recovery_replay_cost_per_message:
        Time to re-fetch and re-apply one logged message during an agent
        recovery (Kafka consumer catch-up).
    """

    agent_boot_time: float = 0.05
    handling_base: float = 0.120
    reduction_unit_cost: float = 0.00010
    invocation_overhead: float = 1.0
    status_update_enabled: bool = True
    status_update_size: int = 256
    result_message_size: int = 1024
    activemq: BrokerProfile = field(default_factory=lambda: ACTIVEMQ_PROFILE)
    kafka: BrokerProfile = field(default_factory=lambda: KAFKA_PROFILE)
    broker_dispatchers: int = 1
    recovery_replay_cost_per_message: float = 0.01

    # ------------------------------------------------------------- helpers
    def broker_profile(self, name: str) -> BrokerProfile:
        """The profile for broker ``name`` (``"activemq"`` / ``"kafka"``)."""
        lowered = name.lower()
        if lowered == "activemq":
            return self.activemq
        if lowered == "kafka":
            return self.kafka
        raise ValueError(f"unknown broker {name!r}")

    def handling_cost(self, reduction_units: float) -> float:
        """Virtual time consumed by one agent handling step.

        ``reduction_units`` is the accounting produced by
        :meth:`~repro.hocl.engine.ReductionReport.reduction_units`; the
        agents accumulate it per stimulus so the charged time follows the
        match searches the (incremental) interpreter actually performed.
        """
        return self.handling_base + self.reduction_unit_cost * max(0.0, reduction_units)

    def replay_cost(self, message_count: int) -> float:
        """Virtual time for a recovering agent to replay its message log."""
        return self.recovery_replay_cost_per_message * max(0, message_count)

    def with_overrides(self, **overrides: Any) -> "CostModel":
        """A copy of the model with some attributes replaced."""
        return replace(self, **overrides)
