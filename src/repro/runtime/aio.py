"""The asyncio local runtime: one event loop, agents as tasks, no threads.

This is the proof that the enactment protocol is runtime-agnostic: the whole
driver fits in ~100 lines because everything protocol-shaped — action
dispatch, invocation lifecycle, status routing, fail-fast completion, report
rows — comes from :mod:`repro.runtime.enactment`.  What this module adds is
only the asyncio hosting decisions:

* every service agent is an :class:`asyncio.Task` draining its own
  :class:`asyncio.Queue` (the broker subscription is ``put_nowait``);
* service invocations run as separate tasks on the same loop, so agents
  keep exchanging messages while a service awaits its nominal duration —
  real-service concurrency without a single thread;
* **async services are first-class**: a registered service callable may be
  an ``async def`` (or return any awaitable) — its coroutine is awaited on
  the loop, so N awaiting services genuinely overlap.  Plain synchronous
  services must be quick/non-blocking: they run on the loop itself (that
  is the no-threads trade-off; blocking services belong on ``threaded``);
* completion is an :class:`asyncio.Event` fired by the coordinator.

Like the threaded runtime it is meant for functional use (examples, real
Python services, integration tests), not performance studies.  Use
:meth:`AsyncioRun.run_async` when already inside an event loop;
:meth:`AsyncioRun.run` (and the ``"asyncio"`` backend) wrap it in
:func:`asyncio.run`.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from dataclasses import dataclass, replace
from typing import Any

from repro.agents import AgentCore
from repro.hoclflow.translator import encode_workflow
from repro.messaging import InProcessBroker, agent_topic
from repro.obs.logs import get_logger
from repro.workflow.dag import Workflow

from .backends import get_backend, register_runtime
from .config import GinFlowConfig
from .enactment import AgentHost, EnactmentEngine, MonotonicClock, PreparedInvocation, ReportAssembler
from .results import RunReport

__all__ = ["AsyncioRun", "run_asyncio"]

_POISON: Any = object()

logger = get_logger("runtime.aio")


@dataclass
class _AsyncAgent(AgentHost):
    """One asyncio service agent: engine host + its task and queue."""

    queue: "asyncio.Queue[Any] | None" = None
    task: "asyncio.Task | None" = None
    #: serializes this agent's stimuli when they are offloaded to the
    #: reduction pool (the agent loop and an invocation-completion task
    #: would otherwise interleave once off the loop thread)
    lock: "asyncio.Lock | None" = None


class AsyncioRun:
    """One asyncio execution of a workflow (single event loop, no threads)."""

    def __init__(self, workflow: Workflow, config: GinFlowConfig | None = None) -> None:
        self.workflow = workflow
        self.config = config or GinFlowConfig(mode="asyncio")
        self._engine: EnactmentEngine | None = None
        self._done: asyncio.Event | None = None
        self._invocations: set[asyncio.Task] = set()
        self._reducer = None

    # ------------------------------------------------------------------ run
    def run(self, timeout: float = 60.0) -> RunReport:
        """Execute the workflow in a fresh event loop (blocking entry point)."""
        return asyncio.run(self.run_async(timeout=timeout))

    async def run_async(self, timeout: float = 60.0) -> RunReport:
        """Execute the workflow on the current event loop."""
        encoding = encode_workflow(self.workflow)
        # Same transport family as the threaded runtime: the in-process
        # broker delivers synchronously, so `put_nowait` lands on the loop.
        broker_backend = get_backend("broker", self.config.broker)
        broker_cls = broker_backend.capability("broker_class", InProcessBroker)
        broker = broker_cls(self.config.broker_profile())
        broker.attach_observability(self.config.obs)
        tracer = self.config.obs.active_tracer() if self.config.obs is not None else None
        self._done = asyncio.Event()
        engine = EnactmentEngine(
            config=self.config,
            encoding=encoding,
            clock=MonotonicClock(),
            transport=broker,
            invoker=self._invoke,
            on_complete=lambda _time: self._done.set(),
        )
        self._engine = engine

        # Under a parallel policy, whole stimuli (boot/deliver/completion)
        # run on the reducer's thread pool via `run_async`, so the CPU-heavy
        # reductions of different agents genuinely overlap while the loop
        # stays free.  The engine already supports concurrent per-agent
        # stimuli (the threaded runtime drives it that way); the per-agent
        # lock keeps each *single* agent's stimuli serialized.  The core
        # gets the policy (for batch engines) but no nested reducer.
        policy = self.config.reduction_policy()
        self._reducer = policy.make_reducer()
        for name, task_encoding in encoding.tasks.items():
            agent = engine.add_host(
                _AsyncAgent(
                    encoding=task_encoding,
                    core=AgentCore(task_encoding, reduction=policy, trace=tracer),
                )
            )
            agent.queue = asyncio.Queue()
            agent.lock = asyncio.Lock()
            broker.subscribe(agent_topic(name), agent.queue.put_nowait)
        engine.subscribe_status()

        start = time.monotonic()
        for agent in engine.hosts.values():
            agent.task = asyncio.create_task(self._agent_loop(agent), name=f"sa-{agent.name}")
        timed_out = False
        try:
            await asyncio.wait_for(self._done.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            # surfaced on the report below: a cut-off run must not read like
            # a normal one
            timed_out = True
        # shut the agent tasks down, then drop any still-pending invocation
        for agent in engine.hosts.values():
            agent.queue.put_nowait(_POISON)
        outcomes = await asyncio.gather(
            *(agent.task for agent in engine.hosts.values()), return_exceptions=True
        )
        for agent, outcome in zip(engine.hosts.values(), outcomes):
            if isinstance(outcome, BaseException) and not isinstance(outcome, asyncio.CancelledError):
                # an agent task died on a protocol bug: surface the traceback
                # (mirrors the threaded runtime's thread excepthook output)
                logger.error(
                    "exception in asyncio agent task %r:", agent.name, exc_info=outcome
                )
        for pending in list(self._invocations):
            pending.cancel()
        if self._reducer is not None:
            self._reducer.shutdown()
            self._reducer = None
        elapsed = time.monotonic() - start
        report = ReportAssembler(engine).assemble(
            mode="asyncio",
            executor="local",
            broker=self.config.broker,
            nodes=1,
            deployment_time=0.0,
            execution_time=elapsed,
            makespan=elapsed,
        )
        if timed_out:
            report.timed_out = True
            report.succeeded = False
        return report

    # ----------------------------------------------------------- agent loop
    async def _stimulate(self, agent: _AsyncAgent, fn: Any, *args: Any) -> Any:
        """Run one engine stimulus, offloaded to the reduction pool if any.

        Dispatch stays on the loop (it creates tasks and posts to the
        broker); only the stimulus itself — which ends in the agent's HOCL
        reduction — moves to the pool.
        """
        if self._reducer is None:
            return fn(agent, *args)
        async with agent.lock:
            return await self._reducer.run_async(fn, agent, *args)

    async def _agent_loop(self, agent: _AsyncAgent) -> None:
        engine = self._engine
        engine.dispatch(agent, await self._stimulate(agent, engine.boot))
        while True:
            message = await agent.queue.get()
            if message is _POISON:
                return
            engine.dispatch(agent, await self._stimulate(agent, engine.deliver, message))

    # ----------------------------------------------------------- invocation
    def _invoke(self, agent: _AsyncAgent, prepared: PreparedInvocation) -> None:
        """Engine invoker: run the invocation as its own task on the loop."""
        task = asyncio.create_task(self._run_invocation(agent, prepared), name=f"invoke-{agent.name}")
        self._invocations.add(task)
        task.add_done_callback(self._on_invocation_done)

    def _on_invocation_done(self, task: "asyncio.Task") -> None:
        """Retrieve every invocation task's outcome so no exception is lost.

        Service-level failures are already converted into failed
        ``InvocationResult``s inside :meth:`_run_invocation`; anything left
        here is a protocol bug in the dispatch itself, which must be surfaced
        (an unretrieved task exception would otherwise vanish into asyncio's
        garbage-collection warning and the run would hang until timeout).
        """
        self._invocations.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            logger.error(
                "exception in asyncio invocation task %r:", task.get_name(), exc_info=exc
            )

    async def _run_invocation(self, agent: _AsyncAgent, prepared: PreparedInvocation) -> None:
        scale = self.config.threaded_time_scale
        if scale > 0 and agent.encoding.duration > 0:
            await asyncio.sleep(agent.encoding.duration * scale)
        else:
            await asyncio.sleep(0)  # yield so concurrent agents interleave
        # a raising service is converted into a failed result inside
        # PreparedInvocation.invoke, identically for every runtime
        outcome = prepared.invoke()
        if inspect.isawaitable(outcome.value):
            # async service: the callable returned a coroutine — await it on
            # the loop so concurrent invocations genuinely overlap
            try:
                value = await outcome.value
            except Exception as exc:  # noqa: BLE001 - converted into a task failure
                outcome = replace(outcome, value=None, failed=True, error=str(exc))
            else:
                outcome = replace(outcome, value=value)
        engine = self._engine
        engine.dispatch(agent, await self._stimulate(agent, engine.complete_invocation, outcome))


def run_asyncio(workflow: Workflow, config: GinFlowConfig | None = None, timeout: float = 60.0) -> RunReport:
    """Convenience wrapper: run ``workflow`` on the asyncio runtime."""
    return AsyncioRun(workflow, config).run(timeout=timeout)


@register_runtime(
    "asyncio",
    capabilities={
        "distributed": False,
        "wall_clock": True,
        "supports_failures": False,
        "single_threaded": True,
    },
    description="one asyncio event loop: agents as tasks, concurrency without threads",
)
def _asyncio_runtime(workflow: Workflow, config: GinFlowConfig, timeout: float | None = None) -> RunReport:
    """Runtime backend entry point (``timeout`` bounds the wall-clock wait)."""
    return AsyncioRun(workflow, config).run(timeout=timeout if timeout is not None else 60.0)
