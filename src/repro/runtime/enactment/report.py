"""Shared run-report assembly.

Every runtime's :class:`~repro.runtime.results.RunReport` is built here, so
the per-task rows (:class:`~repro.runtime.results.TaskOutcome`), the message
counters and the chemistry aggregates are identical across runtimes by
construction — the driver only supplies what genuinely differs: the timing
figures and the identity fields of its configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..results import RunReport, TaskOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import EnactmentEngine

__all__ = ["ReportAssembler"]


class ReportAssembler:
    """Builds the run report from an engine's final state."""

    def __init__(self, engine: "EnactmentEngine") -> None:
        self.engine = engine

    def assemble(
        self,
        *,
        mode: str,
        executor: str,
        broker: str,
        nodes: int,
        deployment_time: float,
        execution_time: float,
        makespan: float,
    ) -> RunReport:
        """Fill the engine's report with the shared, runtime-agnostic rows."""
        engine = self.engine
        coordinator = engine.coordinator
        report = engine.report

        report.mode = mode
        report.executor = executor
        report.broker = broker
        report.nodes = nodes
        report.seed = engine.config.seed
        report.deployment_time = deployment_time
        report.execution_time = execution_time
        report.makespan = makespan
        report.succeeded = coordinator.succeeded
        report.messages_published = engine.transport.published_count()
        report.messages_delivered = engine.transport.delivered_count()
        report.adaptations_triggered = len(engine.triggered_adaptations)

        exit_tasks = set(engine.encoding.exit_tasks())
        for name, host in engine.hosts.items():
            core = host.core
            outcome = TaskOutcome(
                task=name,
                state=core.state,
                result=core.result_value(),
                error=core.has_error(),
                node=host.node,
                started_at=host.started_at,
                finished_at=host.finished_at,
                attempts=host.attempts,
                failures=host.failures,
            )
            report.tasks[name] = outcome
            report.duplicate_results_ignored += core.duplicates_ignored
            report.reduction_reactions += core.reactions
            report.reduction_match_attempts += core.match_attempts
            timings = report.extra.setdefault("reduction_timings", {})
            for phase, seconds in core.reduction_timings.items():
                timings[phase] = timings.get(phase, 0.0) + seconds
            fires = report.extra.setdefault("rule_fires", {})
            for rule_name, count in core.rule_fires.items():
                fires[rule_name] = fires.get(rule_name, 0) + count
            registered = report.extra.setdefault("rules_registered", [])
            for rule_name in core.rule_names:
                if rule_name not in registered:
                    registered.append(rule_name)
            if name in exit_tasks and outcome.result is not None:
                report.results[name] = outcome.result
        if engine.config.collect_timeline:
            report.timeline = list(coordinator.timeline)
        if engine.obs is not None and engine.obs.metrics is not None:
            report.extra["metrics"] = engine.obs.metrics.snapshot()
        return report
