"""The clock seam of the enactment engine.

Every timestamp the engine records (boot, invocation start/end, status
updates, completion) is read through a :class:`Clock`, so the same protocol
code runs under virtual time (the discrete-event simulation) and wall-clock
time (the threaded and asyncio runtimes).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.sim import Simulator

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock:
    """Minimal time source: a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        """Current time in seconds (origin is runtime-defined)."""
        raise NotImplementedError


class VirtualClock(Clock):
    """Reads the simulation kernel's virtual clock."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    def now(self) -> float:
        return self.sim.now


class MonotonicClock(Clock):
    """Wall-clock time for real-concurrency runtimes (``time.monotonic``)."""

    def now(self) -> float:
        return time.monotonic()
