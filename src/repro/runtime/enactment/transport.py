"""The transport seam of the enactment engine.

The engine publishes messages and reads delivery statistics through this
interface; it never cares whether delivery is a virtual-time event chain
(:class:`~repro.messaging.simulated.SimulatedBroker`) or a synchronous
in-process callback (:class:`~repro.messaging.broker.InProcessBroker`).
Both built-in broker families already satisfy it — ``Transport`` exists so
that the contract a *new* runtime's transport must honour is written down
in one place.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.messaging.message import Message

__all__ = ["Transport"]


@runtime_checkable
class Transport(Protocol):
    """What the enactment engine requires from a message transport."""

    def publish(self, message: Message) -> None:
        """Publish ``message`` on its topic."""

    def subscribe(self, topic: str, callback: Callable[[Message], None]) -> None:
        """Register ``callback`` for every message published on ``topic``."""

    def published_count(self) -> int:
        """Total messages published so far."""

    def delivered_count(self) -> int:
        """Total messages actually handed to subscribers so far."""

    def replay(self, topic: str, from_offset: int = 0) -> list[Message]:
        """Replay the persisted messages of ``topic`` (persistent only)."""

    @property
    def supports_replay(self) -> bool:
        """Whether the transport keeps a replayable log (Kafka-like)."""
