"""The runtime-agnostic enactment engine.

The paper's central claim is that the *same* decentralised chemistry-driven
protocol enacts workflows regardless of how the service agents are hosted
(Section IV).  This package is that protocol, extracted once and for all:

* :class:`~repro.runtime.enactment.engine.EnactmentEngine` owns the one true
  mapping from :class:`~repro.agents.core.AgentCore` actions
  (``SendResult`` / ``SendAdapt`` / ``StartInvocation`` / ``StatusUpdate``)
  to broker :class:`~repro.messaging.message.Message`\\ s, the invocation
  lifecycle (attempt counting, failure/success stimuli, adaptation
  bookkeeping) and the coordinator wiring;
* :class:`~repro.runtime.enactment.engine.AgentHost` is the
  runtime-agnostic book-keeping record of one hosted agent (runtimes
  subclass it to attach their scheduling state: a virtual-time serial
  queue, a thread and its inbox, an asyncio task and its queue);
* :class:`~repro.runtime.enactment.clock.Clock` and
  :class:`~repro.runtime.enactment.transport.Transport` are the two seams a
  runtime plugs in — virtual vs monotonic time, simulated vs in-process
  broker;
* :class:`~repro.runtime.enactment.report.ReportAssembler` builds the
  :class:`~repro.runtime.results.RunReport` /
  :class:`~repro.runtime.results.TaskOutcome` rows identically for every
  runtime.

A new runtime (async, process-sharded, remote...) is a thin driver: decide
*when and where* stimuli run, and let the engine decide *what happens*.  See
:mod:`repro.runtime.aio` for a complete example in ~100 lines.
"""

from .clock import Clock, MonotonicClock, VirtualClock
from .engine import AgentHost, EnactmentEngine, PreparedInvocation
from .report import ReportAssembler
from .transport import Transport

__all__ = [
    "AgentHost",
    "Clock",
    "EnactmentEngine",
    "MonotonicClock",
    "PreparedInvocation",
    "ReportAssembler",
    "Transport",
    "VirtualClock",
]
