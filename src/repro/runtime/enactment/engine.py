"""The enactment engine: the one decentralised protocol, hosted anywhere.

:class:`EnactmentEngine` is the runtime-agnostic half of every GinFlow
runtime.  It owns:

* the **action dispatch** — the single mapping from the actions an
  :class:`~repro.agents.core.AgentCore` emits to the broker messages,
  adaptation bookkeeping and coordinator updates they imply;
* the **invocation lifecycle** — attempt counting, service resolution,
  invocation context assembly and the failure/success stimuli fed back to
  the chemistry (service-level failed attempts are counted per task);
* the **coordinator wiring** — STATUS routing (through the broker, or
  directly when status updates are disabled by the cost model) and
  completion detection, including fail-fast completion on terminal
  exit-task errors;
* the **recovery protocol** — rebuilding a crashed agent from the
  transport's replayable log (Section IV-B).

A runtime driver owns only scheduling: *when and where* each stimulus runs
(virtual-time callbacks, threads, asyncio tasks) and how a started
invocation's completion is waited for.  The driver hands the engine an
``invoker`` callable for exactly that purpose: the engine prepares the
invocation (bookkeeping included) and the driver decides how to execute it
and when to feed the outcome back through :meth:`EnactmentEngine.complete_invocation`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from repro.agents import Coordinator, SendAdapt, SendResult, StartInvocation, StatusUpdate
from repro.agents.actions import Action
from repro.agents.core import AgentCore
from repro.agents.recovery import rebuild_agent
from repro.hoclflow.translator import TaskEncoding, WorkflowEncoding
from repro.messaging import Message, MessageKind, STATUS_TOPIC, adapt_count, agent_topic
from repro.obs import Observability
from repro.obs.tracer import Tracer
from repro.services import InvocationContext, InvocationResult, Service

from ..results import RunReport
from .clock import Clock
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import GinFlowConfig

__all__ = ["AgentHost", "PreparedInvocation", "EnactmentEngine"]


@dataclass
class AgentHost:
    """Runtime-agnostic book-keeping of one hosted service agent.

    Runtimes subclass this record to attach their scheduling state (a
    virtual-time serial queue, a thread and its inbox, an asyncio task and
    its queue); the engine only ever touches the fields below.
    """

    encoding: TaskEncoding
    core: AgentCore
    node: str = "localhost"
    alive: bool = True
    incarnation: int = 0
    attempts: int = 0
    failures: int = 0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def name(self) -> str:
        return self.encoding.name


@dataclass
class PreparedInvocation:
    """One service invocation, fully prepared by the engine.

    The hosting runtime decides *how* to execute it (synchronously in the
    agent's thread, scheduled on the virtual clock, awaited in a task) and
    feeds the outcome back through
    :meth:`EnactmentEngine.complete_invocation`.
    """

    host: AgentHost
    service: Service
    parameters: list[Any]
    context: InvocationContext
    #: attached by the engine when tracing is on; every runtime's `invoke`
    #: call then records the invocation span identically
    trace: Tracer | None = None

    def invoke(self) -> InvocationResult:
        """Run the service call itself (pure; no engine bookkeeping).

        Services contract to *return* failures rather than raise, but a
        broken implementation that raises anyway must not kill the hosting
        runtime's worker (thread, asyncio task, simulated callback) with the
        invocation unaccounted — every runtime would hang until timeout with
        no error attributed to the task.  The exception is converted into a
        failed result here so all runtimes inherit the same behaviour.
        """
        trace = self.trace
        started = perf_counter() if trace is not None else 0.0
        try:
            outcome = self.service.invoke(self.parameters, self.context)
        except Exception as exc:  # noqa: BLE001 - converted into a task failure
            outcome = InvocationResult(
                value=None,
                duration=self.context.duration,
                failed=True,
                error=f"{type(exc).__name__}: {exc}",
            )
        if trace is not None:
            trace.span(
                "enactment.invoke",
                self.host.name,
                started,
                perf_counter(),
                service=getattr(self.service, "name", type(self.service).__name__),
                attempt=self.context.attempt,
                failed=outcome.failed,
            )
        return outcome


class EnactmentEngine:
    """The shared enactment protocol, parameterised by clock and transport."""

    def __init__(
        self,
        *,
        config: "GinFlowConfig",
        encoding: WorkflowEncoding,
        clock: Clock,
        transport: Transport,
        invoker: Callable[[AgentHost, PreparedInvocation], None],
        on_complete: Callable[[float], None] | None = None,
        report: RunReport | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config
        self.encoding = encoding
        self.clock = clock
        self.transport = transport
        self._invoker = invoker
        self.registry = config.build_registry()
        self.report = report if report is not None else RunReport()
        self.obs = obs if obs is not None else config.obs
        self._trace = self.obs.active_tracer() if self.obs is not None else None
        self._metrics = self.obs.metrics if self.obs is not None else None
        # Tasks whose failure triggers an adaptation must not fail-fast the
        # run: their ERROR is the *start* of the recovery, not the end.
        adaptable = {name for name, task in encoding.tasks.items() if task.trigger_plans}
        self.coordinator = Coordinator(
            exit_tasks=encoding.exit_tasks(),
            on_complete=on_complete,
            adaptable_tasks=adaptable,
        )
        self.hosts: dict[str, AgentHost] = {}
        self.triggered_adaptations: set[str] = set()
        # Shared-state guard for real-concurrency runtimes; uncontended (and
        # harmless) under the single-threaded simulated/asyncio drivers.
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- hosts
    def add_host(self, host: AgentHost) -> AgentHost:
        """Register one hosted agent (insertion order is report order)."""
        self.hosts[host.name] = host
        return host

    def subscribe_status(self) -> None:
        """Route the shared-space STATUS topic into the coordinator."""
        self.transport.subscribe(STATUS_TOPIC, self.on_status_message)

    # -------------------------------------------------------------- stimuli
    def boot(self, host: AgentHost) -> list[Action]:
        """First reduction after deployment: stamp the start, boot the core."""
        host.started_at = self.clock.now()
        return host.core.boot()

    def deliver(self, host: AgentHost, message: Message) -> list[Action]:
        """The one mapping from an incoming message to a core stimulus."""
        if message.kind == MessageKind.RESULT:
            return host.core.receive_result(message.sender, message.payload)
        if message.kind == MessageKind.ADAPT:
            # shared coercion: MUST match what recovery.replay_messages
            # applies, or a replayed agent diverges from the one it replaces
            return host.core.receive_adapt(adapt_count(message.payload))
        return []

    def complete_invocation(self, host: AgentHost, outcome: InvocationResult) -> list[Action]:
        """Feed a finished invocation back into the chemistry."""
        host.finished_at = self.clock.now()
        if outcome.failed:
            host.failures += 1
            if self._metrics is not None:
                self._metrics.counter("enactment.invocation_failures").inc()
            return host.core.invocation_failed(outcome.error)
        return host.core.invocation_succeeded(outcome.value)

    # ------------------------------------------------------------- dispatch
    def dispatch(self, host: AgentHost, actions: list[Action]) -> None:
        """Execute the actions one reduction emitted (the protocol's I/O)."""
        costs = self.config.costs
        for action in actions:
            if self._trace is not None:
                self._trace.event(
                    "enactment.dispatch", host.name, action=type(action).__name__
                )
            if self._metrics is not None:
                self._metrics.counter("enactment.actions").inc()
            if isinstance(action, SendResult):
                self.transport.publish(
                    Message(
                        topic=agent_topic(action.destination),
                        kind=MessageKind.RESULT,
                        sender=host.name,
                        recipient=action.destination,
                        payload=action.value,
                        size_bytes=costs.result_message_size,
                    )
                )
            elif isinstance(action, SendAdapt):
                if action.adaptation:
                    with self._lock:
                        self.triggered_adaptations.add(action.adaptation)
                self.transport.publish(
                    Message(
                        topic=agent_topic(action.destination),
                        kind=MessageKind.ADAPT,
                        sender=host.name,
                        recipient=action.destination,
                        payload=action.count,
                        size_bytes=costs.status_update_size,
                    )
                )
            elif isinstance(action, StartInvocation):
                self._start_invocation(host, action)
            elif isinstance(action, StatusUpdate):
                if costs.status_update_enabled:
                    self.transport.publish(
                        Message(
                            topic=STATUS_TOPIC,
                            kind=MessageKind.STATUS,
                            sender=host.name,
                            recipient="coordinator",
                            payload=host.core.status(),
                            size_bytes=costs.status_update_size,
                        )
                    )
                else:
                    # keep completion detection working without broker load
                    self.record_status(host.name, host.core.status())

    def _start_invocation(self, host: AgentHost, action: StartInvocation) -> None:
        host.attempts += 1
        prepared = PreparedInvocation(
            host=host,
            service=self.registry.resolve(action.service),
            parameters=list(action.parameters),
            context=InvocationContext(
                task_name=host.name,
                duration=host.encoding.duration,
                metadata=host.encoding.metadata,
                attempt=host.attempts,
            ),
            trace=self._trace,
        )
        if self._metrics is not None:
            self._metrics.counter("enactment.invocations").inc()
        self._invoker(host, prepared)

    # --------------------------------------------------------------- status
    def on_status_message(self, message: Message) -> None:
        """STATUS-topic subscriber: fold agent updates into the coordinator."""
        if isinstance(message.payload, dict):
            self.record_status(message.sender, message.payload)

    def record_status(self, task: str, status: dict[str, Any]) -> None:
        """Apply one status payload at the current clock time (thread-safe)."""
        if self._trace is not None:
            self._trace.event("enactment.status", task, state=status.get("state"))
        if self._metrics is not None:
            self._metrics.counter("enactment.status_updates").inc()
        with self._lock:
            self.coordinator.record_status(task, status, time=self.clock.now())

    # ------------------------------------------------------------- recovery
    def recover(self, host: AgentHost) -> tuple[list[Action], int]:
        """Rebuild a crashed agent from the transport's log (Section IV-B).

        Returns the actions produced by the boot-and-replay (the driver
        re-executes them — duplicates are harmless by construction) and the
        number of replayed messages (for the driver's cost accounting).
        """
        logged = self.transport.replay(agent_topic(host.name)) if self.transport.supports_replay else []
        core, actions = rebuild_agent(host.encoding, logged)
        host.core = core
        host.alive = True
        return actions, len(logged)
