"""Run configuration of the GinFlow engine.

A :class:`GinFlowConfig` bundles every knob a run needs: execution mode,
executor, messaging middleware, cluster preset and size, failure injection,
cost model and seed.  The defaults reproduce the paper's common setup
(distributed simulation over the 25-node Grid'5000 preset, ActiveMQ, no
failures).

Every *named* choice (``mode``, ``executor``, ``broker``,
``cluster_preset``) resolves through the pluggable backend registry
(:mod:`repro.runtime.backends`): registering a new backend through the
public API makes it immediately valid here, in :meth:`GinFlow.run
<repro.runtime.ginflow.GinFlow.run>` and in the CLI, without editing any
engine file.  The historical ``EXECUTION_MODES`` / ``EXECUTORS`` /
``BROKERS`` tuples are kept as *derived views* of the registry (module-level
``__getattr__``), so they can never drift from it.

The configuration is a frozen dataclass: it validates once on construction
and can only be varied through :meth:`GinFlowConfig.with_overrides`, which
returns a new validated instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.cluster.network import NetworkModel
from repro.cluster.node import Cluster
from repro.obs import Observability
from repro.services import NO_FAILURES, FailureModel, ServiceRegistry

from . import backends
from .costs import CostModel

__all__ = ["GinFlowConfig", "EXECUTION_MODES", "EXECUTORS", "BROKERS"]


@dataclass(frozen=True)
class GinFlowConfig:
    """Configuration of one GinFlow run (immutable; validated on creation).

    Attributes
    ----------
    mode:
        Execution mode, resolved against the runtime backends
        (``"simulated"``, ``"threaded"``, ``"centralized"``, or any
        registered third-party runtime).
    executor:
        Distributed executor name (``"ssh"``, ``"mesos"``, ...;
        distributed modes only).
    broker:
        Messaging middleware name (``"activemq"``, ``"kafka"``, ...).
    reduction:
        Reduction strategy name (``"serial"``, ``"batch"``, ``"parallel"``,
        or any registered third-party strategy).  ``serial`` is the
        reference one-reaction-per-pass semantics; ``batch`` applies every
        disjoint applicable match per pass; ``parallel`` adds concurrent
        reduction of independent shards (per-agent solutions, centralised
        top-level sub-solutions).  All strategies reach the same final
        solution on GinFlow's confluent programs.
    cluster_preset:
        Cluster preset name used when no explicit ``cluster`` is given
        (``"grid5000"`` by default).
    nodes:
        Number of cluster nodes to use (interpreted by the preset).
    cluster:
        Explicit cluster (overrides ``cluster_preset``/``nodes``).
    network:
        Network model (defaults to the Grid'5000 1 Gbps preset).
    failures:
        Failure-injection model (requires a persistent broker when enabled).
    costs:
        Cost model for the simulated runtime.
    seed:
        Root seed of every random stream of the run.
    registry:
        Service registry resolving task services.
    threaded_time_scale:
        In threaded mode, nominal task durations are multiplied by this
        factor before sleeping (0 disables sleeping entirely).
    collect_timeline:
        Whether to keep the per-task event timeline in the report.
    max_virtual_time:
        Safety horizon of the simulation clock.
    obs:
        Optional :class:`~repro.obs.Observability` bundle (tracer +
        metrics registry); ``None`` — the default — is the zero-overhead
        off state.  When present, every runtime threads the tracer into
        its agents, reduction engines, broker and executor, and the
        metrics snapshot lands in ``RunReport.extra["metrics"]``.
    """

    mode: str = "simulated"
    executor: str = "ssh"
    broker: str = "activemq"
    reduction: str = "serial"
    cluster_preset: str = "grid5000"
    nodes: int = 25
    cluster: Cluster | None = None
    network: NetworkModel | None = None
    failures: FailureModel = NO_FAILURES
    costs: CostModel = field(default_factory=CostModel)
    seed: int = 1
    registry: ServiceRegistry | None = None
    threaded_time_scale: float = 0.0
    collect_timeline: bool = True
    max_virtual_time: float = 1_000_000.0
    obs: Observability | None = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the configuration coherence; raise ``ValueError`` otherwise."""
        backends.ensure_builtin_backends()
        backends.registry.get("runtime", self.mode)
        backends.registry.get("executor", self.executor)
        backends.registry.get("broker", self.broker)
        backends.registry.get("reduction", self.reduction)
        if self.cluster is None:
            backends.registry.get("cluster", self.cluster_preset)
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.failures.enabled and not self.broker_profile().persistent:
            raise ValueError(
                "failure injection requires a persistent broker (e.g. Kafka): the recovery "
                "mechanism replays the messages logged by the broker (Section IV-B)"
            )
        if self.threaded_time_scale < 0:
            raise ValueError("threaded_time_scale must be >= 0")

    # -------------------------------------------------------------- builders
    def runtime_backend(self) -> backends.Backend:
        """The runtime backend selected by ``mode``."""
        return backends.get_backend("runtime", self.mode)

    def build_cluster(self) -> Cluster:
        """The cluster to run on (explicit cluster, or the named preset)."""
        if self.cluster is not None:
            return self.cluster
        return backends.get_backend("cluster", self.cluster_preset).build(self)

    def build_network(self) -> NetworkModel:
        """The network model: explicit, the cluster preset's ``network``
        capability (a model or a ``(config) -> NetworkModel`` factory), or
        the Grid'5000 default."""
        if self.network is not None:
            return self.network
        if self.cluster is None:
            network = backends.get_backend("cluster", self.cluster_preset).capability("network")
            if callable(network):
                return network(self)
            if network is not None:
                return network
        from repro.cluster.grid5000 import grid5000_network

        return grid5000_network()

    def build_executor(self) -> Any:
        """The distributed executor instance (from the executor backends)."""
        return backends.get_backend("executor", self.executor).build(self)

    def broker_profile(self) -> Any:
        """The broker profile selected by ``broker`` (from the broker backends)."""
        return backends.get_backend("broker", self.broker).build(self)

    def reduction_policy(self) -> Any:
        """The resolved reduction policy selected by ``reduction``."""
        return backends.get_backend("reduction", self.reduction).build(self)

    def build_registry(self) -> ServiceRegistry:
        """The service registry (a fresh default one when none was given)."""
        return self.registry if self.registry is not None else ServiceRegistry()

    # --------------------------------------------------------------- utility
    def with_overrides(self, **overrides: Any) -> "GinFlowConfig":
        """A validated copy of the configuration with some attributes replaced."""
        unknown = set(overrides) - {spec.name for spec in fields(self)}
        if unknown:
            raise ValueError(f"unknown configuration field(s): {sorted(unknown)}")
        # replace() re-runs __post_init__, which validates the copy.
        return replace(self, **overrides)


def __getattr__(name: str) -> Any:
    """Derived views of the registry, kept for backwards compatibility."""
    view = backends.DERIVED_VIEWS.get(name)
    if view is not None:
        return view()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
