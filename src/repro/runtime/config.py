"""Run configuration of the GinFlow engine.

A :class:`GinFlowConfig` bundles every knob a run needs: execution mode,
executor, messaging middleware, cluster size, failure injection, cost model
and seed.  The defaults reproduce the paper's common setup (distributed
simulation over the 25-node Grid'5000 preset, ActiveMQ, no failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.cluster import Cluster, NetworkModel, grid5000_cluster, grid5000_network
from repro.executors import DistributedExecutor, MesosExecutor, SSHExecutor
from repro.services import NO_FAILURES, FailureModel, ServiceRegistry

from .costs import CostModel

__all__ = ["GinFlowConfig", "EXECUTION_MODES", "EXECUTORS", "BROKERS"]

#: Supported execution modes.
EXECUTION_MODES = ("simulated", "threaded", "centralized")

#: Supported distributed executors.
EXECUTORS = ("ssh", "mesos")

#: Supported messaging middlewares.
BROKERS = ("activemq", "kafka")


@dataclass
class GinFlowConfig:
    """Configuration of one GinFlow run.

    Attributes
    ----------
    mode:
        ``"simulated"`` (virtual-time distributed run, the default),
        ``"threaded"`` (real threads on the local machine) or
        ``"centralized"`` (single interpreter).
    executor:
        ``"ssh"`` or ``"mesos"`` (distributed modes only).
    broker:
        ``"activemq"`` or ``"kafka"``.
    nodes:
        Number of cluster nodes to use (taken from the Grid'5000 preset when
        no explicit ``cluster`` is given).
    cluster:
        Explicit cluster (overrides ``nodes``).
    network:
        Network model (defaults to the Grid'5000 1 Gbps preset).
    failures:
        Failure-injection model (requires a persistent broker when enabled).
    costs:
        Cost model for the simulated runtime.
    seed:
        Root seed of every random stream of the run.
    registry:
        Service registry resolving task services.
    threaded_time_scale:
        In threaded mode, nominal task durations are multiplied by this
        factor before sleeping (0 disables sleeping entirely).
    collect_timeline:
        Whether to keep the per-task event timeline in the report.
    max_virtual_time:
        Safety horizon of the simulation clock.
    """

    mode: str = "simulated"
    executor: str = "ssh"
    broker: str = "activemq"
    nodes: int = 25
    cluster: Cluster | None = None
    network: NetworkModel | None = None
    failures: FailureModel = NO_FAILURES
    costs: CostModel = field(default_factory=CostModel)
    seed: int = 1
    registry: ServiceRegistry | None = None
    threaded_time_scale: float = 0.0
    collect_timeline: bool = True
    max_virtual_time: float = 1_000_000.0

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the configuration coherence; raise ``ValueError`` otherwise."""
        if self.mode not in EXECUTION_MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {EXECUTION_MODES}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; expected one of {EXECUTORS}")
        if self.broker not in BROKERS:
            raise ValueError(f"unknown broker {self.broker!r}; expected one of {BROKERS}")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.failures.enabled and not self.broker_profile().persistent:
            raise ValueError(
                "failure injection requires a persistent broker (Kafka): the recovery "
                "mechanism replays the messages logged by the broker (Section IV-B)"
            )
        if self.threaded_time_scale < 0:
            raise ValueError("threaded_time_scale must be >= 0")

    # -------------------------------------------------------------- builders
    def build_cluster(self) -> Cluster:
        """The cluster to run on (explicit cluster, or Grid'5000 preset subset)."""
        if self.cluster is not None:
            return self.cluster
        return grid5000_cluster(self.nodes)

    def build_network(self) -> NetworkModel:
        """The network model (explicit or Grid'5000 preset)."""
        return self.network if self.network is not None else grid5000_network()

    def build_executor(self) -> DistributedExecutor:
        """The distributed executor instance."""
        if self.executor == "ssh":
            return SSHExecutor()
        return MesosExecutor()

    def broker_profile(self):
        """The broker profile selected by ``broker`` (from the cost model)."""
        return self.costs.broker_profile(self.broker)

    def build_registry(self) -> ServiceRegistry:
        """The service registry (a fresh default one when none was given)."""
        return self.registry if self.registry is not None else ServiceRegistry()

    # --------------------------------------------------------------- utility
    def with_overrides(self, **overrides: Any) -> "GinFlowConfig":
        """A copy of the configuration with some attributes replaced."""
        config = replace(self, **overrides)
        config.validate()
        return config
