"""Benchmark reproducing Fig. 15 — Montage workload characterisation.

Checks that the generated Montage-like workflow matches the published
characterisation: 118 tasks, a 108-task parallel stage, the three duration
classes, a 60–310 s projection duration range, and ≈ 95 % of services longer
than 15 s.
"""

from __future__ import annotations

from repro.bench import format_fig15, run_fig15
from repro.workflow import montage_workflow


def test_fig15_montage_characterisation(benchmark):
    """Reproduce the Fig. 15 workload characterisation."""
    data = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    print()
    print(format_fig15(data))

    assert data["task_count"] == 118
    assert data["max_parallelism"] == 108

    classes = data["duration_classes"]
    assert set(classes) == {"T<20", "20<T<60", "60<T"}
    # the long class dominates (the 108 projections plus the co-addition)
    assert classes["60<T"] >= 100
    assert classes["T<20"] >= 1
    assert classes["20<T<60"] >= 1

    # projection durations span the published 60-310 s range
    assert data["duration_min"] >= 5.0
    assert 300.0 <= data["duration_max"] <= 310.0

    # ~95% of the services run longer than 15 s (paper, Section V-D)
    workflow = montage_workflow()
    longer_than_15 = sum(1 for task in workflow if task.duration > 15.0)
    assert longer_than_15 / len(workflow) >= 0.9

    # no-failure critical path close to the paper's 484 s baseline
    assert 400.0 <= data["critical_path"] <= 550.0

    # the CDF is monotonically non-decreasing and ends at 1.0
    fractions = [point["fraction"] for point in data["cdf"]]
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    assert abs(fractions[-1] - 1.0) < 1e-9
