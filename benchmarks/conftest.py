"""Benchmark-suite configuration (mirrors the repository conftest)."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
