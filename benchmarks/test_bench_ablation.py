"""Ablation benchmarks: HOCL matching cost and status-update traffic.

These back the design discussion of DESIGN.md rather than a specific figure:
(a) the pattern-matching cost grows with the solution size (the effect the
paper cites to explain Fig. 12's growth), and (b) shared-space status updates
account for a visible but bounded share of the coordination traffic.
"""

from __future__ import annotations

from repro.bench import (
    format_ablation,
    run_matching_cost_ablation,
    run_status_update_ablation,
)


def test_ablation_matching_cost(benchmark):
    """HOCL reduction work grows with the multiset size."""
    rows = benchmark.pedantic(run_matching_cost_ablation, rounds=1, iterations=1)
    status_rows = run_status_update_ablation()
    print()
    print(format_ablation(rows, status_rows))

    sizes = [row["solution_size"] for row in rows]
    attempts = [row["match_attempts"] for row in rows]
    reactions = [row["reactions"] for row in rows]
    assert sizes == sorted(sizes)
    assert attempts == sorted(attempts)
    # getMax reduces n integers with n-1 reactions
    assert all(reaction == size - 1 for reaction, size in zip(reactions, sizes))
    # every run ends with exactly the maximum plus the rule
    assert all(row["final_size"] == 2 for row in rows)


def test_ablation_status_updates(benchmark):
    """Disabling shared-space status updates reduces traffic but not results."""
    rows = benchmark.pedantic(run_status_update_ablation, rounds=1, iterations=1)
    with_updates = next(row for row in rows if row["status_updates"])
    without_updates = next(row for row in rows if not row["status_updates"])
    assert with_updates["succeeded"] and without_updates["succeeded"]
    assert with_updates["messages"] > without_updates["messages"]
    assert with_updates["execution_time"] >= without_updates["execution_time"]
