"""Observability overhead and identity gates for the reduction engine.

Two claims back the ``repro.obs`` zero-overhead contract at benchmark scale:

* **Identity** — an engine built with a :class:`NullTracer` (or a
  :class:`RecordingTracer`) reduces to exactly the same solution with
  exactly the same reaction history as an untraced engine, and the recorded
  reduction-phase spans reconcile with ``ReductionReport.timings`` to float
  precision (the invariant ``ginflow trace summarize`` relies on);
* **Overhead** — with tracing off, the instrumented engine's wall clock on
  the montage scenario stays within 2% (plus a fixed scheduler-noise slack)
  of the uninstrumented-equivalent baseline measured in the same process.
  Both sides run the *same* binary — :func:`repro.obs.tracer.active`
  normalises a ``NullTracer`` to ``None``, so the comparison measures the
  per-seam ``if trace is not None`` guards, which is all a tracing-off run
  ever pays.

The quick CI profile runs montage-100; ``GINFLOW_FULL=1`` runs the
Section IV-C sized montage-500 (the ISSUE acceptance scale).
"""

from __future__ import annotations

import math
import os
from time import perf_counter

from repro.analysis.obs_checks import reduction_phase_totals
from repro.hocl import ReductionEngine, default_registry
from repro.hoclflow import encode_workflow
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.obs import NullTracer, RecordingTracer
from repro.services import InvocationContext, ServiceRegistry
from repro.workflow.montage import montage_workflow

#: Relative overhead ceiling for tracing-off runs (the ISSUE's 2% gate).
_OVERHEAD_TOLERANCE = 0.02

#: Absolute seconds absorbing scheduler noise on sub-second scenarios.
_OVERHEAD_SLACK = 0.05


def _full_profile() -> bool:
    return bool(os.environ.get("GINFLOW_FULL"))


def _montage():
    projections = 490 if _full_profile() else 90
    return montage_workflow(projections=projections, duration_scale=0.01)


def _reduce(workflow, trace=None):
    """Centralised serial reduction; returns (report, wall_seconds, solution)."""
    encoding = encode_workflow(workflow)
    solution = encoding.to_multiset()
    registry = ServiceRegistry()
    attempts: dict[str, int] = {}

    def invoke(task_name: str, service_name: str, parameters: list) -> object:
        attempts[task_name] = attempts.get(task_name, 0) + 1
        task = encoding.tasks[task_name]
        context = InvocationContext(
            task_name=task_name, duration=task.duration, metadata=task.metadata,
            attempt=attempts[task_name],
        )
        outcome = registry.resolve(service_name).invoke(list(parameters), context)
        if outcome.failed:
            raise RuntimeError(outcome.error or "invocation failed")
        return outcome.value

    externals = default_registry()
    register_workflow_externals(externals, invoke)
    engine = ReductionEngine(
        externals=externals, max_steps=5_000_000, trace=trace, trace_track="centralized"
    )
    start = perf_counter()
    report = engine.reduce(solution)
    wall = perf_counter() - start
    assert report.inert
    return report, wall, solution


def _history(report):
    return [(r.rule, r.depth, r.consumed, r.produced) for r in report.history]


def test_null_tracer_is_reduction_identical():
    """A NullTracer engine reaches the same solution via the same reactions."""
    workflow = montage_workflow(projections=90, duration_scale=0.01)
    plain, _, plain_solution = _reduce(workflow, trace=None)
    nulled, _, nulled_solution = _reduce(workflow, trace=NullTracer())
    assert _history(nulled) == _history(plain)
    assert nulled.rule_fires == plain.rule_fires
    assert nulled.match_attempts == plain.match_attempts
    assert nulled_solution.content_hash() == plain_solution.content_hash()


def test_recording_tracer_is_reduction_identical_and_reconciles():
    """Recording changes nothing, and the spans carry the engine's own timings."""
    workflow = montage_workflow(projections=90, duration_scale=0.01)
    plain, _, plain_solution = _reduce(workflow, trace=None)
    tracer = RecordingTracer()
    traced, _, traced_solution = _reduce(workflow, trace=tracer)
    assert _history(traced) == _history(plain)
    assert traced_solution.content_hash() == plain_solution.content_hash()
    assert tracer.spans, "an active tracer must record the reduction"
    totals = reduction_phase_totals(tuple(tracer.spans))
    for phase in ("match", "rewrite", "patch", "index"):
        assert math.isclose(
            totals[phase], traced.timings.get(phase, 0.0), rel_tol=1e-6, abs_tol=1e-9
        ), f"{phase}: spans {totals[phase]} vs report {traced.timings.get(phase)}"


def test_null_tracer_overhead_within_two_percent():
    """Tracing off costs <= 2% wall on the montage reduction (best of 3).

    The runs interleave (baseline, nulled, baseline, ...) so a mid-test
    machine slowdown hits both sides; the best-of-N comparison discards the
    noisy repetitions the same way ``check_regression.py`` does.
    """
    workflow = _montage()
    baseline_walls = []
    nulled_walls = []
    for _ in range(3):
        _, wall, _ = _reduce(workflow, trace=None)
        baseline_walls.append(wall)
        _, wall, _ = _reduce(workflow, trace=NullTracer())
        nulled_walls.append(wall)
    baseline = min(baseline_walls)
    nulled = min(nulled_walls)
    budget = baseline * (1.0 + _OVERHEAD_TOLERANCE) + _OVERHEAD_SLACK
    assert nulled <= budget, (
        f"tracing-off wall {nulled:.3f}s exceeds the untraced baseline "
        f"{baseline:.3f}s by more than {_OVERHEAD_TOLERANCE:.0%} (+{_OVERHEAD_SLACK}s slack)"
    )
    scale = "montage-500" if _full_profile() else "montage-100"
    print(f"\n{scale} tracing-off overhead: {nulled / baseline - 1.0:+.2%} "
          f"(baseline {baseline:.3f}s, nulled {nulled:.3f}s)")
