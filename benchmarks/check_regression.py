#!/usr/bin/env python
"""CI regression gate for the HOCL reduction benchmarks.

Re-runs a set of scaled-down scenarios (default: ``montage-100-centralized``
plus the two scenario-catalog families, ``cybershake-200-centralized`` and
``sipht-200-centralized``) with the incremental engine and compares each
against the committed ``BENCH_reduction.json``:

* ``match_attempts`` must be **exactly** the committed value — the search is
  deterministic, so any drift is a real behavioural change, machine speed
  notwithstanding;
* ``wall_seconds`` (best of ``--runs`` repetitions) must not exceed the
  committed value by more than the tolerance (default 20%), after
  *calibration*: the naive engine runs the same scenario in the same
  process, and the committed incremental budget is scaled by the measured
  naive wall over the committed naive wall.  A runner that is uniformly
  2× slower doubles both sides, so only a real slowdown of the incremental
  engine relative to the committed artifact trips the gate;
* **batched parity** — the ``batch`` strategy must reach the same final
  solution (content hash) with the same reaction multiset (``rule_fires``)
  as the serial engine, and its ``match_attempts`` must not exceed the
  serial-incremental count on any gated scenario (batching may only shrink
  the match work, never add to it).  When the committed artifact carries
  per-mode rows (schema 3+), the batch wall is gated against its committed
  value under the same calibration and tolerance;
* **rewrite-seconds drift** — when the committed batch row carries a timing
  split (schema 3+), the time the batch run spends rewriting
  (``rewrite`` + ``patch`` seconds — rebuild expansion plus in-place delta
  application) must not exceed the committed split under the same
  calibration, tolerance and slack.  This catches the failure the wall gate
  can absorb: a rule silently losing its delta form falls back to the
  quadratic rebuild path, which on a scaled-down scenario moves the rewrite
  share far more than the total wall.

Gating several structurally distinct scenarios means a data-layer change
that only bites wide fan-ins (cybershake) or fragmented independent regions
(sipht) fails the PR even when the montage chain is unaffected.

Exit status is non-zero on any regression, so the CI benchmarks job fails
the PR.  ``GINFLOW_BENCH_TOLERANCE`` widens the margin for especially noisy
hardware.

Usage::

    python benchmarks/check_regression.py [--scenario NAME ...] [--runs N]

Environment:
    GINFLOW_BENCH_SCENARIO    comma-separated scenario list overriding --scenario
    GINFLOW_BENCH_TOLERANCE   relative wall-clock tolerance (default 0.20)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_bench_reduction import (  # noqa: E402
    _ARTIFACT,
    naive_calibration,
    reduce_scenario,
    reduce_scenario_mode,
)

#: Scenarios gated by default: the montage chain plus one wide-fan-in and one
#: fragmented-fan-in family from the scenario catalog.
DEFAULT_SCENARIOS = (
    "montage-100-centralized",
    "cybershake-200-centralized",
    "sipht-200-centralized",
)


def check_scenario(scenario: str, baseline: dict, runs: int, tolerance: float, slack: float) -> bool:
    """Gate one scenario against its committed row; returns True on pass."""
    incremental_baseline = baseline["incremental"]
    naive_baseline = baseline["naive"]

    best_wall = None
    best_naive_wall = None
    attempts = None
    serial_report = None
    serial_solution = None
    for _ in range(max(1, runs)):
        serial_report, wall, serial_solution = reduce_scenario_mode(scenario, "serial")
        attempts = serial_report.match_attempts
        best_wall = wall if best_wall is None else min(best_wall, wall)
        _naive_report, naive_wall = reduce_scenario(scenario, incremental=False)
        best_naive_wall = (
            naive_wall if best_naive_wall is None else min(best_naive_wall, naive_wall)
        )

    passed = True
    if attempts != incremental_baseline["match_attempts"]:
        print(
            f"FAIL {scenario}: match_attempts {attempts} != committed "
            f"{incremental_baseline['match_attempts']} (deterministic counter changed)"
        )
        passed = False
    # calibrate the committed budget to this machine: the naive engine run
    # here over the committed naive wall measures how fast this hardware is
    calibration = naive_calibration(best_naive_wall, naive_baseline["wall_seconds"])
    budget = incremental_baseline["wall_seconds"] * calibration * (1.0 + tolerance) + max(0.0, slack)
    if best_wall > budget:
        print(
            f"FAIL {scenario}: wall {best_wall:.3f}s exceeds the committed "
            f"{incremental_baseline['wall_seconds']}s by more than {tolerance:.0%} after "
            f"calibration x{calibration:.2f} + {slack}s slack "
            f"(budget {budget:.3f}s)"
        )
        passed = False
    if passed:
        print(
            f"OK {scenario}: wall {best_wall:.3f}s (committed "
            f"{incremental_baseline['wall_seconds']}s, calibration x{calibration:.2f}, "
            f"budget {budget:.3f}s), match_attempts {attempts} (unchanged)"
        )

    # -------------------------------------------------- batched-strategy gate
    batch_report, batch_wall, batch_solution = reduce_scenario_mode(scenario, "batch")
    if batch_solution.content_hash() != serial_solution.content_hash():
        print(f"FAIL {scenario}: batch strategy reached a different final solution than serial")
        passed = False
    if batch_report.rule_fires != serial_report.rule_fires:
        print(f"FAIL {scenario}: batch strategy's reaction multiset diverged from serial")
        passed = False
    if batch_report.match_attempts > attempts:
        print(
            f"FAIL {scenario}: batched match_attempts {batch_report.match_attempts} exceed "
            f"serial-incremental {attempts} (batching must only shrink match work)"
        )
        passed = False
    batch_baseline = baseline.get("modes", {}).get("batch")
    if batch_baseline is not None:
        batch_budget = batch_baseline["wall_seconds"] * calibration * (1.0 + tolerance) + max(0.0, slack)
        if batch_wall > batch_budget:
            print(
                f"FAIL {scenario}: batch wall {batch_wall:.3f}s exceeds the committed "
                f"{batch_baseline['wall_seconds']}s by more than {tolerance:.0%} after "
                f"calibration x{calibration:.2f} + {slack}s slack (budget {batch_budget:.3f}s)"
            )
            passed = False
        committed_timings = batch_baseline.get("timings")
        if committed_timings is not None:
            # rewrite-seconds drift gate: rebuild expansion + delta patching
            # must stay within the committed split — a rule losing its delta
            # form shows up here long before it moves the total wall.
            committed_rewrite = committed_timings.get("rewrite", 0.0) + committed_timings.get("patch", 0.0)
            measured_rewrite = batch_report.timings.get("rewrite", 0.0) + batch_report.timings.get("patch", 0.0)
            rewrite_budget = committed_rewrite * calibration * (1.0 + tolerance) + max(0.0, slack)
            if measured_rewrite > rewrite_budget:
                print(
                    f"FAIL {scenario}: batch rewrite+patch seconds {measured_rewrite:.3f}s "
                    f"exceed the committed {committed_rewrite:.3f}s by more than "
                    f"{tolerance:.0%} after calibration x{calibration:.2f} + {slack}s "
                    f"slack (budget {rewrite_budget:.3f}s) — did a rule lose its delta form?"
                )
                passed = False
    if passed:
        print(
            f"OK {scenario}: batch parity holds — wall {batch_wall:.3f}s, "
            f"match_attempts {batch_report.match_attempts} <= serial {attempts}, "
            f"batches {batch_report.batches}"
        )
    return passed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="scenario name present in the committed BENCH_reduction.json "
        f"(repeatable; default: {', '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="repetitions; the best wall time is compared"
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.1,
        help="absolute seconds added to the budget (absorbs scheduler noise on "
        "sub-second scenarios; a real regression of the scaled scenario is "
        "a multiple of this)",
    )
    args = parser.parse_args()
    tolerance = float(os.environ.get("GINFLOW_BENCH_TOLERANCE", "0.20"))
    env_scenarios = os.environ.get("GINFLOW_BENCH_SCENARIO")
    if args.scenario:  # an explicit flag always wins over the environment
        scenarios = list(args.scenario)
    elif env_scenarios:
        scenarios = [name.strip() for name in env_scenarios.split(",") if name.strip()]
    else:
        scenarios = list(DEFAULT_SCENARIOS)

    if not _ARTIFACT.exists():
        print(f"no committed {_ARTIFACT.name}; nothing to compare against")
        return 1
    committed = json.loads(_ARTIFACT.read_text())
    committed_scenarios = committed.get("scenarios", {})

    failed = False
    for scenario in scenarios:
        if scenario not in committed_scenarios:
            print(f"scenario {scenario!r} not in committed {_ARTIFACT.name}")
            failed = True
            continue
        if not check_scenario(
            scenario, committed_scenarios[scenario], args.runs, tolerance, args.slack
        ):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
