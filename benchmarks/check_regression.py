#!/usr/bin/env python
"""CI regression gate for the HOCL reduction benchmarks.

Re-runs a scaled-down scenario (default: ``montage-100-centralized``) with
the incremental engine and compares it against the committed
``BENCH_reduction.json``:

* ``match_attempts`` must be **exactly** the committed value — the search is
  deterministic, so any drift is a real behavioural change, machine speed
  notwithstanding;
* ``wall_seconds`` (best of ``--runs`` repetitions) must not exceed the
  committed value by more than the tolerance (default 20%), after
  *calibration*: the naive engine runs the same scenario in the same
  process, and the committed incremental budget is scaled by the measured
  naive wall over the committed naive wall.  A runner that is uniformly
  2× slower doubles both sides, so only a real slowdown of the incremental
  engine relative to the committed artifact trips the gate.

Exit status is non-zero on regression, so the CI benchmarks job fails the
PR.  ``GINFLOW_BENCH_TOLERANCE`` widens the margin for especially noisy
hardware.

Usage::

    python benchmarks/check_regression.py [--scenario NAME] [--runs N]

Environment:
    GINFLOW_BENCH_SCENARIO    overrides --scenario
    GINFLOW_BENCH_TOLERANCE   relative wall-clock tolerance (default 0.20)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_bench_reduction import _ARTIFACT, naive_calibration, reduce_scenario  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default=os.environ.get("GINFLOW_BENCH_SCENARIO", "montage-100-centralized"),
        help="scenario name present in the committed BENCH_reduction.json",
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="repetitions; the best wall time is compared"
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.1,
        help="absolute seconds added to the budget (absorbs scheduler noise on "
        "sub-second scenarios; a real regression of the scaled scenario is "
        "a multiple of this)",
    )
    args = parser.parse_args()
    tolerance = float(os.environ.get("GINFLOW_BENCH_TOLERANCE", "0.20"))

    if not _ARTIFACT.exists():
        print(f"no committed {_ARTIFACT.name}; nothing to compare against")
        return 1
    committed = json.loads(_ARTIFACT.read_text())
    scenarios = committed.get("scenarios", {})
    if args.scenario not in scenarios:
        print(f"scenario {args.scenario!r} not in committed {_ARTIFACT.name}")
        return 1
    baseline = scenarios[args.scenario]["incremental"]
    naive_baseline = scenarios[args.scenario]["naive"]

    best_wall = None
    best_naive_wall = None
    attempts = None
    for _ in range(max(1, args.runs)):
        report, wall = reduce_scenario(args.scenario, incremental=True)
        attempts = report.match_attempts
        best_wall = wall if best_wall is None else min(best_wall, wall)
        _naive_report, naive_wall = reduce_scenario(args.scenario, incremental=False)
        best_naive_wall = (
            naive_wall if best_naive_wall is None else min(best_naive_wall, naive_wall)
        )

    failed = False
    if attempts != baseline["match_attempts"]:
        print(
            f"FAIL {args.scenario}: match_attempts {attempts} != committed "
            f"{baseline['match_attempts']} (deterministic counter changed)"
        )
        failed = True
    # calibrate the committed budget to this machine: the naive engine run
    # here over the committed naive wall measures how fast this hardware is
    calibration = naive_calibration(best_naive_wall, naive_baseline["wall_seconds"])
    budget = baseline["wall_seconds"] * calibration * (1.0 + tolerance) + max(0.0, args.slack)
    if best_wall > budget:
        print(
            f"FAIL {args.scenario}: wall {best_wall:.3f}s exceeds the committed "
            f"{baseline['wall_seconds']}s by more than {tolerance:.0%} after "
            f"calibration x{calibration:.2f} + {args.slack}s slack "
            f"(budget {budget:.3f}s)"
        )
        failed = True
    if not failed:
        print(
            f"OK {args.scenario}: wall {best_wall:.3f}s (committed "
            f"{baseline['wall_seconds']}s, calibration x{calibration:.2f}, "
            f"budget {budget:.3f}s), match_attempts {attempts} (unchanged)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
