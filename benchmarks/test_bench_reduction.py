"""Benchmark of the incremental HOCL reduction engine.

Two claims are checked and published as ``BENCH_reduction.json``:

* **Equivalence** — the incremental engine (inertness caching + head-symbol
  indexing) produces a :attr:`ReductionReport.history` identical to the
  naive engine's on a representative workflow reduction;
* **Speedup** — on a 500-task Montage-style DAG reduced by one centralised
  interpreter (the paper's Section IV-C baseline, the worst case for
  re-reduction), the incremental engine performs at least 5× fewer match
  attempts than the naive re-reduce-everything engine.

The JSON artifact gives the perf trajectory a baseline: CI uploads it on
every build, so regressions in ``match_attempts`` (deterministic) or
wall-clock (indicative) are visible across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.hocl import ReductionEngine, default_registry
from repro.hoclflow import encode_workflow
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.services import InvocationContext, ServiceRegistry
from repro.workflow.montage import montage_workflow

#: Where the benchmark numbers are published (repository root).
_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_reduction.json"

#: Montage projection-stage width giving a 500-task workflow (490 + 10 fixed).
_LARGE_PROJECTIONS = 490


def _reduce_montage(projections: int, incremental: bool):
    """Centralised reduction of a Montage-style DAG; returns (report, seconds)."""
    workflow = montage_workflow(projections=projections, duration_scale=0.01)
    encoding = encode_workflow(workflow)
    solution = encoding.to_multiset()
    registry = ServiceRegistry()
    attempts: dict[str, int] = {}

    def invoke(task_name: str, service_name: str, parameters: list) -> object:
        attempts[task_name] = attempts.get(task_name, 0) + 1
        task = encoding.tasks[task_name]
        context = InvocationContext(
            task_name=task_name, duration=task.duration, metadata=task.metadata,
            attempt=attempts[task_name],
        )
        outcome = registry.resolve(service_name).invoke(list(parameters), context)
        if outcome.failed:
            raise RuntimeError(outcome.error or "invocation failed")
        return outcome.value

    externals = default_registry()
    register_workflow_externals(externals, invoke)
    engine = ReductionEngine(
        externals=externals, max_steps=5_000_000, incremental=incremental
    )
    start = time.perf_counter()
    report = engine.reduce(solution)
    elapsed = time.perf_counter() - start
    assert report.inert
    return report, elapsed


def _trace(report):
    return [(r.rule, r.depth, r.consumed, r.produced) for r in report.history]


def test_reduction_micro_benchmark(benchmark):
    """Micro-benchmark: one 128-task reduction with the incremental engine."""
    report = benchmark.pedantic(
        lambda: _reduce_montage(118, incremental=True)[0], rounds=1, iterations=1
    )
    assert report.reactions > 0


def test_trace_equivalence_small():
    """Incremental and naive engines agree reaction-for-reaction."""
    incremental, _ = _reduce_montage(20, incremental=True)
    naive, _ = _reduce_montage(20, incremental=False)
    assert _trace(incremental) == _trace(naive)
    assert incremental.reactions == naive.reactions
    assert incremental.match_attempts < naive.match_attempts


def test_montage_500_speedup_and_artifact():
    """500-task Montage: ≥5× fewer match attempts, identical trace; publish."""
    incremental, seconds_incremental = _reduce_montage(_LARGE_PROJECTIONS, incremental=True)
    naive, seconds_naive = _reduce_montage(_LARGE_PROJECTIONS, incremental=False)

    assert _trace(incremental) == _trace(naive)
    attempts_speedup = naive.match_attempts / max(1, incremental.match_attempts)
    assert attempts_speedup >= 5.0, (
        f"expected >=5x fewer match attempts, got {attempts_speedup:.1f}x "
        f"({naive.match_attempts} -> {incremental.match_attempts})"
    )

    payload = {
        "benchmark": "hocl-reduction",
        "scenario": f"montage-{_LARGE_PROJECTIONS + 10}-task-centralized",
        "reactions": incremental.reactions,
        "incremental": {
            "match_attempts": incremental.match_attempts,
            "wall_seconds": round(seconds_incremental, 3),
        },
        "naive": {
            "match_attempts": naive.match_attempts,
            "wall_seconds": round(seconds_naive, 3),
        },
        "speedup": {
            "match_attempts": round(attempts_speedup, 1),
            "wall_clock": round(seconds_naive / max(1e-9, seconds_incremental), 2),
        },
    }
    _ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nreduction benchmark: {json.dumps(payload['speedup'])} -> {_ARTIFACT.name}")
