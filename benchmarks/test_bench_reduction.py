"""Benchmark matrix of the HOCL reduction engine.

Four claims are checked and published as ``BENCH_reduction.json``:

* **Equivalence** — the optimized incremental engine (inertness caching,
  head-symbol indexing, quick-reject pre-checks, version-stamped rejection
  memos) produces a :attr:`ReductionReport.history` identical to the naive
  engine's on every scenario;
* **Attempt speedup** — the incremental engine performs at least 5× fewer
  match attempts than the naive re-reduce-everything engine (deterministic,
  machine-independent);
* **Strategy parity** — the ``batch`` and ``parallel`` reduction strategies
  reach the *same final solution* (content hash) with the *same reaction
  multiset* (``rule_fires``) as the serial engine, and the batched engine's
  ``match_attempts`` may only shrink relative to serial;
* **Wall-clock** — the montage-500 centralised reduction completes in
  ≤ 5 s (the PR-4 target; PR 2 measured 15.18 s), and — full profile —
  montage-1000 runs ≥ 1.4× faster in batch or parallel mode than the
  committed serial-incremental wall, the batched wall stays ≤ 7.2 s
  (calibrated; the PR-9 delta-rewrite target over the committed 9.0 s
  rebuild wall) and full-rebuild rewrite time no longer dominates: the
  ``rewrite`` share of the batched timing split stays < 30 %;
* **Delta parity** — the in-place delta path (the default) reaches the same
  final solution, reaction multiset and match-attempt count as the
  full-rebuild reference path (``delta=False``) on every scenario.

Every scenario row carries a ``modes`` object (schema_version 4): per
strategy (``serial``/``batch``/``parallel``), the match attempts, the wall
seconds, the match/rewrite/patch/index timing split (``patch`` is the time
spent applying in-place rewrite deltas, ``rewrite`` what remains on the
full-rebuild path), the count of delta-``patched`` reactions and — for the
batched strategies — the number of reaction batches applied.  A ``rebuild``
object records the reference ``delta=False`` batch run the parity check
compared against.  The legacy ``incremental`` object aliases ``modes.serial``
so older tooling keeps working.

Scenario matrix (the paper's two workflow shapes at several scales, plus two
families from the scenario catalog, :mod:`repro.scenarios`):

* ``montage-100-centralized`` — the scaled-down scenario the CI regression
  gate re-runs on every PR (see ``benchmarks/check_regression.py``);
* ``montage-500-centralized`` — the Section IV-C sized baseline;
* ``montage-1000-centralized`` — 2× the paper scale (run with
  ``GINFLOW_FULL=1``; skipped in the CI quick profile);
* ``diamond-16x8-full-centralized`` — the fully-connected diamond of
  Fig. 11, the densest dependency structure ``gw_pass`` has to search;
* ``cybershake-200-centralized`` — two-level wide fan-out/fan-in (per-site
  seismogram synthesis), the widest fan-in pressure after the diamond;
* ``sipht-200-centralized`` — many independent per-group fan-ins merging,
  the most fragmented solution structure (one agent-region per group).

The two catalog scenarios are regression-gated by ``check_regression.py``
exactly like montage-100, so a data-layer change that only bites deep
fan-ins or fragmented regions can no longer sail through CI.

The JSON artifact gives the perf trajectory a baseline: CI uploads it on
every build and ``check_regression.py`` fails a PR whose wall-clock regresses
more than 20% against the committed copy.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.hocl import ReductionEngine, default_registry
from repro.hocl.parallel import reduce_sharded, resolve_policy
from repro.hoclflow import encode_workflow
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.scenarios import build_scenario
from repro.services import InvocationContext, ServiceRegistry
from repro.workflow import diamond_workflow
from repro.workflow.montage import montage_workflow

#: Where the benchmark numbers are published (repository root).
_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_reduction.json"

#: Montage projection-stage width giving an N-task workflow (N-10 + 10 fixed).
_SCENARIOS = {
    "montage-100-centralized": lambda: montage_workflow(projections=90, duration_scale=0.01),
    "montage-500-centralized": lambda: montage_workflow(projections=490, duration_scale=0.01),
    "montage-1000-centralized": lambda: montage_workflow(projections=990, duration_scale=0.01),
    "diamond-16x8-full-centralized": lambda: diamond_workflow(16, 8, connectivity="full"),
    "cybershake-200-centralized": lambda: build_scenario("cybershake:size=200,seed=1"),
    "sipht-200-centralized": lambda: build_scenario("sipht:size=200,seed=1"),
}

#: Scenarios too slow for the CI quick profile (run with GINFLOW_FULL=1).
_FULL_ONLY = {"montage-1000-centralized"}

#: Wall-clock ceiling of the PR-4 acceptance criterion (seconds); slower CI
#: hardware can widen it via GINFLOW_WALL_BUDGET without touching the code.
_MONTAGE_500_BUDGET = float(os.environ.get("GINFLOW_WALL_BUDGET", "5.0"))

#: Wall-clock ceiling of the PR-9 delta-rewrite criterion: montage-1000
#: batched reduction, >= 1.25x over the committed 9.0 s rebuild-path wall.
_MONTAGE_1000_BATCH_BUDGET = 7.2


def _full_profile() -> bool:
    return bool(os.environ.get("GINFLOW_FULL"))


#: Reduction strategies measured per scenario (schema v4 ``modes`` rows).
_MODES = ("serial", "batch", "parallel")


def reduce_scenario(scenario: str, incremental: bool):
    """Centralised reduction of one scenario; returns (report, wall_seconds)."""
    return reduce_workflow(_SCENARIOS[scenario](), incremental)


def reduce_scenario_mode(scenario: str, mode: str, delta: bool = True):
    """One scenario under one strategy; returns (report, wall_seconds, solution)."""
    return reduce_workflow_mode(_SCENARIOS[scenario](), mode, delta=delta)


def reduce_workflow(workflow, incremental: bool):
    """Centralised serial reduction of ``workflow``; returns (report, wall_seconds)."""
    report, elapsed, _solution = reduce_workflow_mode(workflow, "serial", incremental=incremental)
    return report, elapsed


def reduce_workflow_mode(
    workflow, mode: str = "serial", incremental: bool = True, delta: bool = True
):
    """Centralised reduction of ``workflow`` under one reduction strategy.

    Returns ``(report, wall_seconds, solution)`` — the final solution is what
    the strategy-parity checks hash.  ``mode`` is a registered strategy name
    (``serial``/``batch``/``parallel``); ``incremental=False`` selects the
    naive re-reduce-everything engine (serial only, the calibration baseline);
    ``delta=False`` forces the full-rebuild reference path (the delta-parity
    baseline).
    """
    encoding = encode_workflow(workflow)
    solution = encoding.to_multiset()
    registry = ServiceRegistry()
    attempts: dict[str, int] = {}

    def invoke(task_name: str, service_name: str, parameters: list) -> object:
        attempts[task_name] = attempts.get(task_name, 0) + 1
        task = encoding.tasks[task_name]
        context = InvocationContext(
            task_name=task_name, duration=task.duration, metadata=task.metadata,
            attempt=attempts[task_name],
        )
        outcome = registry.resolve(service_name).invoke(list(parameters), context)
        if outcome.failed:
            raise RuntimeError(outcome.error or "invocation failed")
        return outcome.value

    externals = default_registry()
    register_workflow_externals(externals, invoke)
    policy = resolve_policy(mode)
    if not delta:
        policy = dataclasses.replace(policy, delta=False)

    def engine_factory() -> ReductionEngine:
        return ReductionEngine(
            externals=externals,
            max_steps=5_000_000,
            incremental=incremental,
            **policy.engine_options(),
        )

    start = time.perf_counter()
    if policy.parallel:
        reducer = policy.make_reducer()
        try:
            report = reduce_sharded(solution, engine_factory, reducer, max_steps=5_000_000)
        finally:
            reducer.shutdown()
    else:
        report = engine_factory().reduce(solution)
    elapsed = time.perf_counter() - start
    assert report.inert
    return report, elapsed, solution


def _trace(report):
    return [(r.rule, r.depth, r.consumed, r.produced) for r in report.history]


def _measure(scenario: str) -> dict:
    """Run one scenario under every strategy; check parity, package the row."""
    serial, seconds_serial, serial_solution = reduce_scenario_mode(scenario, "serial")
    naive, seconds_naive = reduce_scenario(scenario, incremental=False)
    assert _trace(serial) == _trace(naive), f"{scenario}: trace diverged"
    attempts_speedup = naive.match_attempts / max(1, serial.match_attempts)
    assert attempts_speedup >= 5.0, (
        f"{scenario}: expected >=5x fewer match attempts, got {attempts_speedup:.1f}x "
        f"({naive.match_attempts} -> {serial.match_attempts})"
    )
    serial_hash = serial_solution.content_hash()
    modes = {
        "serial": {
            "match_attempts": serial.match_attempts,
            "wall_seconds": round(seconds_serial, 3),
            "timings": {k: round(v, 3) for k, v in serial.timings.items()},
            "patched": serial.patched,
        }
    }
    batch_report = None
    for mode in _MODES[1:]:
        report, seconds, solution = reduce_scenario_mode(scenario, mode)
        assert solution.content_hash() == serial_hash, (
            f"{scenario}: {mode} reached a different final solution than serial"
        )
        assert report.rule_fires == serial.rule_fires, (
            f"{scenario}: {mode} reaction multiset diverged from serial"
        )
        assert report.reactions == serial.reactions
        if mode == "batch":
            batch_report = report
            assert report.match_attempts <= serial.match_attempts, (
                f"{scenario}: batched match_attempts {report.match_attempts} exceed "
                f"serial-incremental {serial.match_attempts}"
            )
        modes[mode] = {
            "match_attempts": report.match_attempts,
            "wall_seconds": round(seconds, 3),
            "timings": {k: round(v, 3) for k, v in report.timings.items()},
            "batches": report.batches,
            "patched": report.patched,
        }

    # Delta parity: the full-rebuild reference path (delta=False) must reach
    # the same final solution with the same reaction trace.  Kept anchors are
    # repositioned where rebuild appends its products, so this is exact trace
    # identity — not just confluence-up-to-order.
    rebuild, seconds_rebuild, rebuild_solution = reduce_scenario_mode(
        scenario, "batch", delta=False
    )
    assert rebuild_solution.content_hash() == serial_hash, (
        f"{scenario}: rebuild (delta=False) reached a different final solution"
    )
    assert batch_report is not None
    assert rebuild.rule_fires == batch_report.rule_fires, (
        f"{scenario}: rebuild (delta=False) reaction multiset diverged"
    )
    assert _trace(rebuild) == _trace(batch_report), (
        f"{scenario}: rebuild (delta=False) trace diverged from the delta path"
    )
    assert rebuild.match_attempts == batch_report.match_attempts, (
        f"{scenario}: rebuild match_attempts {rebuild.match_attempts} != "
        f"delta {batch_report.match_attempts}"
    )
    assert rebuild.patched == 0, f"{scenario}: delta=False engine patched reactions"

    return {
        "reactions": serial.reactions,
        # legacy alias of modes.serial (schema v2 consumers: the CI gate's
        # committed-row lookup and the trend collator's fallback)
        "incremental": modes["serial"],
        "naive": {
            "match_attempts": naive.match_attempts,
            "wall_seconds": round(seconds_naive, 3),
        },
        "speedup": {
            "match_attempts": round(attempts_speedup, 1),
            "wall_clock": round(seconds_naive / max(1e-9, seconds_serial), 2),
        },
        "modes": modes,
        # the delta=False batch reference the parity check ran against
        "rebuild": {
            "mode": "batch",
            "match_attempts": rebuild.match_attempts,
            "wall_seconds": round(seconds_rebuild, 3),
            "timings": {k: round(v, 3) for k, v in rebuild.timings.items()},
        },
    }


def test_reduction_micro_benchmark(benchmark):
    """Micro-benchmark: one 128-task reduction with the incremental engine."""
    report = benchmark.pedantic(
        lambda: reduce_workflow(
            montage_workflow(projections=118, duration_scale=0.01), incremental=True
        )[0],
        rounds=1,
        iterations=1,
    )
    assert report.reactions > 0


def test_trace_equivalence_small():
    """Incremental and naive engines agree reaction-for-reaction."""
    scenario = "montage-100-centralized"
    incremental, _ = reduce_scenario(scenario, incremental=True)
    naive, _ = reduce_scenario(scenario, incremental=False)
    assert _trace(incremental) == _trace(naive)
    assert incremental.reactions == naive.reactions
    assert incremental.match_attempts < naive.match_attempts


def naive_calibration(
    measured_naive_wall: float, committed_naive_wall: float, floor: float | None = None
) -> float:
    """Machine-speed factor: this machine's naive wall over the committed one.

    The one calibration used by both the acceptance budget below and the CI
    gate (``check_regression.py``): scaling a committed incremental budget by
    this factor makes the comparison hardware-relative, so a uniformly slower
    runner moves both sides while a real incremental regression still fails.
    ``floor`` clamps the factor from below (the acceptance budget uses 1.0 so
    fast machines keep the strict absolute budget).
    """
    factor = measured_naive_wall / max(1e-9, committed_naive_wall)
    if floor is not None:
        factor = max(floor, factor)
    return factor


def _committed_scenarios() -> dict:
    if not _ARTIFACT.exists():
        return {}
    try:
        return json.loads(_ARTIFACT.read_text()).get("scenarios", {})
    except (json.JSONDecodeError, AttributeError):
        return {}


def test_benchmark_matrix_and_artifact():
    """Run the scenario matrix, enforce the wall budget, publish the artifact."""
    committed = _committed_scenarios()  # read before the rewrite below
    scenarios = {}
    for scenario in _SCENARIOS:
        if scenario in _FULL_ONLY and not _full_profile():
            continue
        scenarios[scenario] = _measure(scenario)

    # The 5 s acceptance budget is an authoring-machine number.  Calibrate it
    # by this machine's naive run over the committed naive wall (floored at
    # 1.0 so fast machines keep the strict budget) — a slower CI runner
    # scales both sides, a real incremental regression still fails.
    montage_500 = scenarios["montage-500-centralized"]
    committed_naive = (
        committed.get("montage-500-centralized", {}).get("naive", {}).get("wall_seconds")
    )
    calibration = 1.0
    if committed_naive:
        calibration = naive_calibration(
            montage_500["naive"]["wall_seconds"], committed_naive, floor=1.0
        )
    budget = _MONTAGE_500_BUDGET * calibration
    assert montage_500["incremental"]["wall_seconds"] <= budget, (
        f"montage-500 centralised reduction took "
        f"{montage_500['incremental']['wall_seconds']} s "
        f"(budget {_MONTAGE_500_BUDGET} s x calibration {calibration:.2f})"
    )

    # Full profile: the parallel-reduction acceptance gate.  The best of the
    # batch/parallel strategies on montage-1000 must beat the *committed*
    # serial-incremental wall by >= 1.4x, calibrated to this machine the same
    # way (via the scenario's own naive run).
    if "montage-1000-centralized" in scenarios:
        row = scenarios["montage-1000-centralized"]
        committed_row = committed.get("montage-1000-centralized", {})
        committed_serial = committed_row.get("incremental", {}).get("wall_seconds")
        committed_naive_1000 = committed_row.get("naive", {}).get("wall_seconds")
        if committed_serial and committed_naive_1000:
            calibration_1000 = naive_calibration(
                row["naive"]["wall_seconds"], committed_naive_1000, floor=1.0
            )
            best_mode, best = min(
                ((mode, row["modes"][mode]) for mode in ("batch", "parallel")),
                key=lambda pair: pair[1]["wall_seconds"],
            )
            ceiling = committed_serial * calibration_1000 / 1.4
            assert best["wall_seconds"] <= ceiling, (
                f"montage-1000 {best_mode} wall {best['wall_seconds']} s misses the "
                f"1.4x speedup over the committed serial {committed_serial} s "
                f"(calibration x{calibration_1000:.2f}, ceiling {ceiling:.3f} s)"
            )
            # PR-9 delta-rewrite acceptance: batched wall <= 7.2 s (calibrated)
            # and full-rebuild rewrite time no longer dominates the split.
            batch = row["modes"]["batch"]
            delta_ceiling = _MONTAGE_1000_BATCH_BUDGET * calibration_1000
            assert batch["wall_seconds"] <= delta_ceiling, (
                f"montage-1000 batch wall {batch['wall_seconds']} s misses the "
                f"delta-rewrite budget {_MONTAGE_1000_BATCH_BUDGET} s "
                f"(calibration x{calibration_1000:.2f})"
            )
            timed = sum(batch["timings"].values())
            rewrite_share = batch["timings"].get("rewrite", 0.0) / max(1e-9, timed)
            assert rewrite_share < 0.30, (
                f"montage-1000 batch rewrite share {rewrite_share:.0%} >= 30% — "
                f"full-rebuild expansion still dominates ({batch['timings']})"
            )
            print(
                f"\nmontage-1000 acceptance: {best_mode} {best['wall_seconds']} s vs "
                f"committed serial {committed_serial} s "
                f"({committed_serial * calibration_1000 / best['wall_seconds']:.2f}x); "
                f"batch rewrite share {rewrite_share:.0%}"
            )

    # keep the committed rows for the scenarios this profile deliberately
    # skipped (and only those: renamed/removed scenarios must not linger)
    for name, row in committed.items():
        if name in _SCENARIOS:
            scenarios.setdefault(name, row)

    payload = {
        "benchmark": "hocl-reduction",
        "schema_version": 4,
        "scenarios": scenarios,
    }
    _ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    summary = {name: row["speedup"] for name, row in scenarios.items()}
    print(f"\nreduction benchmarks: {json.dumps(summary)} -> {_ARTIFACT.name}")
