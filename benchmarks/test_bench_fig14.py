"""Benchmark reproducing Fig. 14 — executor / messaging middleware impact.

Runs the 10×10 simple-connected diamond under every executor × broker
combination for 5, 10 and 15 nodes and reports deployment and execution
times separately, as the paper's stacked bars do.
"""

from __future__ import annotations

from repro.bench import format_fig14, run_fig14


def _row(rows, executor, broker, nodes):
    for row in rows:
        if row["executor"] == executor and row["broker"] == broker and row["nodes"] == nodes:
            return row
    raise KeyError((executor, broker, nodes))


def test_fig14_executor_and_broker_impact(benchmark):
    """Reproduce the Fig. 14 bars and check the reported trends."""
    rows = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    print()
    print(format_fig14(rows))

    # Mesos deployment time decreases with the node count.
    mesos = [_row(rows, "mesos", "activemq", nodes)["deployment_time"] for nodes in (5, 10, 15)]
    assert mesos[0] > mesos[1] > mesos[2]

    # SSH deployment time slightly increases with the node count.
    ssh = [_row(rows, "ssh", "activemq", nodes)["deployment_time"] for nodes in (5, 10, 15)]
    assert ssh[2] >= ssh[0]
    assert ssh[2] - ssh[0] < 10.0  # "slightly"

    # The deployment time depends on the executor, not on the broker.
    for nodes in (5, 10, 15):
        amq = _row(rows, "mesos", "activemq", nodes)["deployment_time"]
        kafka = _row(rows, "mesos", "kafka", nodes)["deployment_time"]
        assert abs(amq - kafka) < 1.0

    # ActiveMQ outperforms Kafka on execution time by a large factor (paper: ~4x).
    for executor in ("ssh", "mesos"):
        for nodes in (5, 10, 15):
            amq = _row(rows, executor, "activemq", nodes)["execution_time"]
            kafka = _row(rows, executor, "kafka", nodes)["execution_time"]
            assert kafka > 2.0 * amq, (executor, nodes, amq, kafka)
