#!/usr/bin/env python
"""Collate per-commit reduction benchmark artifacts into a trend table.

The CI benchmarks job stamps every build's numbers as
``BENCH_reduction-<sha>.json`` (the committed ``BENCH_reduction.json``
schema, one SHA-named copy per build).  The regression gate only catches
jumps above its tolerance; slow drift *inside* the tolerance compounds
silently across PRs.  This script folds any number of downloaded artifacts
into one per-scenario trend table so that drift becomes visible:

* one row per (commit, scenario, mode): reactions, match_attempts, wall
  seconds per reduction strategy (``serial``/``batch``/``parallel`` —
  schema-2 artifacts contribute a single ``serial`` row), the
  match/rewrite/patch/index split of the wall (schema-4 rows; older
  artifacts show ``-`` for the keys they lack, e.g. ``patch`` before the
  delta path existed), plus the naive wall and wall-clock speedup on the
  serial row;
* a ``drift`` column: the wall relative to the *first* (oldest) collated
  commit of that (scenario, mode) — the number the 20%-per-PR gate cannot
  see;
* commits are ordered by artifact modification time (artifact downloads
  preserve upload order); ``--order name`` sorts by SHA instead.

Usage::

    python benchmarks/collate_trend.py artifacts/           # a directory
    python benchmarks/collate_trend.py BENCH_reduction-*.json
    python benchmarks/collate_trend.py artifacts/ --scenario montage-100-centralized
    python benchmarks/collate_trend.py artifacts/ --csv trend.csv --json-out trend.json
    python benchmarks/collate_trend.py artifacts/ --plot trend.svg

``--plot`` renders the trend as a dependency-free SVG (two panels: the wall
seconds of every collated (scenario, mode) series across commits, and the
match/rewrite/patch/index split of the heaviest series — the drift the
per-PR gate tolerance cannot see, as a picture).

Exit status: 0 when at least one artifact was collated, 1 otherwise.
"""

from __future__ import annotations

import argparse
import csv
import json
import re
import sys
from pathlib import Path
from typing import Any, Iterator

#: SHA-stamped artifact names produced by CI (``BENCH_reduction-<sha>.json``);
#: the unstamped committed baseline is labelled ``committed``.
_STAMPED = re.compile(r"^BENCH_reduction-(?P<sha>[0-9a-fA-F]{7,40})\.json$")

#: Columns of the trend table, in display order.
_COLUMNS = (
    "commit",
    "scenario",
    "mode",
    "reactions",
    "match_attempts",
    "wall_seconds",
    "match_seconds",
    "rewrite_seconds",
    "patch_seconds",
    "index_seconds",
    "naive_wall_seconds",
    "speedup",
    "drift",
)

#: ``ReductionReport.timings`` keys surfaced as trend columns.  Schema-3
#: artifacts lack ``patch`` (pre-delta engines), schema-2 rows lack the
#: whole ``timings`` object; missing keys render as ``-``.
_TIMING_KEYS = ("match", "rewrite", "patch", "index")


def _label(path: Path) -> str:
    """Short commit label for one artifact file."""
    match = _STAMPED.match(path.name)
    if match:
        return match.group("sha")[:12]
    return "committed" if path.name == "BENCH_reduction.json" else path.stem


def discover(paths: list[Path]) -> list[Path]:
    """Every artifact file under ``paths`` (files or directories)."""
    found: list[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(sorted(path.rglob("BENCH_reduction*.json")))
        elif path.is_file():
            found.append(path)
        else:
            print(f"warning: {path} does not exist; skipping", file=sys.stderr)
    # de-duplicate while keeping order (a dir glob can re-match an explicit file)
    unique: dict[Path, None] = {}
    for path in found:
        unique.setdefault(path.resolve(), None)
    return list(unique)


def load_rows(path: Path) -> Iterator[dict[str, Any]]:
    """The per-scenario rows of one artifact (empty on unreadable files)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: cannot read {path}: {exc}; skipping", file=sys.stderr)
        return
    if payload.get("benchmark") != "hocl-reduction":
        print(f"warning: {path} is not a reduction artifact; skipping", file=sys.stderr)
        return
    for scenario, row in sorted(payload.get("scenarios", {}).items()):
        naive = row.get("naive", {})
        speedup = row.get("speedup", {})
        # Schema 3 carries one sub-row per reduction strategy; schema 2
        # artifacts only measured the serial incremental engine.
        modes = row.get("modes") or {"serial": row.get("incremental", {})}
        for mode, measured in sorted(modes.items()):
            serial_row = mode == "serial"
            timings = measured.get("timings") or {}
            yield {
                "commit": _label(path),
                "scenario": scenario,
                "mode": mode,
                "reactions": row.get("reactions"),
                "match_attempts": measured.get("match_attempts"),
                "wall_seconds": measured.get("wall_seconds"),
                **{f"{key}_seconds": timings.get(key) for key in _TIMING_KEYS},
                "naive_wall_seconds": naive.get("wall_seconds") if serial_row else None,
                "speedup": speedup.get("wall_clock") if serial_row else None,
            }


def collate(
    files: list[Path], scenarios: list[str] | None, modes: list[str] | None = None
) -> list[dict[str, Any]]:
    """All rows across ``files``, with the cross-commit drift column filled."""
    rows: list[dict[str, Any]] = []
    for path in files:
        for row in load_rows(path):
            if scenarios and row["scenario"] not in scenarios:
                continue
            if modes and row["mode"] not in modes:
                continue
            rows.append(row)
    first_wall: dict[tuple[str, str], float] = {}
    for row in rows:
        wall = row["wall_seconds"]
        if wall is None:
            row["drift"] = None
            continue
        base = first_wall.setdefault((row["scenario"], row["mode"]), wall)
        row["drift"] = round((wall - base) / base, 3) if base else None
    return rows


def format_table(rows: list[dict[str, Any]]) -> str:
    """Fixed-width text table of the trend rows."""

    def cell(row: dict[str, Any], column: str) -> str:
        value = row.get(column)
        if value is None:
            return "-"
        if column == "drift":
            return f"{value:+.1%}"
        return str(value)

    table = [list(_COLUMNS)] + [[cell(row, column) for column in _COLUMNS] for row in rows]
    widths = [max(len(line[index]) for line in table) for index in range(len(_COLUMNS))]
    lines = ["  ".join(value.ljust(width) for value, width in zip(line, widths)).rstrip() for line in table]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


# ------------------------------------------------------------------ plotting
#: Line colors cycled across (scenario, mode) series / timing phases.
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
            "#17becf", "#e377c2", "#7f7f7f", "#bcbd22")


def _series(rows: list[dict[str, Any]]) -> tuple[list[str], dict[tuple[str, str], dict[str, dict[str, Any]]]]:
    """Commit order plus one ``{commit: row}`` map per (scenario, mode)."""
    commits: list[str] = []
    groups: dict[tuple[str, str], dict[str, dict[str, Any]]] = {}
    for row in rows:
        if row["commit"] not in commits:
            commits.append(row["commit"])
        if row["wall_seconds"] is not None:
            groups.setdefault((row["scenario"], row["mode"]), {})[row["commit"]] = row
    return commits, groups


def _panel(
    parts: list[str],
    title: str,
    lines: list[tuple[str, str, list[tuple[int, float]]]],
    commits: list[str],
    top: float,
) -> None:
    """One plot panel: polylines of (label, color, [(commit_index, value)])."""
    left, width, height = 60.0, 640.0, 170.0
    bottom = top + height
    peak = max((value for _, _, points in lines for _, value in points), default=0.0)
    peak = peak or 1.0
    step = width / max(1, len(commits) - 1)

    def x(index: int) -> float:
        return left + (index * step if len(commits) > 1 else width / 2)

    def y(value: float) -> float:
        return bottom - value / peak * (height - 10.0)

    parts.append(f'<text x="{left}" y="{top - 8}" class="title">{title}</text>')
    parts.append(
        f'<line x1="{left}" y1="{bottom}" x2="{left + width}" y2="{bottom}" class="axis"/>'
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" class="axis"/>'
    )
    parts.append(f'<text x="{left - 6}" y="{top + 10}" class="tick" text-anchor="end">{peak:.3g}s</text>')
    parts.append(f'<text x="{left - 6}" y="{bottom}" class="tick" text-anchor="end">0</text>')
    for index, commit in enumerate(commits):
        parts.append(
            f'<text x="{x(index):.1f}" y="{bottom + 14}" class="tick" text-anchor="middle">{commit[:7]}</text>'
        )
    legend_y = top
    for label, color, points in lines:
        coords = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in points)
        parts.append(f'<polyline points="{coords}" fill="none" stroke="{color}" stroke-width="1.5"/>')
        for i, v in points:
            parts.append(f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="2.5" fill="{color}"/>')
        parts.append(
            f'<rect x="{left + width + 16}" y="{legend_y}" width="10" height="10" fill="{color}"/>'
            f'<text x="{left + width + 30}" y="{legend_y + 9}" class="tick">{label}</text>'
        )
        legend_y += 16


def render_plot(rows: list[dict[str, Any]], path: Path) -> None:
    """Write the trend rows as a two-panel SVG (wall trend + phase split)."""
    commits, groups = _series(rows)
    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="920" height="520" '
        'viewBox="0 0 920 520" font-family="sans-serif">',
        "<style>.title{font-size:13px;font-weight:bold}.tick{font-size:10px;fill:#444}"
        ".axis{stroke:#999;stroke-width:1}</style>",
        '<rect width="920" height="520" fill="white"/>',
    ]
    wall_lines = []
    for index, (key, series) in enumerate(sorted(groups.items())):
        points = [
            (i, series[commit]["wall_seconds"])
            for i, commit in enumerate(commits)
            if commit in series
        ]
        wall_lines.append((f"{key[0]} [{key[1]}]", _PALETTE[index % len(_PALETTE)], points))
    _panel(parts, "reduction wall seconds per commit", wall_lines, commits, top=40.0)

    # Phase split of the heaviest series: where the wall actually goes, so a
    # phase quietly regrowing inside a flat total is still visible.
    timed = {
        key: series
        for key, series in groups.items()
        if any(row.get(f"{phase}_seconds") is not None for row in series.values() for phase in _TIMING_KEYS)
    }
    phase_lines = []
    subtitle = "phase split (no timing data collated)"
    if timed:
        key, series = max(
            timed.items(), key=lambda item: max(row["wall_seconds"] for row in item[1].values())
        )
        subtitle = f"phase split: {key[0]} [{key[1]}]"
        for index, phase in enumerate(_TIMING_KEYS):
            points = [
                (i, series[commit][f"{phase}_seconds"])
                for i, commit in enumerate(commits)
                if commit in series and series[commit].get(f"{phase}_seconds") is not None
            ]
            if points:
                phase_lines.append((phase, _PALETTE[index % len(_PALETTE)], points))
    _panel(parts, subtitle, phase_lines, commits, top=310.0)
    parts.append("</svg>")
    path.write_text("\n".join(parts) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "paths",
        nargs="+",
        type=Path,
        help="artifact files, or directories searched recursively for BENCH_reduction*.json",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="only collate this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--mode",
        action="append",
        default=None,
        help="only collate this reduction strategy (repeatable; default: all)",
    )
    parser.add_argument(
        "--order",
        choices=["mtime", "name"],
        default="mtime",
        help="commit ordering: artifact modification time (default) or file name",
    )
    parser.add_argument("--csv", metavar="PATH", help="also write the rows as CSV")
    parser.add_argument("--json-out", metavar="PATH", help="also write the rows as JSON")
    parser.add_argument(
        "--plot",
        metavar="PATH",
        help="also render the trend as an SVG (wall per series + phase split)",
    )
    args = parser.parse_args(argv)

    files = discover(args.paths)
    if args.order == "mtime":
        files.sort(key=lambda path: path.stat().st_mtime)
    else:
        files.sort(key=lambda path: path.name)
    rows = collate(files, args.scenario, args.mode)
    if not rows:
        print("no artifact rows collated", file=sys.stderr)
        return 1

    print(format_table(rows))
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(_COLUMNS))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.json_out:
        Path(args.json_out).write_text(json.dumps({"trend": rows}, indent=2) + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.plot:
        render_plot(rows, Path(args.plot))
        print(f"wrote {args.plot}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
