"""Benchmark reproducing Fig. 13 — adaptiveness overhead ratio.

For every scenario (simple→simple, simple→full, full→simple) and square
configuration, compute the ratio between the execution time with adaptation
(error raised on the last body service, whole body replaced on the fly) and
the execution time of the regular workflow.
"""

from __future__ import annotations

from repro.bench import format_fig13, run_fig13


def _rows_for(rows, scenario):
    return [row for row in rows if row["scenario"] == scenario]


def test_fig13_adaptiveness_ratio(benchmark):
    """Reproduce the Fig. 13 ratios and check the paper's bounds."""
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    print()
    print(format_fig13(rows))

    assert all(row["succeeded"] for row in rows)
    assert all(row["adaptations_triggered"] == 1 for row in rows)

    # Scenario 1 (simple to simple): the ratio never exceeds ~2 — adapting is
    # cheaper than a full re-execution (which would cost at least 2x).
    for row in _rows_for(rows, "simple-to-simple"):
        assert row["ratio"] < 2.3, row

    # Scenario 2 (simple to full): for configurations larger than 1x1 the
    # ratio stays in the 2-3 range (paper: "between 2 and 3").
    for row in _rows_for(rows, "simple-to-full"):
        if row["size"] > 1:
            assert row["ratio"] < 3.5, row

    # Scenario 3 (full to simple): the ratio remains constant or decreases as
    # the configuration grows.
    full_to_simple = sorted(_rows_for(rows, "full-to-simple"), key=lambda row: row["size"])
    ratios = [row["ratio"] for row in full_to_simple if row["size"] > 1]
    assert ratios == sorted(ratios, reverse=True) or max(ratios) - min(ratios) < 0.6
