"""Benchmark reproducing Fig. 12 — coordination timespan of diamond workflows.

Regenerates the two surfaces (simple-connected and fully-connected) and
checks the trends the paper reports: time grows with both dimensions, the
vertical dimension has the steeper slope, and the fully-connected flavour is
several times more expensive at equal size.

Run ``GINFLOW_FULL=1 pytest benchmarks/test_bench_fig12.py --benchmark-only``
to sweep the paper's full 31×31 grid.
"""

from __future__ import annotations

import pytest

from repro.bench import format_fig12, run_fig12
from repro.runtime import GinFlowConfig, run_simulation
from repro.workflow import diamond_workflow


def _point(rows, connectivity, horizontal, vertical):
    for row in rows:
        if (
            row["connectivity"] == connectivity
            and row["horizontal"] == horizontal
            and row["vertical"] == vertical
        ):
            return row
    raise KeyError((connectivity, horizontal, vertical))


def test_fig12_surfaces(benchmark):
    """Reproduce the Fig. 12 sweep and check its shape."""
    rows = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    print()
    print(format_fig12(rows))

    assert all(row["succeeded"] for row in rows)

    sizes = sorted({row["horizontal"] for row in rows})
    small, large = sizes[0], sizes[-1]
    for connectivity in ("simple", "full"):
        # grows along the vertical dimension
        assert (
            _point(rows, connectivity, small, large)["coordination_time"]
            > _point(rows, connectivity, small, small)["coordination_time"]
        )
        # grows along the horizontal dimension
        assert (
            _point(rows, connectivity, large, large)["coordination_time"]
            > _point(rows, connectivity, small, large)["coordination_time"]
        )
        # vertical slope is steeper than horizontal slope (paper, Section V-A)
        vertical_growth = (
            _point(rows, connectivity, small, large)["coordination_time"]
            - _point(rows, connectivity, small, small)["coordination_time"]
        )
        horizontal_growth = (
            _point(rows, connectivity, large, small)["coordination_time"]
            - _point(rows, connectivity, small, small)["coordination_time"]
        )
        assert vertical_growth > horizontal_growth

    # fully connected is markedly more expensive than simple connected
    simple_large = _point(rows, "simple", large, large)["coordination_time"]
    full_large = _point(rows, "full", large, large)["coordination_time"]
    assert full_large > 1.5 * simple_large


def test_fig12_single_cell_benchmark(benchmark):
    """Time one representative cell (11x11 simple) for regression tracking."""
    workflow = diamond_workflow(11, 11, connectivity="simple", duration=0.1)
    config = GinFlowConfig(nodes=25, collect_timeline=False)

    def run_once():
        return run_simulation(workflow, config)

    report = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert report.succeeded
