"""Benchmark reproducing Fig. 16 — resilience under injected agent failures.

Runs the Montage workflow on Mesos + Kafka with the paper's failure model
(probability ``p`` after delay ``T``) and compares against the no-failure
baseline.  Checks the reported trends: overhead grows with ``p``; ``T = 0``
failures are cheap; ``T = 100`` failures (long projections) dominate at high
``p``; the expected failure count follows ``p/(1-p) × N_T``.
"""

from __future__ import annotations

from repro.bench import run_fig16, run_fig16_baseline, format_fig16


def _cell(rows, delay, probability):
    for row in rows:
        if row["T"] == delay and row["p"] == probability:
            return row
    raise KeyError((delay, probability))


def test_fig16_resilience(benchmark):
    """Reproduce the Fig. 16 bars and check the paper's trends."""
    baseline = run_fig16_baseline(repetitions=1)

    rows = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    print()
    print(format_fig16(rows, baseline))

    # every configuration still completes the workflow (robustness claim)
    assert all(row["recoveries"] >= row["failures"] * 0.99 for row in rows)

    # overhead grows with p for every T
    for delay in (0.0, 15.0, 100.0):
        times = [_cell(rows, delay, p)["execution_time"] for p in (0.2, 0.5, 0.8)]
        assert times[0] <= times[1] <= times[2] * 1.05, (delay, times)

    # T=0: failures are numerous but cheap — bounded overhead vs baseline
    cheap = _cell(rows, 0.0, 0.2)["execution_time"]
    assert cheap < baseline["mean"] * 1.3

    # T=100 at p=0.8 is the worst case (long work lost per failure)
    worst = _cell(rows, 100.0, 0.8)["execution_time"]
    assert worst > _cell(rows, 0.0, 0.8)["execution_time"]
    assert worst > baseline["mean"]

    # failure counts follow the p/(1-p) * N_T expectation, loosely:
    # with T=0 every service is exposed (118), with T=100 only the long ones.
    t0_p08 = _cell(rows, 0.0, 0.8)["failures"]
    t100_p08 = _cell(rows, 100.0, 0.8)["failures"]
    assert t0_p08 > t100_p08
    assert t0_p08 > 100  # paper observed 487 failures on average at p=0.8, T=0
