"""Property-based tests (hypothesis) on the HOCL core.

The invariants checked here are the ones GinFlow relies on:

* reduction terminates and is *confluent* for the getMax program — the final
  solution is the same whatever the input order;
* reduction never invents or loses atoms other than through rule firings
  (mass balance of the getMax rule: each reaction removes exactly one atom);
* multiset equality is order-insensitive and copy is faithful;
* one-shot rules fire at most once regardless of how many matches exist.
"""

from hypothesis import given, settings, strategies as st

from repro.hocl import IntAtom, Multiset, Ref, Rule, Var, reduce_solution


def max_rule():
    return Rule(
        "max",
        [Var("x", kind="int"), Var("y", kind="int")],
        [Ref("x")],
        condition=lambda b: b.value("x") >= b.value("y"),
    )


integers = st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=25)


@settings(max_examples=60, deadline=None)
@given(integers)
def test_getmax_reduces_to_maximum(values):
    solution = Multiset(values + [max_rule()])
    report = reduce_solution(solution)
    assert report.inert
    remaining = [a.value for a in solution.atoms() if isinstance(a, IntAtom)]
    assert remaining == [max(values)]


@settings(max_examples=60, deadline=None)
@given(integers)
def test_getmax_reaction_count_is_mass_balance(values):
    solution = Multiset(values + [max_rule()])
    report = reduce_solution(solution)
    # each reaction consumes exactly one integer
    assert report.reactions == len(values) - 1


@settings(max_examples=40, deadline=None)
@given(integers, st.randoms(use_true_random=False))
def test_getmax_confluent_under_permutation(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    first = Multiset(values + [max_rule()])
    second = Multiset(shuffled + [max_rule()])
    reduce_solution(first)
    reduce_solution(second)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(st.integers(-50, 50), st.text(max_size=5)), max_size=20))
def test_multiset_copy_equals_original(values):
    original = Multiset(values)
    clone = original.copy()
    assert clone == original
    clone.add(12345)
    assert clone != original or 12345 in original


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-20, 20), min_size=2, max_size=20))
def test_one_shot_rule_fires_exactly_once(values):
    consumed = []
    rule = Rule(
        "one",
        [Var("x", kind="int")],
        [],
        one_shot=True,
        effect=lambda b: consumed.append(b.value("x")),
    )
    solution = Multiset(values + [rule])
    reduce_solution(solution)
    assert len(consumed) == 1
    remaining = [a for a in solution.atoms() if isinstance(a, IntAtom)]
    assert len(remaining) == len(values) - 1


@settings(max_examples=60, deadline=None)
@given(integers)
def test_multiset_equality_order_insensitive(values):
    assert Multiset(values) == Multiset(list(reversed(values)))


@settings(max_examples=60, deadline=None)
@given(integers)
def test_size_recursive_at_least_len(values):
    solution = Multiset(values)
    assert solution.size_recursive() == len(solution)
