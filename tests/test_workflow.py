"""Unit tests for the workflow model: DAG, adaptation specs, generators, JSON."""

import json

import pytest

from repro.workflow import (
    AdaptationSpec,
    AdaptationValidationError,
    JSONFormatError,
    MONTAGE_PARALLEL_WIDTH,
    MONTAGE_TASK_COUNT,
    Task,
    Workflow,
    WorkflowValidationError,
    adaptive_diamond_workflow,
    diamond_workflow,
    duration_cdf,
    duration_classes,
    merge_workflow,
    montage_workflow,
    parallel_workflow,
    sequence_workflow,
    split_workflow,
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
)


class TestTask:
    def test_requires_name_and_service(self):
        with pytest.raises(WorkflowValidationError):
            Task("", "svc")
        with pytest.raises(WorkflowValidationError):
            Task("T1", "")

    def test_negative_duration_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Task("T1", "svc", duration=-1)

    def test_copy_is_independent(self):
        task = Task("T1", "svc", inputs=[1], metadata={"a": 1})
        clone = task.copy()
        clone.inputs.append(2)
        clone.metadata["b"] = 2
        assert task.inputs == [1]
        assert "b" not in task.metadata


class TestWorkflowStructure:
    def build(self):
        workflow = Workflow("w")
        for name in ("A", "B", "C", "D"):
            workflow.add_task(name, service="svc")
        workflow.add_dependency("A", "B")
        workflow.add_dependency("A", "C")
        workflow.add_dependency("B", "D")
        workflow.add_dependency("C", "D")
        return workflow

    def test_add_task_by_name(self):
        workflow = Workflow("w")
        task = workflow.add_task("T1", service="svc", duration=2.0)
        assert task.duration == 2.0

    def test_duplicate_task_rejected(self):
        workflow = Workflow("w")
        workflow.add_task("T1", service="svc")
        with pytest.raises(WorkflowValidationError):
            workflow.add_task("T1", service="svc")

    def test_dependency_unknown_task(self):
        workflow = Workflow("w")
        workflow.add_task("T1", service="svc")
        with pytest.raises(WorkflowValidationError):
            workflow.add_dependency("T1", "T2")

    def test_self_dependency_rejected(self):
        workflow = Workflow("w")
        workflow.add_task("T1", service="svc")
        with pytest.raises(WorkflowValidationError):
            workflow.add_dependency("T1", "T1")

    def test_dependency_idempotent(self):
        workflow = self.build()
        workflow.add_dependency("A", "B")
        assert workflow.dependencies().count(("A", "B")) == 1

    def test_predecessors_successors(self):
        workflow = self.build()
        assert set(workflow.successors("A")) == {"B", "C"}
        assert set(workflow.predecessors("D")) == {"B", "C"}

    def test_entry_and_exit(self):
        workflow = self.build()
        assert workflow.entry_tasks() == ["A"]
        assert workflow.exit_tasks() == ["D"]

    def test_topological_order(self):
        order = self.build().topological_order()
        assert order.index("A") < order.index("B") < order.index("D")

    def test_levels(self):
        levels = self.build().levels()
        assert [len(level) for level in levels] == [1, 2, 1]

    def test_cycle_detection(self):
        workflow = self.build()
        workflow._successors["D"].append("A")  # force a cycle
        workflow._predecessors["A"].append("D")
        with pytest.raises(WorkflowValidationError):
            workflow.validate()

    def test_empty_workflow_invalid(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("w").validate()

    def test_chain_helper(self):
        workflow = Workflow("w")
        for name in ("A", "B", "C"):
            workflow.add_task(name, service="svc")
        workflow.chain("A", "B", "C")
        assert workflow.dependencies() == [("A", "B"), ("B", "C")]

    def test_remove_task_cleans_dependencies(self):
        workflow = self.build()
        workflow.remove_task("B")
        assert "B" not in workflow
        assert ("A", "B") not in workflow.dependencies()
        assert set(workflow.predecessors("D")) == {"C"}

    def test_critical_path_and_total_work(self):
        workflow = Workflow("w")
        workflow.add_task("A", service="svc", duration=1.0)
        workflow.add_task("B", service="svc", duration=2.0)
        workflow.add_task("C", service="svc", duration=4.0)
        workflow.add_dependency("A", "B")
        workflow.add_dependency("A", "C")
        assert workflow.critical_path_length() == 5.0
        assert workflow.total_work() == 7.0

    def test_subgraph(self):
        sub = self.build().subgraph(["A", "B"])
        assert set(sub.task_names()) == {"A", "B"}
        assert sub.dependencies() == [("A", "B")]

    def test_copy_preserves_everything(self):
        workflow = adaptive_diamond_workflow(2, 2)
        clone = workflow.copy()
        assert set(clone.task_names()) == set(workflow.task_names())
        assert len(clone.adaptations) == 1
        clone.remove_task("merge")
        assert "merge" in workflow

    def test_unknown_task_lookup(self):
        with pytest.raises(WorkflowValidationError):
            self.build().task("Z")


class TestAdaptationSpecValidation:
    def base_workflow(self):
        workflow = Workflow("w")
        for name in ("A", "B", "C", "D"):
            workflow.add_task(name, service="svc")
        workflow.chain("A", "B", "C", "D")
        return workflow

    def replacement(self, names=("R1",)):
        replacement = Workflow("r")
        previous = None
        for name in names:
            replacement.add_task(name, service="svc")
            if previous:
                replacement.add_dependency(previous, name)
            previous = name
        return replacement

    def test_valid_spec(self):
        workflow = self.base_workflow()
        spec = AdaptationSpec("a", ["B"], self.replacement(), entry_sources={"R1": ["A"]})
        spec.validate(workflow)
        assert spec.destination(workflow) == "C"
        assert spec.region_sources(workflow) == ["A"]

    def test_empty_region_rejected(self):
        with pytest.raises(AdaptationValidationError):
            AdaptationSpec("a", [], self.replacement()).validate(self.base_workflow())

    def test_unknown_replaced_task(self):
        with pytest.raises(AdaptationValidationError):
            AdaptationSpec("a", ["Z"], self.replacement()).validate(self.base_workflow())

    def test_name_collision_rejected(self):
        workflow = self.base_workflow()
        replacement = self.replacement(names=("A",))  # collides
        with pytest.raises(AdaptationValidationError):
            AdaptationSpec("a", ["B"], replacement, entry_sources={"A": ["A"]}).validate(workflow)

    def test_multiple_destinations_rejected(self):
        # Fig. 9(c): a region with several outside successors is invalid
        workflow = Workflow("w")
        for name in ("A", "B", "C", "D"):
            workflow.add_task(name, service="svc")
        workflow.add_dependency("A", "B")
        workflow.add_dependency("B", "C")
        workflow.add_dependency("B", "D")
        spec = AdaptationSpec("a", ["B"], self.replacement(), entry_sources={"R1": ["A"]})
        with pytest.raises(AdaptationValidationError):
            spec.validate(workflow)

    def test_entry_source_not_a_region_source(self):
        workflow = self.base_workflow()
        spec = AdaptationSpec("a", ["B"], self.replacement(), entry_sources={"R1": ["D"]})
        with pytest.raises(AdaptationValidationError):
            spec.validate(workflow)

    def test_entry_without_sources_or_inputs_rejected(self):
        workflow = self.base_workflow()
        spec = AdaptationSpec("a", ["B"], self.replacement())
        with pytest.raises(AdaptationValidationError):
            spec.validate(workflow)

    def test_trigger_outside_region_rejected(self):
        workflow = self.base_workflow()
        spec = AdaptationSpec(
            "a", ["B"], self.replacement(), entry_sources={"R1": ["A"]}, trigger_on=["C"]
        )
        with pytest.raises(AdaptationValidationError):
            spec.validate(workflow)

    def test_overlapping_adaptations_rejected(self):
        workflow = self.base_workflow()
        first = AdaptationSpec("a1", ["B"], self.replacement(("R1",)), entry_sources={"R1": ["A"]})
        second = AdaptationSpec("a2", ["B"], self.replacement(("R2",)), entry_sources={"R2": ["A"]})
        workflow.add_adaptation(first)
        with pytest.raises(WorkflowValidationError):
            workflow.add_adaptation(second)

    def test_disjoint_adaptations_accepted(self):
        workflow = Workflow("w")
        for name in ("A", "B", "C", "D", "E"):
            workflow.add_task(name, service="svc")
        workflow.chain("A", "B", "C", "D", "E")
        workflow.add_adaptation(
            AdaptationSpec("a1", ["B"], self.replacement(("R1",)), entry_sources={"R1": ["A"]})
        )
        workflow.add_adaptation(
            AdaptationSpec("a2", ["D"], self.replacement(("R2",)), entry_sources={"R2": ["C"]})
        )
        assert len(workflow.adaptations) == 2

    def test_copy(self):
        spec = AdaptationSpec("a", ["B"], self.replacement(), entry_sources={"R1": ["A"]})
        clone = spec.copy()
        clone.replaced.append("X")
        assert spec.replaced == ["B"]


class TestGenerators:
    def test_sequence(self):
        workflow = sequence_workflow(5)
        workflow.validate()
        assert len(workflow) == 5
        assert len(workflow.levels()) == 5

    def test_sequence_requires_positive_length(self):
        with pytest.raises(WorkflowValidationError):
            sequence_workflow(0)

    def test_parallel(self):
        workflow = parallel_workflow(4)
        assert len(workflow) == 6
        assert [len(level) for level in workflow.levels()] == [1, 4, 1]

    def test_split_and_merge(self):
        assert len(split_workflow(3)) == 4
        assert len(merge_workflow(3)) == 4

    def test_diamond_simple_counts(self):
        workflow = diamond_workflow(4, 3, "simple")
        workflow.validate()
        assert len(workflow) == 4 * 3 + 2
        # simple: 4 split edges + 4*2 chain edges + 4 merge edges
        assert len(workflow.dependencies()) == 4 + 8 + 4

    def test_diamond_full_counts(self):
        workflow = diamond_workflow(4, 3, "full")
        assert len(workflow.dependencies()) == 4 + 4 * 4 * 2 + 4

    def test_diamond_rejects_unknown_connectivity(self):
        with pytest.raises(WorkflowValidationError):
            diamond_workflow(2, 2, "star")

    def test_adaptive_diamond_error_task_and_spec(self):
        workflow = adaptive_diamond_workflow(3, 2, "simple", "full")
        workflow.validate()
        assert workflow.task("T_2_3").metadata.get("force_error")
        spec = workflow.adaptations[0]
        assert len(spec.replaced) == 6
        assert spec.destination(workflow) == "merge"
        assert set(spec.entry_sources) == {"R_1_1", "R_1_2", "R_1_3"}

    def test_diamond_1x1(self):
        workflow = diamond_workflow(1, 1)
        assert len(workflow) == 3


class TestMontage:
    def test_counts(self):
        workflow = montage_workflow()
        assert len(workflow) == MONTAGE_TASK_COUNT == 118
        assert max(len(level) for level in workflow.levels()) == MONTAGE_PARALLEL_WIDTH == 108

    def test_duration_classes(self):
        classes = duration_classes(montage_workflow())
        assert sum(classes.values()) == 118
        assert classes["60<T"] >= 100

    def test_durations_deterministic_per_seed(self):
        first = [task.duration for task in montage_workflow(seed=7)]
        second = [task.duration for task in montage_workflow(seed=7)]
        assert first == second
        other = [task.duration for task in montage_workflow(seed=8)]
        assert first != other

    def test_critical_path_close_to_baseline(self):
        assert 450 <= montage_workflow().critical_path_length() <= 520

    def test_duration_scale(self):
        scaled = montage_workflow(duration_scale=0.01)
        assert scaled.critical_path_length() < 10

    def test_cdf_monotone(self):
        durations, fractions = duration_cdf(montage_workflow())
        assert list(durations) == sorted(durations)
        assert fractions[-1] == 1.0

    def test_all_tasks_idempotent(self):
        assert all(task.metadata.get("idempotent") for task in montage_workflow())


class TestJSONFormat:
    def test_roundtrip_plain(self):
        workflow = diamond_workflow(2, 2)
        clone = workflow_from_json(workflow_to_json(workflow))
        assert set(clone.task_names()) == set(workflow.task_names())
        assert sorted(clone.dependencies()) == sorted(workflow.dependencies())

    def test_roundtrip_adaptive(self):
        workflow = adaptive_diamond_workflow(2, 2)
        clone = workflow_from_json(workflow_to_json(workflow))
        assert len(clone.adaptations) == 1
        assert clone.adaptations[0].replaced == workflow.adaptations[0].replaced

    def test_from_dict(self):
        document = workflow_to_dict(sequence_workflow(3))
        clone = workflow_from_dict(document)
        assert len(clone) == 3

    def test_missing_tasks_key(self):
        with pytest.raises(JSONFormatError):
            workflow_from_dict({"name": "x"})

    def test_missing_service(self):
        with pytest.raises(JSONFormatError):
            workflow_from_dict({"name": "x", "tasks": [{"name": "T1"}]})

    def test_invalid_json_text(self):
        with pytest.raises(JSONFormatError):
            workflow_from_json("{not json")

    def test_missing_file(self):
        with pytest.raises(JSONFormatError):
            workflow_from_json("does-not-exist.json")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "wf.json"
        workflow_to_json(diamond_workflow(2, 1), path)
        clone = workflow_from_json(str(path))
        assert len(clone) == 4

    def test_durations_and_metadata_preserved(self):
        workflow = montage_workflow()
        clone = workflow_from_json(workflow_to_json(workflow))
        assert clone.task("mProject_1").duration == workflow.task("mProject_1").duration
        assert clone.task("mAdd").metadata["stage"] == "merge"

    def test_json_is_valid_json(self):
        text = workflow_to_json(sequence_workflow(2))
        assert json.loads(text)["tasks"]
