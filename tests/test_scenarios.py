"""Tests for the scenario subsystem (:mod:`repro.scenarios`).

Covers the registry seams (registration, lookup, spec parsing), the
property-style invariants every catalog generator must satisfy (valid
acyclic workflow, seed determinism, size scaling, cost-profile metadata,
lossless JSON round-trip, end-to-end enactment on the simulated runtime),
the sweep integration (scenario grid axes), the timed-out surfacing through
sweeps, and the CLI surface (``ginflow scenarios`` / ``--scenario``).
"""

import json

import numpy as np
import pytest

from repro import GinFlow, GinFlowConfig, ParameterGrid
from repro.cli import main
from repro.experiments import Experiment, SweepReport
from repro.scenarios import (
    ScenarioError,
    available_scenarios,
    build_scenario,
    get_scenario,
    parse_scenario_spec,
    register_scenario,
    registry,
)
from repro.services import ServiceRegistry
from repro.workflow import (
    JSONFormatError,
    Task,
    Workflow,
    workflow_from_dict,
    workflow_to_dict,
)

ALL_SCENARIOS = available_scenarios()


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_catalog_registers_at_least_eight_generators(self):
        assert len(ALL_SCENARIOS) >= 8
        for expected in (
            "epigenomics", "cybershake", "inspiral", "sipht",
            "random-layered", "mapreduce", "forkjoin", "longchain",
        ):
            assert expected in ALL_SCENARIOS

    def test_register_lookup_and_duplicate(self):
        @register_scenario("test-chain", structure="a chain")
        def chain(size: int = 5, seed: int = 0) -> Workflow:
            """A tiny test chain."""
            workflow = Workflow("test-chain")
            previous = None
            for index in range(size):
                workflow.add_task(Task(f"T{index}", "t", inputs=["x"] if index == 0 else []))
                if previous:
                    workflow.add_dependency(previous, f"T{index}")
                previous = f"T{index}"
            return workflow

        try:
            scenario = get_scenario("test-chain")
            assert scenario.description == "A tiny test chain."
            assert scenario.structure == "a chain"
            assert len(scenario.build(size=7)) == 7
            with pytest.raises(ScenarioError, match="already registered"):
                register_scenario("test-chain", chain)
            register_scenario("test-chain", chain, replace=True)
        finally:
            registry.unregister("test-chain")
        assert not registry.has("test-chain")

    def test_factory_must_accept_size_and_seed(self):
        with pytest.raises(ScenarioError, match="seed"):
            register_scenario("test-bad", lambda size=1: Workflow("x", [Task("a", "s")]))

    def test_unknown_scenario(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("definitely-not-registered")

    def test_build_rejects_unknown_parameters(self):
        with pytest.raises(ScenarioError, match="accepted parameters"):
            build_scenario("longchain:size=20,bogus=3")

    def test_factory_must_return_a_workflow(self):
        register_scenario("test-notwf", lambda size=1, seed=0: "nope")
        try:
            with pytest.raises(ScenarioError, match="not a Workflow"):
                build_scenario("test-notwf")
        finally:
            registry.unregister("test-notwf")

    def test_parameters_exposed_with_defaults(self):
        parameters = get_scenario("cybershake").parameters()
        assert parameters["size"] == 20
        assert parameters["seed"] == 0
        assert "synthesis_per_site" in parameters


# ------------------------------------------------------------ spec parsing
class TestSpecParsing:
    def test_bare_name(self):
        assert parse_scenario_spec("sipht") == ("sipht", {})

    def test_typed_parameters(self):
        name, params = parse_scenario_spec("cybershake:size=500,seed=3")
        assert name == "cybershake"
        assert params == {"size": 500, "seed": 3}
        assert isinstance(params["size"], int)

    def test_float_bool_and_string_values(self):
        _, params = parse_scenario_spec("random-layered:edge_probability=0.5,flag=true,tag=x")
        assert params == {"edge_probability": 0.5, "flag": True, "tag": "x"}

    @pytest.mark.parametrize(
        "bad", ["", "  ", ":size=1", "name:", "name:size", "name:size=", "name:size=1,size=2"]
    )
    def test_invalid_specs(self, bad):
        with pytest.raises(ScenarioError):
            parse_scenario_spec(bad)

    def test_overrides_win_over_spec(self):
        assert len(build_scenario("longchain:size=20", size=25)) == 25


# --------------------------------------------------- catalog invariants
@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestCatalogInvariants:
    def test_valid_acyclic_workflow(self, name):
        workflow = build_scenario(f"{name}:size=30,seed=2")
        workflow.validate()
        order = workflow.topological_order()
        assert len(order) == len(workflow)
        # the workflow can actually start: every entry task has initial inputs
        for entry in workflow.entry_tasks():
            assert workflow.task(entry).inputs, f"{name}: entry task {entry} has no input"
        # and converges: there is at least one exit task
        assert workflow.exit_tasks()

    def test_deterministic_for_a_fixed_seed(self, name):
        first = workflow_to_dict(build_scenario(f"{name}:size=40,seed=7"))
        second = workflow_to_dict(build_scenario(f"{name}:size=40,seed=7"))
        assert first == second

    def test_seed_changes_the_drawn_durations(self, name):
        first = build_scenario(f"{name}:size=40,seed=1")
        second = build_scenario(f"{name}:size=40,seed=2")
        assert [t.duration for t in first] != [t.duration for t in second]

    @pytest.mark.parametrize("size", [20, 200, 1000])
    def test_size_scaling(self, name, size):
        workflow = build_scenario(f"{name}:size={size},seed=1")
        # the generator rounds to the nearest realisable shape
        assert 0.75 * size <= len(workflow) <= 1.25 * size
        workflow.validate()

    def test_cost_profile_metadata_stamped(self, name):
        scenario = get_scenario(name)
        workflow = scenario.build(size=30, seed=3)
        for task in workflow:
            assert task.metadata["scenario"] == name
            stage = task.metadata["stage"]
            assert task.metadata["cost_class"] == stage
            assert isinstance(task.metadata["level"], int)
            assert task.metadata["idempotent"] is True
            low, high = scenario.cost_profile[stage]
            assert low <= task.duration <= high

    def test_json_roundtrip_lossless(self, name):
        workflow = build_scenario(f"{name}:size=30,seed=4")
        document = workflow_to_dict(workflow)
        assert workflow_to_dict(workflow_from_dict(document)) == document
        # and survives an actual serialisation
        assert workflow_to_dict(workflow_from_dict(json.loads(json.dumps(document)))) == document

    def test_enacts_on_the_simulated_runtime(self, name):
        workflow = build_scenario(f"{name}:size=20,seed=1")
        report = GinFlow().run(workflow, nodes=8)
        assert report.succeeded
        assert not report.timed_out
        assert set(report.results) == set(workflow.exit_tasks())
        # seed-deterministic trace: an identical run reproduces the timeline
        replay = GinFlow().run(build_scenario(f"{name}:size=20,seed=1"), nodes=8)
        assert replay.makespan == report.makespan
        assert replay.messages_published == report.messages_published
        assert [e for e in replay.timeline] == [e for e in report.timeline]


# ------------------------------------------------------- sweep integration
class TestSweepIntegration:
    def test_scenario_specs_as_grid_axis(self):
        report = GinFlow().sweep(
            None,
            ParameterGrid({"scenario": ["forkjoin:size=20", "longchain:size=20"]}),
            nodes=5,
        )
        assert report.succeeded and not report.timed_out
        assert len(report.rows) == 2
        cells = report.cells()
        assert [cell["scenario"] for cell in cells] == ["forkjoin:size=20", "longchain:size=20"]
        assert all(cell["timed_out_runs"] == 0 for cell in cells)

    def test_scenario_axis_with_extra_workflow_parameters(self):
        report = GinFlow().sweep(
            None,
            ParameterGrid({"scenario": ["longchain"], "size": [20, 30]}),
            nodes=5,
        )
        assert report.succeeded
        assert len(report.rows) == 2

    def test_scenario_key_reaches_a_fixed_workflow_unchanged(self):
        # a fixed workflow cannot absorb grid parameters, 'scenario' included
        # — the key is only interpreted as a spec when the experiment has no
        # workflow source of its own (e.g. the fig13 driver sweeps its own
        # 'scenario' factory parameter)
        experiment = Experiment(
            workflow=build_scenario("longchain:size=5"),
            grid={"scenario": ["sipht"]},
        )
        with pytest.raises(ValueError, match="scenario"):
            experiment.run()

        def factory(scenario="x"):
            workflow = Workflow(f"factory-{scenario}")
            workflow.add_task(Task("A", "s", inputs=["x"]))
            return workflow

        report = Experiment(workflow=factory, grid={"scenario": ["a", "b"]}).run()
        assert [row["scenario"] for row in report.rows] == ["a", "b"]
        assert report.succeeded

    def test_scenario_factory_sweep(self):
        from functools import partial

        report = GinFlow().sweep(
            partial(build_scenario, "mapreduce"),
            ParameterGrid({"size": [20, 30]}),
            nodes=5,
        )
        assert report.succeeded
        assert len(report.rows) == 2


# ------------------------------------------------------ timed_out surfacing
class TestTimedOutSurfacing:
    def _stuck_sweep(self) -> SweepReport:
        services = ServiceRegistry()

        async def stuck():
            import asyncio

            await asyncio.sleep(30.0)

        services.register_function("stuck", stuck)
        workflow = Workflow("stuck", [Task("A", "stuck")])
        ginflow = GinFlow(GinFlowConfig(mode="asyncio"), registry=services)
        return ginflow.sweep(workflow, ParameterGrid({"nodes": [1]}), timeout=0.2)

    def test_sweep_rows_carry_timed_out(self):
        report = self._stuck_sweep()
        assert report.timed_out
        assert not report.succeeded
        assert all(row["timed_out"] for row in report.rows)
        assert report.cells()[0]["timed_out_runs"] == len(report.rows)

    def test_successful_sweep_is_not_timed_out(self):
        report = GinFlow().sweep(
            build_scenario("sipht:size=20"), ParameterGrid({"nodes": [5]})
        )
        assert not report.timed_out
        assert all(row["timed_out"] is False for row in report.rows)

    def test_sweep_report_property_without_column(self):
        # rows produced by custom runners may omit the column entirely
        assert SweepReport(rows=[{"succeeded": True}]).timed_out is False


# -------------------------------------------------- json format round-trip
class TestJsonFormatMetadata:
    def test_numpy_metadata_round_trips(self):
        workflow = Workflow("np")
        workflow.add_task(
            Task(
                "a",
                "s",
                inputs=[np.int64(3)],
                metadata={
                    "cost": np.int64(42),
                    "ratio": np.float64(0.5),
                    "grid": np.array([1, 2, 3]),
                },
            )
        )
        document = workflow_to_dict(workflow)
        # canonical JSON form: plain scalars and lists
        task = document["tasks"][0]
        assert task["inputs"] == [3]
        assert task["metadata"] == {"cost": 42, "ratio": 0.5, "grid": [1, 2, 3]}
        json.dumps(document)  # previously raised TypeError on np.int64
        assert workflow_to_dict(workflow_from_dict(document)) == document

    def test_single_element_array_stays_a_list(self):
        workflow = Workflow("np1")
        workflow.add_task(Task("a", "s", inputs=["x"], metadata={"grid": np.array([7])}))
        assert workflow_to_dict(workflow)["tasks"][0]["metadata"]["grid"] == [7]

    def test_tuple_metadata_canonicalised_and_stable(self):
        workflow = Workflow("t")
        workflow.add_task(Task("a", "s", inputs=["x"], metadata={"range": (60.0, 310.0)}))
        document = workflow_to_dict(workflow)
        assert document["tasks"][0]["metadata"]["range"] == [60.0, 310.0]
        assert workflow_to_dict(workflow_from_dict(document)) == document

    def test_unserialisable_metadata_raises_a_named_error(self):
        workflow = Workflow("bad")
        workflow.add_task(Task("a", "s", inputs=["x"], metadata={"fn": object()}))
        with pytest.raises(JSONFormatError, match="task 'a' metadata"):
            workflow_to_dict(workflow)


# ------------------------------------------------------------------- CLI
class TestScenarioCLI:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ALL_SCENARIOS:
            assert name in output

    def test_scenarios_names(self, capsys):
        assert main(["scenarios", "--names"]) == 0
        assert capsys.readouterr().out.split() == list(ALL_SCENARIOS)

    def test_scenarios_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == set(ALL_SCENARIOS)
        assert all("cost_profile" in entry and "parameters" in entry for entry in payload)

    def test_scenarios_describe(self, capsys):
        assert main(["scenarios", "inspiral"]) == 0
        output = capsys.readouterr().out
        assert "structure" in output and "cost profile" in output

    def test_scenarios_describe_unknown(self, capsys):
        assert main(["scenarios", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_scenario(self, capsys):
        assert main(["run", "--scenario", "sipht:size=20,seed=2", "--nodes", "5"]) == 0
        assert "succeeded          : True" in capsys.readouterr().out

    def test_run_scenario_json_output(self, capsys):
        assert main(["run", "--scenario", "longchain:size=10", "--nodes", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["succeeded"] is True and payload["timed_out"] is False

    def test_validate_scenario(self, capsys):
        assert main(["validate", "--scenario", "mapreduce:size=20"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_requires_exactly_one_source(self, capsys):
        assert main(["run"]) == 2
        assert "workflow source" in capsys.readouterr().err
        assert main(["run", "wf.json", "--scenario", "sipht"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_sweep_scenario_source(self, capsys):
        assert main([
            "sweep", "--scenario", "forkjoin", "--param", "size=20,30", "--nodes", "5",
        ]) == 0
        assert "2 cells" in capsys.readouterr().out

    def test_sweep_scenario_axis(self, capsys):
        assert main([
            "sweep", "--param", "scenario=longchain,sipht", "--nodes", "5", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["scenario"] for row in payload["rows"]} == {"longchain", "sipht"}
        assert all(row["timed_out"] is False for row in payload["rows"])

    def test_sweep_requires_a_source(self, capsys):
        assert main(["sweep", "--param", "nodes=5,10"]) == 2
        assert "workflow source" in capsys.readouterr().err
