"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simkernel import (
    Event,
    Interrupt,
    RandomStreams,
    Resource,
    SerialQueue,
    Simulator,
    Store,
)


class TestSimulatorBasics:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_call_in_order(self):
        sim = Simulator()
        seen = []
        sim.call_in(2.0, lambda: seen.append("b"))
        sim.call_in(1.0, lambda: seen.append("a"))
        sim.run()
        assert seen == ["a", "b"]

    def test_same_time_fifo(self):
        sim = Simulator()
        seen = []
        sim.call_in(1.0, lambda: seen.append(1))
        sim.call_in(1.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2]

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.call_in(1.0, lambda: seen.append(1))
        sim.call_in(10.0, lambda: seen.append(2))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0

    def test_max_events_bound(self):
        sim = Simulator()
        for _ in range(10):
            sim.call_in(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.processed_events == 3

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Simulator().timeout(-1.0)


class TestEvents:
    def test_succeed_runs_callbacks(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(7)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_all_of(self):
        sim = Simulator()
        a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        combined = sim.all_of([a, b])
        sim.run()
        assert combined.triggered
        assert combined.value == ["a", "b"]

    def test_any_of(self):
        sim = Simulator()
        combined = sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        sim.run()
        assert combined.value == "fast"

    def test_all_of_empty(self):
        sim = Simulator()
        combined = sim.all_of([])
        assert combined.triggered

    def test_all_of_fails_on_member_failure(self):
        sim = Simulator()
        good, bad = sim.event(), sim.event()
        combined = sim.all_of([good, bad])
        error = RuntimeError("boom")
        bad.fail(error)
        sim.run()
        assert combined.triggered
        assert not combined.ok
        assert combined.value is error
        # the late success of the sibling must not re-trigger the join
        good.succeed("late")
        sim.run()
        assert not combined.ok

    def test_all_of_propagates_first_failure_only(self):
        sim = Simulator()
        first, second = sim.event(), sim.event()
        combined = sim.all_of([first, second])
        e1, e2 = RuntimeError("first"), RuntimeError("second")
        first.fail(e1)
        second.fail(e2)
        sim.run()
        assert not combined.ok
        assert combined.value is e1

    def test_process_sees_all_of_failure(self):
        sim = Simulator()
        member = sim.event()
        caught = []

        def waiter():
            try:
                yield sim.all_of([sim.timeout(1.0, "ok"), member])
            except RuntimeError as exc:
                caught.append(exc)
            return "handled"

        process = sim.process(waiter())
        error = RuntimeError("task crashed")
        sim.call_in(0.5, lambda: member.fail(error))
        sim.run()
        assert caught == [error]
        assert process.value == "handled"

    def test_any_of_fails_on_failed_winner(self):
        sim = Simulator()
        slow, bad = sim.timeout(5.0, "slow"), sim.event()
        combined = sim.any_of([slow, bad])
        error = RuntimeError("boom")
        bad.fail(error)
        sim.run()
        assert not combined.ok
        assert combined.value is error

    def test_any_of_success_still_wins(self):
        sim = Simulator()
        combined = sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        sim.run()
        assert combined.ok
        assert combined.value == "fast"

    def test_any_of_empty_triggers_immediately(self):
        # AnyOf([]) used to deadlock (never trigger); it now matches AllOf([])
        sim = Simulator()
        combined = sim.any_of([])
        assert combined.triggered
        assert combined.ok
        assert combined.value == []


class TestProcesses:
    def test_process_waits_on_timeouts(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(("start", sim.now))
            yield sim.timeout(3.0)
            trace.append(("middle", sim.now))
            yield sim.timeout(2.0)
            trace.append(("end", sim.now))
            return "done"

        process = sim.process(worker())
        sim.run()
        assert trace == [("start", 0.0), ("middle", 3.0), ("end", 5.0)]
        assert process.value == "done"

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            value = yield sim.process(child())
            return value + 1

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.value == 8

    def test_interrupt(self):
        sim = Simulator()
        outcome = []

        def worker():
            try:
                yield sim.timeout(100.0)
                outcome.append("finished")
            except Interrupt as interrupt:
                outcome.append(("interrupted", interrupt.cause, sim.now))

        process = sim.process(worker())
        sim.call_in(1.0, lambda: process.interrupt("crash"))
        sim.run()
        assert outcome == [("interrupted", "crash", 1.0)]

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()


class TestStoreAndResource:
    def test_store_fifo(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        values = []
        store.get().add_callback(lambda e: values.append(e.value))
        store.get().add_callback(lambda e: values.append(e.value))
        sim.run()
        assert values == ["a", "b"]

    def test_store_get_before_put(self):
        sim = Simulator()
        store = Store(sim)
        values = []
        store.get().add_callback(lambda e: values.append(e.value))
        store.put("later")
        sim.run()
        assert values == ["later"]

    def test_store_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1

    def test_resource_capacity(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []
        resource.acquire().add_callback(lambda e: order.append("first"))
        resource.acquire().add_callback(lambda e: order.append("second"))
        sim.run()
        assert order == ["first"]
        resource.release()
        sim.run()
        assert order == ["first", "second"]

    def test_resource_release_without_acquire(self):
        with pytest.raises(RuntimeError):
            Resource(Simulator(), capacity=1).release()

    def test_resource_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_serial_queue_serialises_work(self):
        sim = Simulator()
        queue = SerialQueue(sim)
        finishes = []
        queue.submit(2.0).add_callback(lambda e: finishes.append(sim.now))
        queue.submit(3.0).add_callback(lambda e: finishes.append(sim.now))
        sim.run()
        assert finishes == [2.0, 5.0]
        assert queue.processed == 2
        assert queue.busy_time == 5.0

    def test_serial_queue_backlog(self):
        sim = Simulator()
        queue = SerialQueue(sim)
        queue.submit(4.0)
        assert queue.backlog == 4.0

    def test_serial_queue_negative_work_rejected(self):
        with pytest.raises(ValueError):
            SerialQueue(Simulator()).submit(-1.0)


class TestRandomStreams:
    def test_streams_reproducible(self):
        a = RandomStreams(42).stream("x").random(5).tolist()
        b = RandomStreams(42).stream("x").random(5).tolist()
        assert a == b

    def test_streams_independent_by_label(self):
        streams = RandomStreams(42)
        assert streams.stream("a").random(3).tolist() != streams.stream("b").random(3).tolist()

    def test_bernoulli_extremes(self):
        streams = RandomStreams(1)
        assert not streams.bernoulli("x", 0.0)
        assert streams.bernoulli("y", 0.999999)

    def test_uniform_bounds(self):
        value = RandomStreams(3).uniform("u", 2.0, 4.0)
        assert 2.0 <= value <= 4.0

    def test_spawn_changes_draws(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert parent.stream("x").random(3).tolist() != child.stream("x").random(3).tolist()
