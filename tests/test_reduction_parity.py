"""Trace parity of the optimized incremental engine against the naive engine.

The PR-2/PR-4 optimisations (inertness caching, head-symbol indexing,
quick-reject pre-checks, version-stamped rejection memos, cached structural
hashes) are all required to be *trace-preserving*: reducing the same solution
must fire exactly the same rules in exactly the same order as the naive
re-reduce-everything engine.  These tests lock that property on the two
workflow shapes the paper measures (Montage and the fully-connected diamond)
and on the cache-invalidation edges the memoization introduces.
"""

from __future__ import annotations

import pytest

from repro.hocl import (
    Multiset,
    Omega,
    ReductionEngine,
    Rule,
    SolutionPattern,
    Subsolution,
    Symbol,
    SymbolPattern,
    TupleAtom,
    TuplePattern,
    Var,
    default_registry,
)
from repro.hoclflow import encode_workflow
from repro.hoclflow.generic_rules import register_workflow_externals
from repro.services import InvocationContext, ServiceRegistry
from repro.workflow import diamond_workflow
from repro.workflow.montage import montage_workflow


def _reduce_centralized(workflow, incremental: bool):
    """One centralised reduction of ``workflow``; returns the report."""
    encoding = encode_workflow(workflow)
    solution = encoding.to_multiset()
    registry = ServiceRegistry()
    attempts: dict[str, int] = {}

    def invoke(task_name: str, service_name: str, parameters: list) -> object:
        attempts[task_name] = attempts.get(task_name, 0) + 1
        task = encoding.tasks[task_name]
        context = InvocationContext(
            task_name=task_name,
            duration=task.duration,
            metadata=task.metadata,
            attempt=attempts[task_name],
        )
        outcome = registry.resolve(service_name).invoke(list(parameters), context)
        if outcome.failed:
            raise RuntimeError(outcome.error or "invocation failed")
        return outcome.value

    externals = default_registry()
    register_workflow_externals(externals, invoke)
    engine = ReductionEngine(externals=externals, max_steps=1_000_000, incremental=incremental)
    report = engine.reduce(solution)
    assert report.inert
    return report


def _trace(report):
    return [(r.rule, r.depth, r.consumed, r.produced) for r in report.history]


class TestWorkflowTraceParity:
    @pytest.mark.parametrize("projections", [5, 30])
    def test_montage_trace_identical(self, projections):
        incremental = _reduce_centralized(montage_workflow(projections=projections), True)
        naive = _reduce_centralized(montage_workflow(projections=projections), False)
        assert _trace(incremental) == _trace(naive)
        assert incremental.reactions == naive.reactions
        assert incremental.match_attempts <= naive.match_attempts

    @pytest.mark.parametrize("width,depth", [(3, 3), (6, 4)])
    def test_fully_connected_diamond_trace_identical(self, width, depth):
        incremental = _reduce_centralized(
            diamond_workflow(width, depth, connectivity="full"), True
        )
        naive = _reduce_centralized(diamond_workflow(width, depth, connectivity="full"), False)
        assert _trace(incremental) == _trace(naive)
        assert incremental.reactions == naive.reactions

    def test_simple_diamond_trace_identical(self):
        incremental = _reduce_centralized(diamond_workflow(4, 3, connectivity="simple"), True)
        naive = _reduce_centralized(diamond_workflow(4, 3, connectivity="simple"), False)
        assert _trace(incremental) == _trace(naive)

    def test_timings_populated(self):
        report = _reduce_centralized(montage_workflow(projections=5), True)
        assert set(report.timings) >= {"match", "rewrite", "index"}
        assert all(seconds >= 0.0 for seconds in report.timings.values())

    def test_timings_merge_accumulates(self):
        first = _reduce_centralized(montage_workflow(projections=5), True)
        second = _reduce_centralized(montage_workflow(projections=5), True)
        match_sum = first.timings["match"] + second.timings["match"]
        first.merge(second)
        assert first.timings["match"] == pytest.approx(match_sum)


class TestRejectionCacheInvalidation:
    """The quick-reject memos must never survive a relevant mutation."""

    def test_solution_pattern_rejection_expires_on_mutation(self):
        pattern = SolutionPattern(Var("x"), rest=Omega("w"))
        empty = Subsolution()
        assert pattern.quick_reject(empty)  # needs at least one atom
        assert pattern.quick_reject(empty)  # cached rejection
        empty.solution.add(1)
        assert not pattern.quick_reject(empty)
        matches = list(pattern.match(empty, {}))
        assert len(matches) == 1

    def test_tuple_pattern_rejection_expires_on_nested_mutation(self):
        # RES : <w> with an atom inside — the task-field idiom of gw_call
        pattern = TuplePattern(
            SymbolPattern("RES"), SolutionPattern(Var("res"), rest=Omega("w"))
        )
        res = TupleAtom([Symbol("RES"), Subsolution()])
        assert pattern.quick_reject(res)
        assert pattern.quick_reject(res)  # memoised on the structure version
        res.elements[1].solution.add("value")
        assert not pattern.quick_reject(res)
        assert list(pattern.match(res, {}))

    def test_immutable_tuple_rejection_is_permanent_and_sound(self):
        pattern = TuplePattern(SymbolPattern("SRC"), Var("x"))
        other = TupleAtom([Symbol("DST"), 1])
        assert pattern.quick_reject(other)
        assert pattern.quick_reject(other)
        matching = TupleAtom([Symbol("SRC"), 2])
        assert not pattern.quick_reject(matching)

    def test_engine_refires_after_inertness_with_new_atoms(self):
        # a rule refuted by the quick checks must fire once its atom appears
        rule = Rule("grab", [TuplePattern(SymbolPattern("K"), Var("x"))], ["done"])
        solution = Multiset([rule])
        engine = ReductionEngine(incremental=True)
        report = engine.reduce(solution)
        assert report.reactions == 0
        solution.add(TupleAtom([Symbol("K"), 7]))
        report = engine.reduce(solution)
        assert report.reactions == 1
        assert solution.count("done") == 1


class TestDataLayerCaches:
    def test_symbols_are_interned(self):
        assert Symbol("ADAPT") is Symbol("ADAPT")
        assert Symbol("ADAPT") == Symbol("ADAPT")
        assert Symbol("A") != Symbol("B")

    def test_mutable_tuple_hash_tracks_nested_mutation(self):
        atom = TupleAtom([Symbol("RES"), Subsolution([1])])
        before = hash(atom)
        equal = TupleAtom([Symbol("RES"), Subsolution([1])])
        assert hash(equal) == before and equal == atom
        atom.elements[1].solution.add(2)
        assert atom != equal
        assert hash(atom) == hash(TupleAtom([Symbol("RES"), Subsolution([1, 2])]))

    def test_immutable_tuple_hash_is_stable(self):
        atom = TupleAtom([Symbol("SRC"), 1, "x"])
        assert hash(atom) == hash(TupleAtom([Symbol("SRC"), 1, "x"]))

    def test_nested_solutions_match_a_scan(self):
        solution = Multiset()
        solution.add(TupleAtom([Symbol("T1"), Subsolution([1])]))
        inner = Subsolution([2])
        solution.add(inner)
        solution.add(TupleAtom([Symbol("T2"), Subsolution([3]), Subsolution([4])]))

        def scan():
            nested = []
            for atom in solution.atoms():
                if isinstance(atom, Subsolution):
                    nested.append(atom.solution)
                elif isinstance(atom, TupleAtom):
                    nested.extend(
                        e.solution for e in atom.elements if isinstance(e, Subsolution)
                    )
            return nested

        assert [id(s) for s in solution.nested_solutions()] == [id(s) for s in scan()]
        solution.remove_identical(inner)
        assert [id(s) for s in solution.nested_solutions()] == [id(s) for s in scan()]

    def test_nested_solutions_order_survives_aliased_removal(self):
        # the same sub-solution aliased into two non-adjacent entries: a
        # removal must drop that entry's occurrence, not the first equal one
        shared = Subsolution([1])
        solution = Multiset()
        first = solution.add(TupleAtom([Symbol("T1"), shared]))
        solution.add(Subsolution([2]))
        second = solution.add(TupleAtom([Symbol("T2"), shared]))
        assert [id(s) for s in solution.nested_solutions()] == [
            id(shared.solution),
            id(solution.atoms()[1].solution),
            id(shared.solution),
        ]
        solution.remove_identical(second)
        assert [id(s) for s in solution.nested_solutions()] == [
            id(shared.solution),
            id(solution.atoms()[1].solution),
        ]
        solution.remove_identical(first)
        assert [id(s) for s in solution.nested_solutions()] == [
            id(solution.atoms()[0].solution)
        ]

    def test_content_hash_changes_with_contents(self):
        solution = Multiset([1, 2])
        first = solution.content_hash()
        assert first == Multiset([2, 1]).content_hash()  # order-insensitive
        solution.add(3)
        assert solution.content_hash() != first


# --------------------------------------------------------------------------
# Strategy parity: serial / batch / parallel reduction
# --------------------------------------------------------------------------

from repro.executors.centralized import CentralizedExecutor  # noqa: E402
from repro.hocl import ReductionReport  # noqa: E402
from repro.runtime import GinFlow  # noqa: E402
from repro.scenarios import available_scenarios, build_scenario  # noqa: E402

_FAMILIES = available_scenarios()


def _centralized_outcome(workflow, reduction: str):
    outcome = CentralizedExecutor(reduction=reduction).execute(workflow)
    assert outcome.report.inert
    return outcome


class TestStrategyParity:
    """The batch and parallel strategies must be content-equivalent to serial.

    Parity is defined on *content*, not on trace order: identical final
    solution hash, identical reaction multiset (``rule_fires``), identical
    per-task results — while ``history`` may interleave differently and the
    batched ``match_attempts`` may only shrink.
    """

    @pytest.mark.parametrize("family", _FAMILIES)
    def test_centralized_strategies_agree(self, family):
        def fresh():
            return build_scenario(f"{family}:size=12,seed=1")

        serial = _centralized_outcome(fresh(), "serial")
        for strategy in ("batch", "parallel"):
            other = _centralized_outcome(fresh(), strategy)
            assert other.solution.content_hash() == serial.solution.content_hash()
            assert other.report.rule_fires == serial.report.rule_fires
            assert other.report.reactions == serial.report.reactions
            assert other.results == serial.results
            assert other.errors == serial.errors
            assert other.invocations == serial.invocations
            assert other.report.batches >= 1
            if strategy == "batch":
                assert other.report.match_attempts <= serial.report.match_attempts

    @pytest.mark.parametrize("mode", ["threaded", "asyncio"])
    @pytest.mark.parametrize("family", _FAMILIES)
    def test_runtime_strategies_agree(self, family, mode):
        def run(reduction: str):
            report = GinFlow().run(
                build_scenario(f"{family}:size=10,seed=1"),
                mode=mode,
                reduction=reduction,
                timeout=60.0,
            )
            assert report.succeeded and not report.timed_out
            return report

        serial = run("serial")
        for strategy in ("batch", "parallel"):
            other = run(strategy)
            assert other.results == serial.results
            assert other.extra.get("rule_fires") == serial.extra.get("rule_fires")

    def test_audit_clean_under_parallel_reduction(self):
        from repro.analysis import Severity, audit_all_scenarios

        report = audit_all_scenarios(size=10, reduction="parallel")
        errors = [f for f in report if f.severity is Severity.ERROR]
        assert not errors, [f.message for f in errors]


class TestReportMergeAccounting:
    """`ReductionReport.merge` must add keys absent on either side."""

    def test_merge_adds_absent_timing_and_rule_keys(self):
        left = ReductionReport(reactions=1, timings={"match": 1.0}, rule_fires={"a": 1}, batches=2)
        right = ReductionReport(
            reactions=3,
            timings={"match": 0.5, "rewrite": 0.25},
            rule_fires={"b": 3},
            batches=1,
        )
        left.merge(right)
        assert left.timings == {"match": 1.5, "rewrite": 0.25}
        assert left.rule_fires == {"a": 1, "b": 3}
        assert left.reactions == 4
        assert left.batches == 3
        assert sum(left.rule_fires.values()) == left.reactions

    def test_merge_into_empty_report(self):
        merged = ReductionReport()
        merged.merge(ReductionReport(reactions=2, rule_fires={"r": 2}, timings={"index": 0.1}))
        assert merged.rule_fires == {"r": 2}
        assert merged.timings["index"] == pytest.approx(0.1)
        assert sum(merged.rule_fires.values()) == merged.reactions
